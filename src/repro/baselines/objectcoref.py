"""Reported comparator numbers for Table 1 (ObjectCoref [18]).

ObjectCoref (Hu, Chen, Qu; WWW 2011) is the only system the paper
found competitive on the OAEI 2010 restaurant benchmark.  It cannot be
re-implemented faithfully here — it is a *self-training* approach that
needs its labelled seed data — so, exactly like the paper, we carry its
published numbers as constants for table rendering, and additionally
provide :func:`self_training_matcher`, a small transparent stand-in
that mimics the self-training loop (seed on unambiguous exact-match
pairs, then expand through discriminative property values) for readers
who want a runnable comparison point.

Numbers from Table 1 of the PARIS paper (as reported in [18]):

* person:      P = 100 %, R = 100 %, F = 100 %
* restaurant:  P and R not reported; F = 90 %
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.result import Assignment
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Resource


@dataclass(frozen=True)
class ReportedResult:
    """A comparator's published figures (``None`` = not reported)."""

    system: str
    dataset: str
    precision: Optional[float]
    recall: Optional[float]
    f1: Optional[float]


#: ObjectCoref's published results on the OAEI 2010 benchmarks.
OBJECTCOREF_RESULTS = {
    "person": ReportedResult("ObjectCoref", "person", 1.00, 1.00, 1.00),
    "restaurant": ReportedResult("ObjectCoref", "restaurant", None, None, 0.90),
}


def self_training_matcher(
    ontology1: Ontology,
    ontology2: Ontology,
    rounds: int = 3,
    min_overlap: int = 2,
) -> Assignment:
    """A transparent ObjectCoref-style self-training stand-in.

    Round 0 seeds with instance pairs that share an *unambiguous*
    literal (a value appearing on exactly one instance per side).
    Each later round treats property values of already-matched pairs
    as discriminative and matches instances sharing at least
    ``min_overlap`` literal values with a unique best candidate.

    This is **not** ObjectCoref — it lacks the learned discriminativity
    model — but it exercises the same seed-and-expand loop and gives a
    live baseline for the Table 1 bench.
    """
    values1 = _literal_profile(ontology1)
    values2 = _literal_profile(ontology2)
    by_value2: Dict[str, Set[Resource]] = {}
    for instance, values in values2.items():
        for value in values:
            by_value2.setdefault(value, set()).add(instance)

    matched: Dict[Resource, Resource] = {}
    taken: Set[Resource] = set()
    # seed: unambiguous shared values
    by_value1: Dict[str, Set[Resource]] = {}
    for instance, values in values1.items():
        for value in values:
            by_value1.setdefault(value, set()).add(instance)
    for value, lefts in by_value1.items():
        rights = by_value2.get(value)
        if rights and len(lefts) == 1 and len(rights) == 1:
            left, right = next(iter(lefts)), next(iter(rights))
            if left not in matched and right not in taken:
                matched[left] = right
                taken.add(right)
    # expansion rounds
    for _ in range(rounds):
        added = 0
        for left, values in values1.items():
            if left in matched:
                continue
            counts: Dict[Resource, int] = {}
            for value in values:
                for right in by_value2.get(value, ()):
                    if right in taken:
                        continue
                    counts[right] = counts.get(right, 0) + 1
            if not counts:
                continue
            best = max(counts, key=lambda r: counts[r])
            best_count = counts[best]
            runner_up = max(
                (count for right, count in counts.items() if right != best),
                default=0,
            )
            if best_count >= min_overlap and best_count > runner_up:
                matched[left] = best
                taken.add(best)
                added += 1
        if not added:
            break
    return {left: (right, 1.0) for left, right in matched.items()}


def _literal_profile(ontology: Ontology) -> Dict[Resource, Set[str]]:
    """Instance → set of literal values it carries (any relation)."""
    profile: Dict[Resource, Set[str]] = {}
    for relation in ontology.relations(include_inverses=False):
        for subject, obj in ontology.pairs(relation):
            if isinstance(subject, Resource) and isinstance(obj, Literal):
                profile.setdefault(subject, set()).add(obj.value)
    return profile
