"""The rdfs:label exact-match baseline (Section 6.4).

The paper compares PARIS on YAGO/IMDb against "a baseline approach
that aligns entities by matching their rdfs:label properties
(achieving 97 % precision and only 70 % recall)".  This module
implements that baseline: two instances match if they share at least
one label literal; ambiguous labels (shared by several instances on
either side) produce no match, which is what keeps the baseline's
precision high and its recall low.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.result import Assignment
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Relation, Resource


def _label_index(
    ontology: Ontology, label_relations: Iterable[Relation]
) -> Dict[str, Set[Resource]]:
    """Map label string → instances carrying it."""
    index: Dict[str, Set[Resource]] = {}
    for relation in label_relations:
        for subject, obj in ontology.pairs(relation):
            if isinstance(subject, Resource) and isinstance(obj, Literal):
                index.setdefault(obj.value, set()).add(subject)
    return index


def detect_label_relations(ontology: Ontology) -> List[Relation]:
    """Relations that look like label properties.

    Uses the conventional names (``rdfs:label`` or anything ending in
    ``label`` or ``name``, case-insensitively) — the baseline is
    deliberately naive.
    """
    candidates = []
    for relation in ontology.relations(include_inverses=False):
        lowered = relation.name.lower()
        if lowered.endswith("label") or lowered.endswith("name"):
            candidates.append(relation)
    return candidates


def align_by_labels(
    ontology1: Ontology,
    ontology2: Ontology,
    label_relations1: Optional[Iterable[Relation]] = None,
    label_relations2: Optional[Iterable[Relation]] = None,
) -> Assignment:
    """Match instances that share an unambiguous label.

    Returns an assignment in the same shape as
    :attr:`AlignmentResult.assignment12` (probability 1.0 for every
    match) so the standard metrics apply unchanged.

    An instance pair matches iff some label string appears on exactly
    one instance of each ontology.  Instances with several candidate
    counterparts through different labels are matched only if all
    their candidates agree.
    """
    index1 = _label_index(
        ontology1, label_relations1 or detect_label_relations(ontology1)
    )
    index2 = _label_index(
        ontology2, label_relations2 or detect_label_relations(ontology2)
    )
    candidates: Dict[Resource, Set[Resource]] = {}
    for label, lefts in index1.items():
        rights = index2.get(label)
        if not rights:
            continue
        if len(lefts) != 1 or len(rights) != 1:
            continue  # ambiguous label: skip (precision over recall)
        left = next(iter(lefts))
        right = next(iter(rights))
        candidates.setdefault(left, set()).add(right)
    assignment: Assignment = {}
    for left, rights in candidates.items():
        if len(rights) == 1:
            assignment[left] = (next(iter(rights)), 1.0)
    return assignment
