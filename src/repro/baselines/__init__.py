"""Baselines and comparators used in the paper's evaluation.

* :func:`align_by_labels` — the rdfs:label exact matcher of
  Section 6.4,
* :data:`OBJECTCOREF_RESULTS` — the published ObjectCoref figures
  quoted in Table 1, plus :func:`self_training_matcher`, a transparent
  runnable stand-in for the self-training approach.
"""

from .label_matcher import align_by_labels, detect_label_relations
from .objectcoref import OBJECTCOREF_RESULTS, ReportedResult, self_training_matcher

__all__ = [
    "align_by_labels",
    "detect_label_relations",
    "OBJECTCOREF_RESULTS",
    "ReportedResult",
    "self_training_matcher",
]
