"""Alignment of more than two ontologies (the paper's future work).

"It would also be interesting to apply paris to more than two
ontologies.  This would further increase the usefulness of paris for
the dream of the Semantic Web."  (Section 7)

:class:`MultiAligner` runs pairwise PARIS over every ontology pair and
fuses the maximal assignments into *entity clusters*: connected
components of the match graph.  Because each input ontology is assumed
duplicate-free (the paper's unique-name assumption within one
ontology), a cluster is **consistent** only if it contains at most one
instance per ontology; inconsistent components are split by dropping
their weakest edges until every cluster is consistent — a conservative
resolution that preserves the strongest pairwise evidence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Resource
from .aligner import ParisAligner
from .config import ParisConfig
from .result import AlignmentResult


@dataclass(frozen=True)
class EntityCluster:
    """One real-world entity seen across several ontologies."""

    #: ``ontology name → instance`` — at most one member per ontology.
    members: Dict[str, Resource]
    #: Lowest pairwise probability along the cluster's spanning edges.
    confidence: float

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, resource: object) -> bool:
        return resource in self.members.values()


@dataclass
class MultiAlignmentResult:
    """Pairwise alignments plus fused entity clusters."""

    #: Ontology names in input order.
    ontology_names: List[str]
    #: ``(left name, right name) → AlignmentResult`` for every pair.
    pairwise: Dict[Tuple[str, str], AlignmentResult]
    #: Fused clusters, largest first.
    clusters: List[EntityCluster] = field(default_factory=list)

    def clusters_spanning(self, min_ontologies: int) -> List[EntityCluster]:
        """Clusters covering at least ``min_ontologies`` ontologies."""
        return [c for c in self.clusters if len(c) >= min_ontologies]


class MultiAligner:
    """Pairwise PARIS over N ontologies with cluster fusion.

    Parameters
    ----------
    ontologies:
        Two or more ontologies with distinct names.
    config:
        Shared :class:`ParisConfig` for every pairwise run.
    """

    def __init__(
        self,
        ontologies: Sequence[Ontology],
        config: Optional[ParisConfig] = None,
    ) -> None:
        if len(ontologies) < 2:
            raise ValueError("need at least two ontologies")
        names = [o.name for o in ontologies]
        if len(set(names)) != len(names):
            raise ValueError("ontology names must be distinct")
        self.ontologies = list(ontologies)
        self.config = config or ParisConfig()

    def align(self) -> MultiAlignmentResult:
        """Run all pairwise alignments and fuse the clusters."""
        pairwise: Dict[Tuple[str, str], AlignmentResult] = {}
        for left, right in itertools.combinations(self.ontologies, 2):
            result = ParisAligner(left, right, self.config).align()
            pairwise[(left.name, right.name)] = result
        clusters = self._fuse(pairwise)
        return MultiAlignmentResult(
            ontology_names=[o.name for o in self.ontologies],
            pairwise=pairwise,
            clusters=clusters,
        )

    # ------------------------------------------------------------------

    def _fuse(
        self, pairwise: Dict[Tuple[str, str], AlignmentResult]
    ) -> List[EntityCluster]:
        """Connected components of the mutual-assignment match graph."""
        home: Dict[Resource, str] = {}
        for ontology in self.ontologies:
            for instance in ontology.instances:
                home[instance] = ontology.name
        # Edges: pairs that are each other's maximal assignment (the
        # conservative "mutual best match" criterion).
        edges: List[Tuple[float, Resource, Resource]] = []
        for (_left_name, _right_name), result in pairwise.items():
            for left, (right, probability) in result.assignment12.items():
                back = result.assignment21.get(right)
                if back is not None and back[0] == left:
                    edges.append((probability, left, right))
        # Build clusters greedily from the strongest edges, refusing
        # any edge that would put two instances of one ontology in the
        # same cluster (the unique-name assumption).
        parent: Dict[Resource, Resource] = {}
        cluster_homes: Dict[Resource, Set[str]] = {}
        cluster_min: Dict[Resource, float] = {}

        def find(node: Resource) -> Resource:
            root = node
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(node, node) != node:
                parent[node], node = root, parent[node]
            return root

        for probability, left, right in sorted(edges, key=lambda e: -e[0]):
            for node in (left, right):
                if node not in parent:
                    parent[node] = node
                    cluster_homes[node] = {home.get(node, "?")}
                    cluster_min[node] = 1.0
            left_root, right_root = find(left), find(right)
            if left_root == right_root:
                continue
            if cluster_homes[left_root] & cluster_homes[right_root]:
                continue  # would merge two instances of one ontology
            parent[right_root] = left_root
            cluster_homes[left_root] |= cluster_homes.pop(right_root)
            cluster_min[left_root] = min(
                cluster_min[left_root], cluster_min.pop(right_root), probability
            )
        # materialize
        members: Dict[Resource, Dict[str, Resource]] = {}
        for node in parent:
            root = find(node)
            members.setdefault(root, {})[home.get(node, "?")] = node
        clusters = [
            EntityCluster(members=mapping, confidence=cluster_min[root])
            for root, mapping in members.items()
            if len(mapping) >= 2
        ]
        clusters.sort(key=lambda c: (-len(c), -c.confidence))
        return clusters


def align_many(
    ontologies: Sequence[Ontology], config: Optional[ParisConfig] = None
) -> MultiAlignmentResult:
    """Convenience wrapper: ``MultiAligner(ontologies, config).align()``."""
    return MultiAligner(ontologies, config).align()
