"""Functionality of relations (Section 3, Eq. 1–2, Appendix A).

The *local functionality* of relation ``r`` at first argument ``x`` is
``fun(r, x) = 1 / #y : r(x, y)`` — the degree to which ``r`` behaves
like a function at ``x``.  The *global functionality* aggregates the
local values; the paper weighs five candidate definitions (Appendix A)
and picks the harmonic mean::

    fun(r) = (#x ∃y : r(x, y)) / (#x, y : r(x, y))

All five definitions are implemented here so the Appendix-A choice can
be ablated (``benchmarks/test_ablation_functionality.py``).

Because PARIS assumes no duplicate entities within one ontology
(Section 5.1), functionalities are computed once per ontology up front
and never revised — :class:`FunctionalityOracle` caches them.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Node, Relation


class FunctionalityDefinition(enum.Enum):
    """The five global-functionality definitions of Appendix A."""

    #: Alternative 1: ``#statements / #statement pairs with same source``.
    #: "Very volatile to single sources that have a large number of
    #: targets."
    PAIR_RATIO = "pair-ratio"

    #: Alternative 2: ``#first args / #second args``.  "Treacherous":
    #: assigns functionality 1 to a complete bipartite relation.
    ARGUMENT_RATIO = "argument-ratio"

    #: Alternative 3: arithmetic mean of the local functionalities
    #: (the definition of Hogan et al. [17]).
    ARITHMETIC_MEAN = "arithmetic-mean"

    #: Alternative 4/5 (equivalent): harmonic mean of the local
    #: functionalities — the paper's choice (Eq. 2).
    HARMONIC = "harmonic"


def local_functionality(ontology: Ontology, relation: Relation, subject: Node) -> float:
    """``fun(r, x) = 1 / #y : r(x, y)`` (Eq. 1); 0 if ``x`` has no ``r``-edge."""
    count = len(ontology.objects(relation, subject))
    return 1.0 / count if count else 0.0


def local_inverse_functionality(
    ontology: Ontology, relation: Relation, obj: Node
) -> float:
    """``fun⁻¹(r, y) = fun(r⁻, y)``."""
    return local_functionality(ontology, relation.inverse, obj)


def _pair_ratio(ontology: Ontology, relation: Relation) -> float:
    statements = ontology.num_statements(relation)
    if not statements:
        return 0.0
    # #x,y,y' : r(x,y) ∧ r(x,y') counts ordered pairs including y = y'.
    same_source_pairs = sum(
        count * fanout * fanout
        for fanout, count in ontology.fanout_histogram(relation).items()
    )
    return statements / same_source_pairs


def _argument_ratio(ontology: Ontology, relation: Relation) -> float:
    objects = ontology.num_objects(relation)
    if not objects:
        return 0.0
    return min(1.0, ontology.num_subjects(relation) / objects)


def _arithmetic_mean(ontology: Ontology, relation: Relation) -> float:
    subjects = ontology.num_subjects(relation)
    if not subjects:
        return 0.0
    total = sum(
        count / fanout for fanout, count in ontology.fanout_histogram(relation).items()
    )
    return total / subjects


def _harmonic_mean(ontology: Ontology, relation: Relation) -> float:
    statements = ontology.num_statements(relation)
    if not statements:
        return 0.0
    return ontology.num_subjects(relation) / statements


_DISPATCH = {
    FunctionalityDefinition.PAIR_RATIO: _pair_ratio,
    FunctionalityDefinition.ARGUMENT_RATIO: _argument_ratio,
    FunctionalityDefinition.ARITHMETIC_MEAN: _arithmetic_mean,
    FunctionalityDefinition.HARMONIC: _harmonic_mean,
}


def global_functionality(
    ontology: Ontology,
    relation: Relation,
    definition: FunctionalityDefinition = FunctionalityDefinition.HARMONIC,
) -> float:
    """Global functionality of ``relation`` under ``definition`` (Eq. 2)."""
    return _DISPATCH[definition](ontology, relation)


def global_inverse_functionality(
    ontology: Ontology,
    relation: Relation,
    definition: FunctionalityDefinition = FunctionalityDefinition.HARMONIC,
) -> float:
    """``fun⁻¹(r) = fun(r⁻)``."""
    return global_functionality(ontology, relation.inverse, definition)


class FunctionalityOracle:
    """Precomputed global functionalities for one ontology.

    Section 5.1: "since we assume that there are no equivalent entities
    within one ontology, we compute the functionalities of the
    relations within each ontology upfront".
    """

    def __init__(
        self,
        ontology: Ontology,
        definition: FunctionalityDefinition = FunctionalityDefinition.HARMONIC,
    ) -> None:
        self.ontology = ontology
        self.definition = definition
        self._cache: Dict[Relation, float] = {}
        for relation in ontology.relations(include_inverses=True):
            self._cache[relation] = global_functionality(ontology, relation, definition)

    def fun(self, relation: Relation) -> float:
        """Cached global functionality of ``relation``."""
        value = self._cache.get(relation)
        if value is None:
            value = global_functionality(self.ontology, relation, self.definition)
            self._cache[relation] = value
        return value

    def inverse_fun(self, relation: Relation) -> float:
        """Cached global inverse functionality ``fun⁻¹(r) = fun(r⁻)``."""
        return self.fun(relation.inverse)

    def inverse_fun_values(self, relations: "Iterable[Relation]") -> "List[float]":
        """``fun⁻¹`` for a batch of relations, in input order.

        The vectorized kernel (:mod:`repro.core.vectorized`) calls this
        once per kernel build to freeze the oracle into a float vector
        indexed by interned relation id.
        """
        return [self.inverse_fun(relation) for relation in relations]

    def invalidate(self, relations: "Iterable[Relation]") -> Dict[Relation, Tuple[float, float]]:
        """Recompute the functionalities of ``relations`` (and inverses).

        Delta ingestion (:mod:`repro.service.delta`) calls this after
        statements of a relation were added or removed: the upfront
        computation of Section 5.1 is then stale for exactly those
        relations.  Returns ``{relation: (old, new)}`` for every
        recomputed value that actually changed, so the warm-start
        fixpoint can dirty the affected instances.
        """
        changes: Dict[Relation, Tuple[float, float]] = {}
        seen = set()
        for relation in relations:
            for term in (relation, relation.inverse):
                if term in seen:
                    continue
                seen.add(term)
                old = self._cache.get(term, 0.0)
                new = global_functionality(self.ontology, term, self.definition)
                self._cache[term] = new
                if new != old:
                    changes[term] = (old, new)
        return changes

    def __repr__(self) -> str:
        return (
            f"FunctionalityOracle({self.ontology.name!r}, "
            f"{self.definition.value}, {len(self._cache)} relations)"
        )
