"""Incremental maintenance of the warm-start fixpoint's derived state.

Two structures live here, both with the same contract: equal to their
from-scratch counterpart, at O(what changed) per refresh instead of
O(everything).

**Relation matrices.**  One direction of the relation pass
(:mod:`repro.core.subrelations`) computes, for every relation ``r`` of
the sub-side ontology::

    Pr(r ⊆ r') = num(r, r') / den(r)

where both ``num`` and ``den`` are sums of independent per-statement
terms (:func:`repro.core.subrelations.statement_terms`).  A delta batch
or a warm-start pass changes the equivalents-view of only a few nodes,
hence the terms of only a few statements — so instead of re-walking
every statement of every relation, :class:`IncrementalRelationPass`
caches the per-statement terms and re-aggregates only the rows a change
actually touches.

The maintained matrix differs from a fresh sweep only by float
re-association in the running sums (≈1 ulp per update), far inside the
warm-start equality budget; relations whose statement count exceeds the
``max_pairs`` cap are recomputed with the exact sequential code instead
of being cached, because the cap makes their row depend on traversal
order, not just on the term multiset.

**Restricted views.**  Section 5.2 restricts every pass to the previous
maximal assignment.  Rebuilding that restriction
(:meth:`EquivalenceStore.restricted_to_maximal`) scans all pairs; after
a warm pass replaced only a frontier's rows, just those lefts — and the
rights appearing in their old/new rows — can change their best match.
:class:`RestrictedViewMaintainer` keeps both maximal assignments and
the restricted store live under row replacements, applying an
:class:`~repro.core.store.OverlayStore`'s touched rows in O(frontier)
and reporting exactly the view entries that moved (which is also what
replaces the warm loop's full store diffs).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Node, Relation, Resource
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore, OverlayStore, best_counterpart
from .subrelations import score_relation, statement_terms
from .view import EquivalenceView

#: A statement of the sub-side ontology, oriented along its relation.
Statement = Tuple[Node, Node]

#: Denominators smaller than this are rebuilt from scratch instead of
#: trusted: subtraction drift could otherwise flip a near-empty row's
#: sign or blow up its ratios.
_DEN_REBUILD_FLOOR = 1e-9


class RowChange:
    """How one relation's row moved during a refresh.

    Attributes
    ----------
    max_delta:
        Largest absolute change over the row's explicit entries and its
        default (0.0 when the refresh left the row numerically intact).
    changed_supers:
        Super-relations whose explicit/effective score changed.
    default_changed:
        Whether the row's *default* score changed (a row flipping
        between no-evidence ``θ`` and computed entries changes the
        score of every super-relation at once).
    """

    __slots__ = ("max_delta", "changed_supers", "default_changed")

    def __init__(self) -> None:
        self.max_delta = 0.0
        self.changed_supers: Set[Relation] = set()
        self.default_changed = False

    def note(self, sup: Optional[Relation], delta: float) -> None:
        if delta == 0.0:
            return
        self.max_delta = max(self.max_delta, delta)
        if sup is None:
            self.default_changed = True
        else:
            self.changed_supers.add(sup)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RowChange(max_delta={self.max_delta:.3e}, "
            f"supers={len(self.changed_supers)}, default={self.default_changed})"
        )


class IncrementalRelationPass:
    """One direction of the relation pass with per-statement term cache.

    Parameters mirror :func:`repro.core.subrelations.subrelation_pass`;
    ``ontology1`` is the sub-side ontology (the right one when
    ``reverse`` is set).  ``self.matrix`` is always equal to what a
    fresh ``subrelation_pass`` over the current ontology state and the
    last-refreshed view would produce (modulo summation drift, and
    bit-identical right after construction).
    """

    def __init__(
        self,
        ontology1: Ontology,
        ontology2: Ontology,
        view: EquivalenceView,
        truncation_threshold: float,
        max_pairs: int,
        reverse: bool = False,
        bootstrap_theta: float = 0.0,
    ) -> None:
        self.ontology1 = ontology1
        self.ontology2 = ontology2
        self.truncation_threshold = truncation_threshold
        self.max_pairs = max_pairs
        self.reverse = reverse
        self.bootstrap_theta = bootstrap_theta
        self.matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix()
        self._terms: Dict[Relation, Dict[Statement, Tuple[float, Dict[Relation, float]]]] = {}
        self._den: Dict[Relation, float] = {}
        self._num: Dict[Relation, Dict[Relation, float]] = {}
        self._capped: Set[Relation] = set()
        for relation in ontology1.relations(include_inverses=True):
            self._rebuild_relation(relation, view)

    # ------------------------------------------------------------------

    def _is_capped(self, relation: Relation) -> bool:
        return self.ontology1.num_statements(relation) > self.max_pairs

    def _rebuild_relation(self, relation: Relation, view: EquivalenceView) -> RowChange:
        """Recompute one relation's sums (and row) from scratch."""
        if self._is_capped(relation):
            self._capped.add(relation)
            self._terms.pop(relation, None)
            self._den.pop(relation, None)
            self._num.pop(relation, None)
            scores = score_relation(
                relation,
                self.ontology1,
                self.ontology2,
                view,
                self.max_pairs,
                reverse=self.reverse,
            )
            return self._install_row(relation, scores)
        self._capped.discard(relation)
        terms: Dict[Statement, Tuple[float, Dict[Relation, float]]] = {}
        den = 0.0
        num: Dict[Relation, float] = {}
        # Accumulate in the exact statement order of the sequential
        # pass, so a freshly built matrix is bit-identical to its
        # subrelation_pass counterpart.
        for x, y in self.ontology1.pairs(relation):
            den_term, num_terms = statement_terms(
                x, y, self.ontology2, view, reverse=self.reverse
            )
            if den_term != 0.0 or num_terms:
                terms[(x, y)] = (den_term, num_terms)
            den += den_term
            for relation2, term in num_terms.items():
                num[relation2] = num.get(relation2, 0.0) + term
        self._terms[relation] = terms
        self._den[relation] = den
        self._num[relation] = num
        return self._install_row(relation, self._row_from_sums(relation))

    def _row_from_sums(self, relation: Relation) -> Optional[Dict[Relation, float]]:
        den = self._den.get(relation, 0.0)
        if den <= 0.0:
            return None
        return {
            relation2: min(1.0, max(0.0, numerator / den))
            for relation2, numerator in self._num[relation].items()
        }

    def _install_row(
        self, relation: Relation, scores: Optional[Dict[Relation, float]]
    ) -> RowChange:
        """Replace the matrix row of ``relation``; report what moved."""
        old_entries = dict(self.matrix.supers_of(relation))
        old_default = self.matrix.sub_default(relation)
        self.matrix.clear_sub(relation)
        if scores is None:
            self.matrix.set_sub_default(relation, self.bootstrap_theta)
        else:
            for relation2, score in scores.items():
                if score >= self.truncation_threshold:
                    self.matrix.set(relation, relation2, score)
        change = RowChange()
        new_entries = dict(self.matrix.supers_of(relation))
        new_default = self.matrix.sub_default(relation)
        change.note(None, abs(new_default - old_default))
        for relation2 in old_entries.keys() | new_entries.keys():
            before = old_entries.get(relation2, old_default)
            after = new_entries.get(relation2, new_default)
            change.note(relation2, abs(after - before))
        return change

    # ------------------------------------------------------------------

    def refresh(
        self,
        view: EquivalenceView,
        changed_nodes: Iterable[Node] = (),
        changed_statements: Iterable[Tuple[Relation, Node, Node]] = (),
    ) -> Dict[Relation, RowChange]:
        """Bring the matrix up to date after a view or graph change.

        Parameters
        ----------
        view:
            The equivalents-view the matrix should now reflect (the
            warm pass's current restricted store + literal indexes).
        changed_nodes:
            Sub-side nodes whose equivalents changed since the last
            refresh — instances with moved scores, or literals whose
            candidate sets shifted.  Every statement touching such a
            node has stale terms.
        changed_statements:
            ``(relation, subject, object)`` data statements added or
            removed by a delta, oriented along ``relation`` (the
            inverse orientation is derived here).

        Returns the rows that changed, for frontier expansion.
        """
        dirty: Dict[Relation, Set[Statement]] = {}
        for node in changed_nodes:
            for relation, other in self.ontology1.statements_about(node):
                dirty.setdefault(relation, set()).add((node, other))
                dirty.setdefault(relation.inverse, set()).add((other, node))
        for relation, subject, obj in changed_statements:
            dirty.setdefault(relation, set()).add((subject, obj))
            dirty.setdefault(relation.inverse, set()).add((obj, subject))
        changes: Dict[Relation, RowChange] = {}
        for relation, statements in dirty.items():
            if (
                relation in self._capped
                or relation not in self._terms
                or self._is_capped(relation)
            ):
                change = self._rebuild_relation(relation, view)
            else:
                change = self._update_relation(relation, statements, view)
            if change.max_delta > 0.0:
                changes[relation] = change
        return changes

    def _update_relation(
        self,
        relation: Relation,
        statements: Set[Statement],
        view: EquivalenceView,
    ) -> RowChange:
        terms = self._terms[relation]
        den = self._den[relation]
        num = self._num[relation]
        for statement in statements:
            old_den, old_num = terms.pop(statement, (0.0, {}))
            den -= old_den
            for relation2, term in old_num.items():
                num[relation2] = num.get(relation2, 0.0) - term
            x, y = statement
            if self.ontology1.has(x, relation, y):
                new_den, new_num = statement_terms(
                    x, y, self.ontology2, view, reverse=self.reverse
                )
                if new_den != 0.0 or new_num:
                    terms[statement] = (new_den, new_num)
                den += new_den
                for relation2, term in new_num.items():
                    num[relation2] = num.get(relation2, 0.0) + term
        # Drop numerators that cancelled to (numerical) zero so rows do
        # not accumulate ghost entries.
        for relation2 in [r2 for r2, value in num.items() if value <= 0.0]:
            del num[relation2]
        self._num[relation] = num
        if not terms:
            # No contributing statements left: the true sum is exactly
            # zero; discard any subtraction-drift residue so the row
            # falls back to the no-evidence default like a fresh pass.
            den = 0.0
        elif den < _DEN_REBUILD_FLOOR:
            # The running sum is in drift territory (including a sum
            # driven to or below zero while contributing terms remain);
            # recompute exactly instead of trusting it.
            return self._rebuild_relation(relation, view)
        self._den[relation] = max(den, 0.0)
        return self._install_row(relation, self._row_from_sums(relation))


def current_assignments(
    maintainer: Optional["RestrictedViewMaintainer"], store: EquivalenceStore
) -> Tuple[Dict[Resource, Tuple[Resource, float]], Dict[Resource, Tuple[Resource, float]]]:
    """Both maximal assignments of ``store`` — copied from a resident
    maintainer when one exists (O(matched) dict copies; the live dicts
    keep mutating on later passes/deltas), computed fresh otherwise.
    The single definition behind warm-align snapshots, warm-align
    results and service attach, so they can never disagree."""
    if maintainer is not None:
        return dict(maintainer.assignment12), dict(maintainer.assignment21)
    return store.maximal_assignment(), store.maximal_assignment(reverse=True)


class RestrictedViewMaintainer:
    """Keeps ``store.restricted_to_maximal()`` live under row replacements.

    Parameters
    ----------
    store:
        The live full store.  Built once at attach time (O(store));
        every later :meth:`apply` costs O(frontier).

    Attributes
    ----------
    view_store:
        The maintained restricted store — always equal to
        ``store.restricted_to_maximal()`` (same entries, same floats).
    assignment12, assignment21:
        The maintained maximal assignments, equal to
        ``store.maximal_assignment()`` / ``(reverse=True)``.  Mutated in
        place by :meth:`apply`; copy before handing out.
    """

    def __init__(self, store: EquivalenceStore) -> None:
        self.store = store
        self.assignment12 = store.maximal_assignment()
        self.assignment21 = store.maximal_assignment(reverse=True)
        self.view_store = EquivalenceStore(store.truncation_threshold)
        for left, (right, probability) in self.assignment12.items():
            self.view_store.set(left, right, probability)
        for right, (left, probability) in self.assignment21.items():
            self.view_store.set(left, right, probability)

    def apply(
        self, overlay: OverlayStore
    ) -> Dict[Tuple[Resource, Resource], Tuple[float, float]]:
        """Fold an overlay's touched rows into the restricted view.

        Must run *before* ``overlay.commit()`` (old rows are read from
        the base, new rows through the overlay).  Returns the restricted
        view entries that changed, as ``(left, right) -> (old, new)`` —
        the warm loop's convergence/frontier signal, in O(frontier)
        instead of a full store diff.
        """
        if overlay.base is not self.store:
            raise ValueError("overlay must be layered over the maintained store")
        assignment12 = self.assignment12
        assignment21 = self.assignment21
        affected_rights: Set[Resource] = set()
        candidates: Set[Tuple[Resource, Resource]] = set()
        for left in overlay.touched_lefts:
            old_row = self.store.equals_of(left)
            new_row = overlay.equals_of(left)
            affected_rights.update(old_row.keys())
            affected_rights.update(new_row.keys())
            old_best = assignment12.get(left)
            if old_best is not None:
                candidates.add((left, old_best[0]))
            new_best = best_counterpart(new_row)
            if new_best is None:
                assignment12.pop(left, None)
            else:
                assignment12[left] = new_best
                candidates.add((left, new_best[0]))
        for right in affected_rights:
            old_best = assignment21.get(right)
            if old_best is not None:
                candidates.add((old_best[0], right))
            new_best = best_counterpart(overlay.equals_of_right(right))
            if new_best is None:
                assignment21.pop(right, None)
            else:
                assignment21[right] = new_best
                candidates.add((new_best[0], right))
        changes: Dict[Tuple[Resource, Resource], Tuple[float, float]] = {}
        view = self.view_store
        for left, right in candidates:
            best12 = assignment12.get(left)
            best21 = assignment21.get(right)
            if best12 is not None and best12[0] == right:
                desired = best12[1]
            elif best21 is not None and best21[0] == left:
                desired = best21[1]
            else:
                desired = 0.0
            current = view.get(left, right)
            if desired == current:
                continue
            if desired == 0.0:
                view.discard(left, right)
            else:
                view.set(left, right, desired)
            changes[(left, right)] = (current, desired)
        return changes
