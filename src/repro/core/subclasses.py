"""Sub-class pass (Section 4.3, Eq. 17).

For classes ``c`` of one ontology and ``c'`` of the other::

                Σ_{x : type(x,c)} (1 − ∏_{y : type(y,c')} (1 − Pr(x ≡ y)))
  Pr(c ⊆ c') = ────────────────────────────────────────────────────────────
                                  #x : type(x, c)

i.e. the expected fraction of ``c``'s instances that match some
instance of ``c'``.  The paper computes class inclusions **once, after
the instance fixpoint has converged** (class evidence is deliberately
not fed back into instance equivalence — Section 4.3 explains why:
granularity mismatches and class-vs-relation modelling differences make
it unreliable).

Class extensions are taken in their deductive closure: an instance of
``MaleSingers`` counts as an instance of ``singer`` and ``person`` too,
which is what lets PARIS assign one class to multiple superclasses in
the other taxonomy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..rdf.closure import superclass_closure
from ..rdf.ontology import Ontology
from ..rdf.terms import Resource
from .matrix import SubsumptionMatrix
from .view import EquivalenceView


def closed_classes_of(
    ontology: Ontology, closure: Mapping[Resource, Set[Resource]] | None = None
) -> Dict[Resource, Set[Resource]]:
    """Map each instance to its classes including all superclasses."""
    if closure is None:
        closure = superclass_closure(ontology)
    result: Dict[Resource, Set[Resource]] = {}
    for instance in ontology.instances:
        direct = ontology.classes_of(instance)
        if not direct:
            continue
        closed: Set[Resource] = set()
        for cls in direct:
            closed.add(cls)
            closed |= closure.get(cls, set())
        result[instance] = closed
    return result


def score_class(
    cls: Resource,
    ontology1: Ontology,
    view: EquivalenceView,
    classes_of_right: Mapping[Resource, Set[Resource]],
    max_instances: int,
    reverse: bool = False,
) -> Dict[Resource, float]:
    """Scores ``Pr(cls ⊆ c')`` for every class ``c'`` of the other side.

    Parameters
    ----------
    classes_of_right:
        Closed instance→classes map of the *other* ontology.
    max_instances:
        Cap on evaluated members (the Eq. 17 pair cap of Section 5.2).
        When the extension is larger, the score is computed over the
        first ``max_instances`` members and remains an unbiased
        estimate of the full ratio.
    """
    members = ontology1.instances_of(cls)
    if not members:
        return {}
    numerators: Dict[Resource, float] = {}
    examined = 0
    for x in members:
        if examined >= max_instances:
            break
        examined += 1
        products: Dict[Resource, float] = {}
        for y, probability in view.equivalents(x, reverse=reverse):
            if probability <= 0.0:
                continue
            for cls2 in classes_of_right.get(y, ()):  # type: ignore[arg-type]
                products[cls2] = products.get(cls2, 1.0) * (1.0 - probability)
        for cls2, product in products.items():
            numerators[cls2] = numerators.get(cls2, 0.0) + (1.0 - product)
    if examined == 0:
        return {}
    return {cls2: min(1.0, total / examined) for cls2, total in numerators.items()}


def score_classes(
    classes: Iterable[Resource],
    ontology1: Ontology,
    view: EquivalenceView,
    classes_of_right: Mapping[Resource, Set[Resource]],
    max_instances: int,
    reverse: bool = False,
) -> list:
    """Score a batch of classes; the shard unit of the parallel pass.

    Each class's row depends only on the frozen inputs (its extension
    and the previous view), never on other classes, so any partition of
    the class list yields the same rows — the Eq. 17 analogue of
    :func:`repro.core.equivalence.score_instances`.  Returns
    ``(cls, scores)`` pairs in input order.
    """
    return [
        (
            cls,
            score_class(
                cls, ontology1, view, classes_of_right, max_instances, reverse=reverse
            ),
        )
        for cls in classes
    ]


def subclass_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_instances: int,
    reverse: bool = False,
) -> SubsumptionMatrix[Resource]:
    """Compute ``Pr(c ⊆ c')`` for every class ``c`` of ``ontology1``."""
    matrix: SubsumptionMatrix[Resource] = SubsumptionMatrix()
    classes_of_right = closed_classes_of(ontology2)
    for cls in ontology1.classes:
        scores = score_class(
            cls, ontology1, view, classes_of_right, max_instances, reverse=reverse
        )
        for cls2, score in scores.items():
            if score >= truncation_threshold:
                matrix.set(cls, cls2, score)
    return matrix


class IncrementalClassPass:
    """Delta-aware Eq. 17 pass: per-class rows cached across warm runs.

    One direction of :func:`subclass_pass` with the same arguments and
    the same output, but a class row is recomputed only when one of its
    inputs changed:

    * the class's direct extension (an ``rdf:type`` change on the
      member side — :meth:`invalidate_classes`);
    * the equivalents-view row of one of its members (reported by the
      warm fixpoint — :meth:`invalidate_members`);
    * the closed class sets of the *other* ontology (type/subclass
      changes over there — :meth:`invalidate_closure`, which also drops
      every cached row because the numerators read that map).

    Rows of classes over the ``max_instances`` cap are cached like any
    other: a recompute walks the same extension set in the same
    iteration order, so the cached row equals the fresh one.  The
    service engine owns two of these (one per direction) and feeds them
    through :meth:`ParisAligner.warm_align`; a fresh instance is
    equivalent to a plain :func:`subclass_pass`.
    """

    def __init__(
        self,
        ontology1: Ontology,
        ontology2: Ontology,
        truncation_threshold: float,
        max_instances: int,
        reverse: bool = False,
    ) -> None:
        self.ontology1 = ontology1
        self.ontology2 = ontology2
        self.truncation_threshold = truncation_threshold
        self.max_instances = max_instances
        self.reverse = reverse
        self._rows: Dict[Resource, Dict[Resource, float]] = {}
        self._closure: Optional[Dict[Resource, Set[Resource]]] = None
        self._class_closure: Optional[Dict[Resource, Set[Resource]]] = None

    # -- invalidation --------------------------------------------------

    def invalidate_classes(self, classes: Iterable[Resource]) -> None:
        """Drop the cached rows of ``classes`` (extension changed)."""
        for cls in classes:
            self._rows.pop(cls, None)

    def invalidate_members(self, instances: Iterable[Resource]) -> None:
        """Drop rows of every class a changed member belongs to."""
        for instance in instances:
            for cls in self.ontology1.classes_of(instance):
                self._rows.pop(cls, None)

    def invalidate_closure(self) -> None:
        """The other side's *class graph* changed: drop everything."""
        self._closure = None
        self._class_closure = None
        self._rows.clear()

    def refresh_other_member(self, instance: Resource) -> None:
        """An ``rdf:type`` change on the other side touched one
        instance: update just its closed class set (the class *graph*
        is unchanged, so the cached superclass closure stays valid).
        Row invalidation is the caller's job — only classes with a
        member matched to ``instance`` read this entry."""
        if self._closure is None:
            return
        closed: Set[Resource] = set()
        for cls in self.ontology2.classes_of(instance):
            closed.add(cls)
            closed |= (self._class_closure or {}).get(cls, set())
        if closed:
            self._closure[instance] = closed
        else:
            self._closure.pop(instance, None)

    # -- computation ---------------------------------------------------

    def matrix(self, view: EquivalenceView) -> SubsumptionMatrix[Resource]:
        """The full class matrix against ``view``, reusing valid rows.

        ``view`` must be the final restricted view of the run; callers
        are responsible for invalidating the rows whose members moved
        since the previous call.
        """
        if self._closure is None:
            self._class_closure = superclass_closure(self.ontology2)
            self._closure = closed_classes_of(self.ontology2, self._class_closure)
        matrix: SubsumptionMatrix[Resource] = SubsumptionMatrix()
        for cls in self.ontology1.classes:
            row = self._rows.get(cls)
            if row is None:
                row = score_class(
                    cls,
                    self.ontology1,
                    view,
                    self._closure,
                    self.max_instances,
                    reverse=self.reverse,
                )
                self._rows[cls] = row
            for cls2, score in row.items():
                if score >= self.truncation_threshold:
                    matrix.set(cls, cls2, score)
        return matrix
