"""Sub-class pass (Section 4.3, Eq. 17).

For classes ``c`` of one ontology and ``c'`` of the other::

                Σ_{x : type(x,c)} (1 − ∏_{y : type(y,c')} (1 − Pr(x ≡ y)))
  Pr(c ⊆ c') = ────────────────────────────────────────────────────────────
                                  #x : type(x, c)

i.e. the expected fraction of ``c``'s instances that match some
instance of ``c'``.  The paper computes class inclusions **once, after
the instance fixpoint has converged** (class evidence is deliberately
not fed back into instance equivalence — Section 4.3 explains why:
granularity mismatches and class-vs-relation modelling differences make
it unreliable).

Class extensions are taken in their deductive closure: an instance of
``MaleSingers`` counts as an instance of ``singer`` and ``person`` too,
which is what lets PARIS assign one class to multiple superclasses in
the other taxonomy.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

from ..rdf.closure import superclass_closure
from ..rdf.ontology import Ontology
from ..rdf.terms import Resource
from .matrix import SubsumptionMatrix
from .view import EquivalenceView


def closed_classes_of(
    ontology: Ontology, closure: Mapping[Resource, Set[Resource]] | None = None
) -> Dict[Resource, Set[Resource]]:
    """Map each instance to its classes including all superclasses."""
    if closure is None:
        closure = superclass_closure(ontology)
    result: Dict[Resource, Set[Resource]] = {}
    for instance in ontology.instances:
        direct = ontology.classes_of(instance)
        if not direct:
            continue
        closed: Set[Resource] = set()
        for cls in direct:
            closed.add(cls)
            closed |= closure.get(cls, set())
        result[instance] = closed
    return result


def score_class(
    cls: Resource,
    ontology1: Ontology,
    view: EquivalenceView,
    classes_of_right: Mapping[Resource, Set[Resource]],
    max_instances: int,
    reverse: bool = False,
) -> Dict[Resource, float]:
    """Scores ``Pr(cls ⊆ c')`` for every class ``c'`` of the other side.

    Parameters
    ----------
    classes_of_right:
        Closed instance→classes map of the *other* ontology.
    max_instances:
        Cap on evaluated members (the Eq. 17 pair cap of Section 5.2).
        When the extension is larger, the score is computed over the
        first ``max_instances`` members and remains an unbiased
        estimate of the full ratio.
    """
    members = ontology1.instances_of(cls)
    if not members:
        return {}
    numerators: Dict[Resource, float] = {}
    examined = 0
    for x in members:
        if examined >= max_instances:
            break
        examined += 1
        products: Dict[Resource, float] = {}
        for y, probability in view.equivalents(x, reverse=reverse):
            if probability <= 0.0:
                continue
            for cls2 in classes_of_right.get(y, ()):  # type: ignore[arg-type]
                products[cls2] = products.get(cls2, 1.0) * (1.0 - probability)
        for cls2, product in products.items():
            numerators[cls2] = numerators.get(cls2, 0.0) + (1.0 - product)
    if examined == 0:
        return {}
    return {cls2: min(1.0, total / examined) for cls2, total in numerators.items()}


def subclass_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_instances: int,
    reverse: bool = False,
) -> SubsumptionMatrix[Resource]:
    """Compute ``Pr(c ⊆ c')`` for every class ``c`` of ``ontology1``."""
    matrix: SubsumptionMatrix[Resource] = SubsumptionMatrix()
    classes_of_right = closed_classes_of(ontology2)
    for cls in ontology1.classes:
        scores = score_class(
            cls, ontology1, view, classes_of_right, max_instances, reverse=reverse
        )
        for cls2, score in scores.items():
            if score >= truncation_threshold:
                matrix.set(cls, cls2, score)
    return matrix
