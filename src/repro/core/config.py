"""Configuration of the PARIS aligner.

The paper stresses (Section 5.4) that PARIS has **no dataset-dependent
tuning parameters**: the only knobs are the bootstrap/truncation value
``θ`` (shown in Section 6.3 to not affect results) and the literal
similarity function (application-dependent; the identity function is
the paper's default and works well).  Everything else in this class
exposes the fixed implementation choices of Section 5 so that the
Section 6.3 / Appendix A ablations can toggle them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..literals import IdentitySimilarity, LiteralSimilarity
from .functionality import FunctionalityDefinition

#: Eq. 13 scoring engines selectable via ``ParisConfig.scoring``.
SCORING_MODES = ("auto", "dict", "vectorized")


@dataclass
class ParisConfig:
    """Settings for one alignment run.

    Parameters
    ----------
    theta:
        Initial value for ``Pr(r ⊆ r')`` in the very first iteration,
        and the truncation threshold below which probabilities are
        clamped to zero (Section 5.2).  Paper value: ``0.1``.
    use_name_prior:
        Replace the uniform bootstrap with the relation-name prior of
        :mod:`repro.core.priors` — the extension the paper's conclusion
        conjectures ("the name heuristics of more traditional
        schema-alignment techniques could be factored into the model").
        Off by default: the paper's headline claim is that PARIS works
        without any name heuristics.
    name_prior_max:
        Prior assigned to a perfect relation-name match when
        ``use_name_prior`` is on (floor stays at ``theta``).
    literal_similarity:
        Clamped literal-equivalence function (Section 5.3).  Default is
        the strict identity measure used in the paper's experiments.
    max_iterations:
        Hard cap on fixpoint iterations; the paper's runs converge in
        2–4.
    convergence_threshold:
        Convergence is declared when the fraction of instances whose
        maximal assignment changed drops below this (paper: "until less
        than 1 % of the entities changed their maximal assignment").
    use_negative_evidence:
        If ``True``, use Eq. 14 (positive and negative evidence) instead
        of Eq. 13 (positive only).  The paper found Eq. 13 sufficient
        and Eq. 14 harmful under strict literal identity (Section 6.3).
    restrict_to_maximal_assignment:
        Section 5.2: "For each computation, our algorithm considers only
        the equalities of the previous maximal assignment and ignores
        all other equalities."  Disabling this reproduces the
        second Section 6.3 ablation (all probabilities considered).
    max_pairs_per_relation:
        Cap on the number of statement pairs evaluated per relation in
        Eq. 12 and per class in Eq. 17 (paper: 10 000).
    functionality:
        Which Appendix-A definition of global functionality to use;
        the paper chooses the harmonic mean.
    dampening:
        Blend factor for successive instance-equivalence estimates
        (``p ← dampening·p_old + (1−dampening)·p_new``).  0 reproduces
        the paper's plain iteration; positive values implement the
        "progressively increasing dampening factor" the paper suggests
        for enforcing convergence (Section 5.1).
    detect_cycles:
        Declare convergence when the maximal assignment exactly
        repeats an assignment seen two iterations earlier (a period-2
        oscillation between equally plausible matches).  The current
        iteration's assignment is kept.
    keep_snapshots:
        Record per-iteration maximal assignments for Table-3/5 style
        per-iteration evaluation (costs memory proportional to the
        number of matched instances per iteration).
    workers:
        Worker count for the instance pass (Section 5.1 runs it "in
        parallel on all available processors").  ``1`` (default) keeps
        the bit-identical sequential path; larger values shard the
        instances across workers via :mod:`repro.core.parallel`, with
        scores guaranteed equal to the sequential engine (see that
        module's docstring for the exactness guarantee).
    shard_size:
        Instances per shard for the parallel engine; ``None`` derives a
        size from the worker count.  Setting it with ``workers=1``
        exercises the shard/merge pipeline in-process.
    parallel_backend:
        ``"process"`` (default; real multi-core speedup through the
        persistent fork-once worker pool) or ``"thread"`` (shared
        memory, GIL-bound — useful for testing and small inputs).
    scoring:
        Which Eq. 13 scoring engine the aligner uses.  ``"auto"``
        (default) picks the interned-ID vectorized kernel
        (:mod:`repro.core.vectorized`) whenever numpy is available and
        negative evidence is off, falling back to the dict reference
        implementation otherwise; ``"dict"`` forces the reference path;
        ``"vectorized"`` requires the kernel and raises if numpy is
        missing.  Both engines produce bit-identical scores (the kernel
        mirrors the dict path's float operations and fold order —
        enforced by ``tests/test_vectorized.py``), so this knob trades
        speed, never results.
    score_stationarity:
        Replace the assignment-change convergence criterion with
        *numeric stationarity*: iterate until no stored probability
        moves by more than ``warm_tolerance`` between iterations (or
        the iteration cap).  Cycle detection is suspended in this mode.
        This is the reference the warm-start fixpoint is compared
        against: on clean inputs the fixpoint becomes bit-stable within
        a few extra iterations, making incremental recomputation
        equality testable.
    warm_tolerance:
        Score/matrix changes at or below this magnitude neither spread
        the warm-start dirty frontier nor block its convergence; also
        the stationarity slack of ``score_stationarity``.  Keep it a
        few orders below the equality budget you care about (default
        1e-12 against the service's documented 1e-9).
    warm_full_pass_fraction:
        When the dirty frontier of a warm pass exceeds this fraction of
        the instances, the pass re-scores everything instead — frontier
        bookkeeping costs more than it saves beyond that point.
    warm_max_iterations:
        Hard cap on warm-start passes (a warm pass is cheap, so the
        default is looser than ``max_iterations``).
    """

    theta: float = 0.1
    use_name_prior: bool = False
    name_prior_max: float = 0.5
    literal_similarity: LiteralSimilarity = field(default_factory=IdentitySimilarity)
    max_iterations: int = 10
    convergence_threshold: float = 0.01
    use_negative_evidence: bool = False
    restrict_to_maximal_assignment: bool = True
    max_pairs_per_relation: int = 10_000
    functionality: FunctionalityDefinition = FunctionalityDefinition.HARMONIC
    dampening: float = 0.0
    detect_cycles: bool = True
    keep_snapshots: bool = True
    workers: int = 1
    shard_size: Optional[int] = None
    parallel_backend: str = "process"
    scoring: str = "auto"
    score_stationarity: bool = False
    warm_tolerance: float = 1e-12
    warm_full_pass_fraction: float = 0.5
    warm_max_iterations: int = 60

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if not 0.0 < self.theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {self.theta}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= self.convergence_threshold <= 1.0:
            raise ValueError("convergence_threshold must be in [0, 1]")
        if self.max_pairs_per_relation < 1:
            raise ValueError("max_pairs_per_relation must be >= 1")
        if not 0.0 <= self.dampening < 1.0:
            raise ValueError("dampening must be in [0, 1)")
        if self.use_name_prior and not self.theta <= self.name_prior_max <= 1.0:
            raise ValueError(
                "name_prior_max must be in [theta, 1] when use_name_prior is on"
            )
        if not isinstance(self.functionality, FunctionalityDefinition):
            raise TypeError("functionality must be a FunctionalityDefinition")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if not 0.0 <= self.warm_tolerance < 1.0:
            raise ValueError(f"warm_tolerance must be in [0, 1), got {self.warm_tolerance}")
        if not 0.0 < self.warm_full_pass_fraction <= 1.0:
            raise ValueError(
                "warm_full_pass_fraction must be in (0, 1], "
                f"got {self.warm_full_pass_fraction}"
            )
        if self.warm_max_iterations < 1:
            raise ValueError("warm_max_iterations must be >= 1")
        from .parallel import BACKENDS

        if self.parallel_backend not in BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {BACKENDS}, "
                f"got {self.parallel_backend!r}"
            )
        if self.scoring not in SCORING_MODES:
            raise ValueError(
                f"scoring must be one of {SCORING_MODES}, got {self.scoring!r}"
            )
        if self.scoring == "vectorized":
            from .vectorized import HAVE_NUMPY

            if not HAVE_NUMPY:
                raise ValueError("scoring='vectorized' requires numpy")
            if self.use_negative_evidence:
                raise ValueError(
                    "scoring='vectorized' cannot run negative evidence "
                    "(Eq. 14 reads arbitrary statements); use scoring='auto' "
                    "or 'dict'"
                )
