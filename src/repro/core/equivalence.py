"""Instance-equivalence pass (Section 4.1–4.2, Eq. 13 and Eq. 14).

The *reference implementation* of the per-instance equivalence score:
per-instance Python dicts, one statement pair at a time, using the
optimized Section 5.2 traversal (``O(n·m²·e)``).  The production path
is the bit-identical interned-ID numpy kernel in
:mod:`repro.core.vectorized` (selected via ``ParisConfig.scoring``);
this module remains the only engine for Eq. 14 negative evidence.
Formulas, traversal and engine-equivalence notes:
``docs/architecture.md`` (section "The core: one pass, three
engines").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Relation, Resource
from .functionality import FunctionalityOracle
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore
from .view import EquivalenceView

#: Probabilities whose complement underflows to exactly 0 would make a
#: single statement pair decide the whole product; clamp factors away
#: from 0 so several strong pairs still outrank one.
_MIN_FACTOR = 1e-12


def ordered_instances(instances: Iterable[Resource]) -> List[Resource]:
    """Instances in the canonical traversal order (sorted by name).

    Both the sequential pass and the parallel engine's partitioner MUST
    use this one ordering: later-iteration passes accumulate floats over
    store dict order, so bit-identity between sequential and sharded
    runs holds only while they fill the store in the same insertion
    order.
    """
    return sorted(instances, key=lambda instance: instance.name)


def score_instance(
    x: Resource,
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
) -> Dict[Resource, float]:
    """Positive-evidence scores ``Pr1(x ≡ ·)`` for one instance (Eq. 13).

    Returns a map from candidate instances ``x'`` of ``ontology2`` to
    their scores; candidates that no statement pair supports are absent
    (score 0, never stored — Section 5.2).
    """
    products: Dict[Resource, float] = {}
    for relation, y in ontology1.statements_about(x):
        inverse_fun_r = fun1.inverse_fun(relation)
        for y_prime, prob_y in view.equivalents(y):
            for relation2_inverse, x_prime in ontology2.statements_about(y_prime):
                if isinstance(x_prime, Literal):
                    continue
                relation2 = relation2_inverse.inverse
                factor = 1.0
                score_21 = rel21.get(relation2, relation)
                if score_21 > 0.0:
                    factor *= 1.0 - score_21 * inverse_fun_r * prob_y
                score_12 = rel12.get(relation, relation2)
                if score_12 > 0.0:
                    factor *= 1.0 - score_12 * fun2.inverse_fun(relation2) * prob_y
                if factor >= 1.0:
                    continue
                current = products.get(x_prime, 1.0)
                products[x_prime] = max(current * factor, _MIN_FACTOR)
    return {x_prime: 1.0 - product for x_prime, product in products.items()}


def negative_evidence_factor(
    x: Resource,
    x_prime: Resource,
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
) -> float:
    """The Eq. 14 penalty term ``Pr2(x ≡ x')``.

    For every statement ``r(x, y)`` and every relation ``r'`` of the
    second ontology aligned with ``r``, the candidate is penalized in
    proportion to ``fun(r)`` unless some ``y'`` with ``r'(x', y')``
    matches ``y``.  When ``x'`` has no ``r'`` statement at all, the
    inner product is 1 (the paper: "this decreases Pr(x ≡ x') in case
    one instance has relations that the other one does not have").
    """
    penalty = 1.0
    for relation, y in ontology1.statements_about(x):
        fun_r = fun1.fun(relation)
        # Relations r' explicitly aligned with r, in either direction.
        aligned: Dict[Relation, Tuple[float, float]] = {}
        for relation2, score in rel21.subs_of(relation).items():
            aligned.setdefault(relation2, (0.0, 0.0))
            aligned[relation2] = (score, aligned[relation2][1])
        for relation2, score in rel12.supers_of(relation).items():
            previous = aligned.setdefault(relation2, (0.0, 0.0))
            aligned[relation2] = (previous[0], score)
        for relation2, (score_21, score_12) in aligned.items():
            inner = 1.0
            for y_prime in ontology2.objects(relation2, x_prime):
                inner *= 1.0 - view.prob(y, y_prime)
                if inner == 0.0:
                    break
            if score_21 > 0.0:
                penalty *= 1.0 - fun_r * score_21 * inner
            if score_12 > 0.0:
                penalty *= 1.0 - fun2.fun(relation2) * score_12 * inner
            if penalty < _MIN_FACTOR:
                return 0.0
    return penalty


def score_instances(
    instances: Iterable[Resource],
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
) -> List[Tuple[Resource, Resource, float]]:
    """Score a batch of instances; the shard unit of the parallel engine.

    Each instance's scores depend only on the frozen inputs (ontologies,
    previous-iteration view, functionalities, relation matrices), never
    on other instances of the batch, so any partition of
    ``ontology1.instances`` into batches yields the same entries — this
    is what makes the sharded engine in :mod:`repro.core.parallel`
    exactly equivalent to the sequential pass.
    """
    entries: List[Tuple[Resource, Resource, float]] = []
    for x in instances:
        scores = score_instance(x, ontology1, ontology2, view, fun1, fun2, rel12, rel21)
        for x_prime, score in scores.items():
            if use_negative_evidence and score >= truncation_threshold:
                score *= negative_evidence_factor(
                    x, x_prime, ontology1, ontology2, view, fun1, fun2, rel12, rel21
                )
            if score >= truncation_threshold:
                entries.append((x, x_prime, score))
    return entries


def instance_equivalence_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
) -> EquivalenceStore:
    """One full instance-equivalence sweep over ``ontology1``.

    The scores of Eq. 13 are symmetric in the two ontologies (each
    statement pair contributes the same two factors seen from either
    side), so a single sweep fills the store for both directions.
    """
    store = EquivalenceStore(truncation_threshold)
    # Canonical traversal order shared with the parallel partitioner
    # (see ordered_instances).  One instance per batch streams entries
    # into the store instead of materializing the whole pass result as
    # one list (the shard-sized lists are for the parallel engine,
    # which must ship them between workers anyway).
    for x in ordered_instances(ontology1.instances):
        store.update(
            score_instances(
                (x,),
                ontology1,
                ontology2,
                view,
                fun1,
                fun2,
                rel12,
                rel21,
                truncation_threshold,
                use_negative_evidence,
            )
        )
    return store
