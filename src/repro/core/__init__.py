"""PARIS core: the probabilistic alignment model and its fixpoint driver.

Public entry points:

* :class:`ParisAligner` / :func:`align` — run a full alignment,
* :class:`ParisConfig` — the (nearly parameter-free) settings,
* :class:`AlignmentResult` — instances, relations, classes and
  per-iteration snapshots,
* :class:`FunctionalityOracle` and the Eq. 1–2 functionality functions,
* the individual passes (:func:`instance_equivalence_pass`,
  :func:`subrelation_pass`, :func:`subclass_pass`) for ablations and
  step-by-step inspection,
* the sharded parallel instance and relation passes
  (:func:`parallel_instance_equivalence_pass`,
  :func:`parallel_subrelation_pass`, :func:`partition_instances`) with
  their sequential-equivalence guarantee,
* the incremental machinery behind the alignment service
  (:class:`IncrementalRelationPass` and
  :meth:`ParisAligner.warm_align` — delta-driven warm-start fixpoints
  over a previous run's state; the service layer lives in
  :mod:`repro.service`).
"""

from .aligner import ParisAligner, align
from .config import ParisConfig
from .equivalence import instance_equivalence_pass, negative_evidence_factor, score_instance
from .incremental import IncrementalRelationPass, RowChange
from .functionality import (
    FunctionalityDefinition,
    FunctionalityOracle,
    global_functionality,
    global_inverse_functionality,
    local_functionality,
    local_inverse_functionality,
)
from .literal_index import LiteralIndex
from .matrix import SubsumptionMatrix
from .multi import EntityCluster, MultiAligner, MultiAlignmentResult, align_many
from .parallel import (
    parallel_instance_equivalence_pass,
    parallel_score_instances,
    parallel_subrelation_pass,
    partition_instances,
    partition_ordered,
)
from .priors import name_prior_matrix, name_similarity, name_tokens
from .result import AlignmentResult, Assignment, IterationSnapshot
from .store import EquivalenceStore
from .subclasses import closed_classes_of, score_class, subclass_pass
from .subrelations import score_relation, subrelation_pass
from .view import EquivalenceView

__all__ = [
    "ParisAligner",
    "align",
    "ParisConfig",
    "AlignmentResult",
    "Assignment",
    "IterationSnapshot",
    "EquivalenceStore",
    "EquivalenceView",
    "SubsumptionMatrix",
    "LiteralIndex",
    "FunctionalityDefinition",
    "FunctionalityOracle",
    "local_functionality",
    "local_inverse_functionality",
    "global_functionality",
    "global_inverse_functionality",
    "score_instance",
    "negative_evidence_factor",
    "instance_equivalence_pass",
    "parallel_instance_equivalence_pass",
    "parallel_score_instances",
    "parallel_subrelation_pass",
    "partition_instances",
    "partition_ordered",
    "IncrementalRelationPass",
    "RowChange",
    "score_relation",
    "subrelation_pass",
    "score_class",
    "closed_classes_of",
    "subclass_pass",
    "MultiAligner",
    "MultiAlignmentResult",
    "EntityCluster",
    "align_many",
    "name_tokens",
    "name_similarity",
    "name_prior_matrix",
]
