"""Sharded parallel instance-equivalence engine (Section 5.1).

The paper runs the per-instance equivalence computation "in parallel on
all available processors": within one iteration, every instance's
scores depend only on the *previous* iteration's equivalences and on
per-ontology constants, never on the scores of other instances computed
in the same iteration.  This module exploits that independence:

1. **Partition** — :func:`partition_instances` sorts the instances of
   the first ontology by name and cuts the sorted list into contiguous
   shards.  Sorting makes the partition (and hence the merge order)
   independent of set-iteration order.
2. **Score** — each worker runs
   :func:`repro.core.equivalence.score_instances` — the exact code of
   the sequential pass — on its shard against read-only frozen views
   (ontologies, previous-iteration :class:`EquivalenceView`,
   functionality oracles, relation matrices).
3. **Merge** — shard results are folded into one
   :class:`EquivalenceStore` *in shard order* via
   :meth:`EquivalenceStore.update`, regardless of which worker finished
   first, so the result is deterministic under any scheduling.

Equivalence guarantee
---------------------
``workers=1`` with no explicit shard size short-circuits to
:func:`instance_equivalence_pass` — bit-identical to the sequential
engine by construction.  With more workers, every ``(x, x')`` score is
computed by the same code on the same frozen inputs, and the sequential
pass traverses instances in the same sorted order the partitioner uses,
so sequential and sharded runs fill the store in the *same insertion
order* — which matters because later-iteration passes accumulate floats
over store dict order.  The ``thread`` backend (and the ``process``
backend under the default ``fork`` start method, where workers inherit
the parent's hash seed and hence its dict/set iteration orders)
therefore reproduces the sequential floating-point results exactly,
across whole fixpoint runs.  Under a ``spawn`` start method the per-instance factor
products may be accumulated in a different set order, which can perturb
scores at the level of one ulp (≪ 1e-12).  The test harness in
``tests/test_parallel.py`` / ``tests/test_parallel_properties.py``
enforces the guarantee; it is not left to inspection.

The ``thread`` backend shares the input structures and is cheap to
start, but the pure-Python scoring loop holds the GIL, so wall-clock
gains come from the ``process`` backend (the default for ``workers >
1``), which pays one state pickle per worker per pass.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..rdf.ontology import Ontology
from ..rdf.terms import Relation, Resource
from .equivalence import (
    instance_equivalence_pass,
    ordered_instances,
    score_instances,
)
from .functionality import FunctionalityOracle
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore
from .subrelations import apply_relation_scores, score_relations, subrelation_pass
from .view import EquivalenceView

T = TypeVar("T")

#: Executor backends selectable via ``ParisConfig.parallel_backend``.
BACKENDS = ("thread", "process")

#: Default shards per worker.  Several small shards per worker smooth
#: out skew (a shard of hub instances with many statements costs more
#: than one of leaves) without drowning the pass in task overhead.
SHARDS_PER_WORKER = 4

#: One shard's scores: ``(x, x', Pr(x ≡ x'))`` tuples in scoring order.
ShardEntries = List[Tuple[Resource, Resource, float]]


def partition_ordered(
    items: Sequence[T],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[T]]:
    """Cut an already-ordered sequence into contiguous shards.

    The order-preserving core of :func:`partition_instances`, reused by
    the relation pass (whose canonical order is the ontology's relation
    registration order, not a sort) and by the warm-start fixpoint
    (whose dirty frontier is pre-sorted).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if not items:
        return []
    if shard_size is None:
        shard_size = math.ceil(len(items) / (workers * SHARDS_PER_WORKER))
    return [list(items[i : i + shard_size]) for i in range(0, len(items), shard_size)]


def partition_instances(
    instances: Iterable[Resource],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[Resource]]:
    """Cut ``instances`` into deterministic contiguous shards.

    Instances are put in the canonical sorted order first (the same
    :func:`ordered_instances` traversal the sequential pass uses), so
    the same input set always produces the same shards in the same
    order — the anchor of the engine's determinism guarantee.

    Parameters
    ----------
    instances:
        The instances of the first ontology (any iterable; typically a
        set).
    workers:
        Intended worker count; used to derive a default shard size of
        ``ceil(n / (workers * SHARDS_PER_WORKER))``.
    shard_size:
        Explicit shard size; overrides the derived default.
    """
    return partition_ordered(ordered_instances(instances), workers, shard_size)


# ----------------------------------------------------------------------
# worker plumbing
# ----------------------------------------------------------------------

#: Frozen per-pass state, installed once per process worker by the
#: executor initializer so shard tasks only ship the shard itself.
_WORKER_STATE: Optional[tuple] = None


def _init_worker(state: tuple) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _score_shard(shard: List[Resource]) -> ShardEntries:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return score_instances(shard, *_WORKER_STATE)


def _score_relation_shard(shard: List[Relation]):
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return score_relations(shard, *_WORKER_STATE)


def _process_context():
    """Prefer ``fork``: workers inherit the parent's hash seed, keeping
    set-iteration (and hence float-accumulation) order identical to the
    sequential pass."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the parallel pass
# ----------------------------------------------------------------------


def parallel_instance_equivalence_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> EquivalenceStore:
    """Sharded, parallel drop-in for :func:`instance_equivalence_pass`.

    Parameters beyond the sequential pass:

    workers:
        Worker count.  ``1`` with the default shard size falls back to
        the sequential pass (bit-identical by construction); ``1`` with
        an explicit ``shard_size`` runs the shard/merge pipeline
        in-process, which exercises merge determinism without an
        executor.
    shard_size:
        Instances per shard (default: spread over
        ``workers * SHARDS_PER_WORKER`` shards).
    backend:
        ``"process"`` (default) or ``"thread"``.  See the module
        docstring for the exactness/throughput trade-off.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    common = (
        ontology1,
        ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        truncation_threshold,
        use_negative_evidence,
    )
    if workers == 1 and shard_size is None:
        return instance_equivalence_pass(*common)
    shards = partition_instances(ontology1.instances, workers, shard_size)
    store = EquivalenceStore(truncation_threshold)
    if not shards:
        return store
    if workers == 1:
        for shard in shards:
            store.update(score_instances(shard, *common))
        return store
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            # executor.map preserves shard order however workers finish.
            for entries in executor.map(
                lambda shard: score_instances(shard, *common), shards
            ):
                store.update(entries)
        return store
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for entries in executor.map(_score_shard, shards):
            store.update(entries)
    return store


# ----------------------------------------------------------------------
# scored subsets (warm-start fixpoint)
# ----------------------------------------------------------------------


def parallel_score_instances(
    instances: Sequence[Resource],
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> ShardEntries:
    """Score an explicit (pre-ordered) instance subset, possibly sharded.

    The warm-start fixpoint re-scores only its dirty frontier per pass;
    this routes that subset through the same shard executor as the full
    pass, so warm passes are parallel and deterministic too (entries
    come back concatenated in shard order, i.e. input order).
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    common = (
        ontology1,
        ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        truncation_threshold,
        use_negative_evidence,
    )
    if workers == 1:
        return score_instances(instances, *common)
    shards = partition_ordered(instances, workers, shard_size)
    entries: ShardEntries = []
    if not shards:
        return entries
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for shard_entries in executor.map(
                lambda shard: score_instances(shard, *common), shards
            ):
                entries.extend(shard_entries)
        return entries
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for shard_entries in executor.map(_score_shard, shards):
            entries.extend(shard_entries)
    return entries


# ----------------------------------------------------------------------
# the parallel relation pass
# ----------------------------------------------------------------------


def parallel_subrelation_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_pairs: int,
    reverse: bool = False,
    bootstrap_theta: float = 0.0,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> SubsumptionMatrix[Relation]:
    """Sharded, parallel drop-in for :func:`.subrelations.subrelation_pass`.

    The same determinism recipe as the instance pass: each relation's
    row is computed independently against the frozen view by the exact
    sequential code (:func:`.subrelations.score_relations`), shards cut
    the relation list *in its canonical order* (the ontology's relation
    registration order, which is what the sequential pass traverses),
    and rows merge in shard order — so any worker count/backend fills
    the matrix in the same insertion order as ``workers=1``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 and shard_size is None:
        return subrelation_pass(
            ontology1,
            ontology2,
            view,
            truncation_threshold,
            max_pairs,
            reverse=reverse,
            bootstrap_theta=bootstrap_theta,
        )
    relations = ontology1.relations(include_inverses=True)
    matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix()
    shards = partition_ordered(relations, workers, shard_size)
    if not shards:
        return matrix
    common = (ontology1, ontology2, view, max_pairs, reverse)
    if workers == 1:
        for shard in shards:
            apply_relation_scores(
                matrix,
                score_relations(shard, *common),
                truncation_threshold,
                bootstrap_theta,
            )
        return matrix
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for scored in executor.map(
                lambda shard: score_relations(shard, *common), shards
            ):
                apply_relation_scores(matrix, scored, truncation_threshold, bootstrap_theta)
        return matrix
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for scored in executor.map(_score_relation_shard, shards):
            apply_relation_scores(matrix, scored, truncation_threshold, bootstrap_theta)
    return matrix
