"""Sharded parallel engines for the PARIS passes (Section 5.1).

Two engines exploit the passes' iteration-level independence: the
per-pass executor functions (reference implementation; deterministic
contiguous shards on a thread/process executor) and the persistent
fork-once :class:`WorkerPool` (production; copy-on-write inheritance,
``(lo, hi)`` task ranges, compact score arrays — nothing re-pickles
an ontology).  Sequential and parallel runs fill the store in the
same insertion order, so results are bit-identical; the pool refuses
to run without ``fork``.  The full design rationale and the
bit-identity argument live in ``docs/architecture.md`` (section "The
core: one pass, three engines"); the guarantee is enforced by
``tests/test_parallel.py`` / ``tests/test_parallel_properties.py`` /
``tests/test_vectorized.py``.
"""

from __future__ import annotations

import math
import multiprocessing
import queue as queue_module
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..rdf.ontology import Ontology
from ..rdf.terms import Relation, Resource
from .equivalence import (
    instance_equivalence_pass,
    ordered_instances,
    score_instances,
)
from .functionality import FunctionalityOracle
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore
from .subclasses import closed_classes_of, score_classes, subclass_pass
from .subrelations import apply_relation_scores, score_relations, subrelation_pass
from .view import EquivalenceView

T = TypeVar("T")

#: Executor backends selectable via ``ParisConfig.parallel_backend``.
BACKENDS = ("thread", "process")

#: Default shards per worker.  Several small shards per worker smooth
#: out skew (a shard of hub instances with many statements costs more
#: than one of leaves) without drowning the pass in task overhead.
SHARDS_PER_WORKER = 4

#: One shard's scores: ``(x, x', Pr(x ≡ x'))`` tuples in scoring order.
ShardEntries = List[Tuple[Resource, Resource, float]]


def partition_ordered(
    items: Sequence[T],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[T]]:
    """Cut an already-ordered sequence into contiguous shards.

    The order-preserving core of :func:`partition_instances`, reused by
    the relation pass (whose canonical order is the ontology's relation
    registration order, not a sort) and by the warm-start fixpoint
    (whose dirty frontier is pre-sorted).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if not items:
        return []
    if shard_size is None:
        shard_size = math.ceil(len(items) / (workers * SHARDS_PER_WORKER))
    return [list(items[i : i + shard_size]) for i in range(0, len(items), shard_size)]


def partition_instances(
    instances: Iterable[Resource],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[Resource]]:
    """Cut ``instances`` into deterministic contiguous shards.

    Instances are put in the canonical sorted order first (the same
    :func:`ordered_instances` traversal the sequential pass uses), so
    the same input set always produces the same shards in the same
    order — the anchor of the engine's determinism guarantee.

    Parameters
    ----------
    instances:
        The instances of the first ontology (any iterable; typically a
        set).
    workers:
        Intended worker count; used to derive a default shard size of
        ``ceil(n / (workers * SHARDS_PER_WORKER))``.
    shard_size:
        Explicit shard size; overrides the derived default.
    """
    return partition_ordered(ordered_instances(instances), workers, shard_size)


# ----------------------------------------------------------------------
# worker plumbing
# ----------------------------------------------------------------------

#: Frozen per-pass state, installed once per process worker by the
#: executor initializer so shard tasks only ship the shard itself.
_WORKER_STATE: Optional[tuple] = None


def _init_worker(state: tuple) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _score_shard(shard: List[Resource]) -> ShardEntries:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return score_instances(shard, *_WORKER_STATE)


def _score_relation_shard(shard: List[Relation]):
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return score_relations(shard, *_WORKER_STATE)


def _process_context():
    """Prefer ``fork``: workers inherit the parent's hash seed, keeping
    set-iteration (and hence float-accumulation) order identical to the
    sequential pass."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the parallel pass
# ----------------------------------------------------------------------


def parallel_instance_equivalence_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> EquivalenceStore:
    """Sharded, parallel drop-in for :func:`instance_equivalence_pass`.

    Parameters beyond the sequential pass:

    workers:
        Worker count.  ``1`` with the default shard size falls back to
        the sequential pass (bit-identical by construction); ``1`` with
        an explicit ``shard_size`` runs the shard/merge pipeline
        in-process, which exercises merge determinism without an
        executor.
    shard_size:
        Instances per shard (default: spread over
        ``workers * SHARDS_PER_WORKER`` shards).
    backend:
        ``"process"`` (default) or ``"thread"``.  See the module
        docstring for the exactness/throughput trade-off.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    common = (
        ontology1,
        ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        truncation_threshold,
        use_negative_evidence,
    )
    if workers == 1 and shard_size is None:
        return instance_equivalence_pass(*common)
    shards = partition_instances(ontology1.instances, workers, shard_size)
    store = EquivalenceStore(truncation_threshold)
    if not shards:
        return store
    if workers == 1:
        for shard in shards:
            store.update(score_instances(shard, *common))
        return store
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            # executor.map preserves shard order however workers finish.
            for entries in executor.map(
                lambda shard: score_instances(shard, *common), shards
            ):
                store.update(entries)
        return store
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for entries in executor.map(_score_shard, shards):
            store.update(entries)
    return store


# ----------------------------------------------------------------------
# scored subsets (warm-start fixpoint)
# ----------------------------------------------------------------------


def parallel_score_instances(
    instances: Sequence[Resource],
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    fun1: FunctionalityOracle,
    fun2: FunctionalityOracle,
    rel12: SubsumptionMatrix[Relation],
    rel21: SubsumptionMatrix[Relation],
    truncation_threshold: float,
    use_negative_evidence: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> ShardEntries:
    """Score an explicit (pre-ordered) instance subset, possibly sharded.

    The warm-start fixpoint re-scores only its dirty frontier per pass;
    this routes that subset through the same shard executor as the full
    pass, so warm passes are parallel and deterministic too (entries
    come back concatenated in shard order, i.e. input order).
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    common = (
        ontology1,
        ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        truncation_threshold,
        use_negative_evidence,
    )
    if workers == 1:
        return score_instances(instances, *common)
    shards = partition_ordered(instances, workers, shard_size)
    entries: ShardEntries = []
    if not shards:
        return entries
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for shard_entries in executor.map(
                lambda shard: score_instances(shard, *common), shards
            ):
                entries.extend(shard_entries)
        return entries
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for shard_entries in executor.map(_score_shard, shards):
            entries.extend(shard_entries)
    return entries


# ----------------------------------------------------------------------
# the parallel relation pass
# ----------------------------------------------------------------------


def parallel_subrelation_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_pairs: int,
    reverse: bool = False,
    bootstrap_theta: float = 0.0,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "process",
) -> SubsumptionMatrix[Relation]:
    """Sharded, parallel drop-in for :func:`.subrelations.subrelation_pass`.

    The same determinism recipe as the instance pass: each relation's
    row is computed independently against the frozen view by the exact
    sequential code (:func:`.subrelations.score_relations`), shards cut
    the relation list *in its canonical order* (the ontology's relation
    registration order, which is what the sequential pass traverses),
    and rows merge in shard order — so any worker count/backend fills
    the matrix in the same insertion order as ``workers=1``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 and shard_size is None:
        return subrelation_pass(
            ontology1,
            ontology2,
            view,
            truncation_threshold,
            max_pairs,
            reverse=reverse,
            bootstrap_theta=bootstrap_theta,
        )
    relations = ontology1.relations(include_inverses=True)
    matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix()
    shards = partition_ordered(relations, workers, shard_size)
    if not shards:
        return matrix
    common = (ontology1, ontology2, view, max_pairs, reverse)
    if workers == 1:
        for shard in shards:
            apply_relation_scores(
                matrix,
                score_relations(shard, *common),
                truncation_threshold,
                bootstrap_theta,
            )
        return matrix
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for scored in executor.map(
                lambda shard: score_relations(shard, *common), shards
            ):
                apply_relation_scores(matrix, scored, truncation_threshold, bootstrap_theta)
        return matrix
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(common,),
    ) as executor:
        for scored in executor.map(_score_relation_shard, shards):
            apply_relation_scores(matrix, scored, truncation_threshold, bootstrap_theta)
    return matrix


# ----------------------------------------------------------------------
# the parallel class pass
# ----------------------------------------------------------------------


def parallel_subclass_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_instances: int,
    reverse: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: str = "thread",
) -> SubsumptionMatrix[Resource]:
    """Sharded drop-in for :func:`.subclasses.subclass_pass` (Eq. 17).

    Classes shard in the *set iteration order* the sequential pass
    traverses (``ontology1.classes`` — deliberately not sorted, so the
    matrix fills in the same insertion order and probability ties in
    downstream reports keep breaking identically), rows merge in shard
    order.  Only the ``thread`` backend is offered: the process analogue
    lives on the persistent :class:`WorkerPool`, where workers inherit
    the class closure inputs by fork instead of pickling them per pass.
    """
    if backend != "thread":
        raise ValueError(f"backend must be 'thread', got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 and shard_size is None:
        return subclass_pass(
            ontology1,
            ontology2,
            view,
            truncation_threshold,
            max_instances,
            reverse=reverse,
        )
    matrix: SubsumptionMatrix[Resource] = SubsumptionMatrix()
    shards = partition_ordered(list(ontology1.classes), workers, shard_size)
    if not shards:
        return matrix
    classes_of_right = closed_classes_of(ontology2)
    common = (ontology1, view, classes_of_right, max_instances, reverse)

    def apply(scored) -> None:
        for cls, scores in scored:
            for cls2, score in scores.items():
                if score >= truncation_threshold:
                    matrix.set(cls, cls2, score)

    if workers == 1:
        for shard in shards:
            apply(score_classes(shard, *common))
        return matrix
    with ThreadPoolExecutor(max_workers=workers) as executor:
        for scored in executor.map(lambda shard: score_classes(shard, *common), shards):
            apply(scored)
    return matrix


# ----------------------------------------------------------------------
# the persistent worker pool
# ----------------------------------------------------------------------

#: Read-only run state handed to forked pool workers: set immediately
#: before the fork, cleared right after, inherited via copy-on-write.
_POOL_FORK_STATE: Optional[tuple] = None

#: How long the parent waits between result polls before re-checking
#: that its workers are still alive (a crashed worker would otherwise
#: hang the pass forever).
_POOL_POLL_SECONDS = 2.0


def even_ranges(total: int, num_tasks: int) -> List[Tuple[int, int]]:
    """``num_tasks`` contiguous ``(lo, hi)`` ranges covering ``total``."""
    if total <= 0:
        return []
    num_tasks = max(1, min(num_tasks, total))
    step = math.ceil(total / num_tasks)
    return [(lo, min(lo + step, total)) for lo in range(0, total, step)]


def _run_pool_task(state: tuple, payload: dict, cache: dict, span: Tuple[int, int]):
    """Execute one ``(lo, hi)`` task against the fork-inherited state."""
    ontology1, ontology2, literals2, literals1, kernel = state
    lo, hi = span
    kind = payload["kind"]
    if kind == "instances":
        return kernel.score_ids(
            payload["ids"][lo:hi], payload["prepared"], payload["theta"]
        )
    # Relation/class tasks score with the legacy dict code against a
    # store rebuilt once per pass from the shipped id arrays (both row
    # orderings preserved — see EquivalenceStore.backward_items).
    view = cache.get("view")
    if view is None:
        store = kernel.rebuild_store(payload["store"], payload["threshold"])
        view = EquivalenceView(store, literals2, literals1)
        cache["view"] = view
    reverse = payload["reverse"]
    first, second = (ontology2, ontology1) if reverse else (ontology1, ontology2)
    if kind == "relations":
        relations = first.relations(include_inverses=True)
        return [
            (
                index,
                # score_relation is resolved lazily to keep the fork
                # image identical to the parent's import state.
                _score_one_relation(
                    relations[index], first, second, view, payload["max_pairs"], reverse
                ),
            )
            for index in range(lo, hi)
        ]
    if kind == "classes":
        classes = cache.get("classes")
        if classes is None:
            # The inherited set object iterates identically in parent
            # and child, so index ranges address the same classes.
            classes = list(first.classes)
            cache["classes"] = classes
        closure = cache.get("closure")
        if closure is None:
            closure = closed_classes_of(second)
            cache["closure"] = closure
        return score_classes(
            classes[lo:hi],
            first,
            view,
            closure,
            payload["max_instances"],
            reverse=reverse,
        )
    raise ValueError(f"unknown pool task kind {kind!r}")


def _score_one_relation(relation, first, second, view, max_pairs, reverse):
    from .subrelations import score_relation

    return score_relation(relation, first, second, view, max_pairs, reverse=reverse)


def _pool_worker_main(worker_index: int, task_queue, result_queue) -> None:
    """Worker loop: consume pass broadcasts and tasks until told to stop."""
    state = _POOL_FORK_STATE
    payload: Optional[dict] = None
    cache: dict = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "pass":
            payload = message[2]
            cache = {}
            continue
        _kind, task_id, span = message
        try:
            result = _run_pool_task(state, payload, cache, span)
        except BaseException:
            result_queue.put((worker_index, task_id, traceback.format_exc(), None))
        else:
            result_queue.put((worker_index, task_id, None, result))


class WorkerPool:
    """Fork-once worker pool for the whole fixpoint (zero re-pickling).

    Workers are forked at construction and inherit ``state`` — the
    ontologies, literal indexes and the vectorized kernel — through
    copy-on-write memory.  :meth:`run_pass` broadcasts one small
    per-pass payload, feeds ``(lo, hi)`` index-range tasks to whichever
    worker is free, and returns results **in task order** regardless of
    completion order, so pool scheduling can never perturb downstream
    float accumulation.

    The pool requires the ``fork`` start method: forked workers share
    the parent's hash seed and object identities, which is what makes
    their dict/set iteration orders — and hence their floats — exactly
    equal to an in-process run.
    """

    def __init__(self, workers: int, state: tuple, versions: Optional[tuple] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("WorkerPool requires the fork start method")
        context = multiprocessing.get_context("fork")
        self.workers = workers
        #: Ontology versions the forked state was built from; owners
        #: compare against their kernel's to detect a stale pool.
        self.versions = versions
        self._task_queues = [context.SimpleQueue() for _ in range(workers)]
        self._results = context.Queue()
        self._closed = False
        global _POOL_FORK_STATE
        _POOL_FORK_STATE = state
        try:
            self._processes = [
                context.Process(
                    target=_pool_worker_main,
                    args=(index, self._task_queues[index], self._results),
                    daemon=True,
                )
                for index in range(workers)
            ]
            for process in self._processes:
                process.start()
        finally:
            _POOL_FORK_STATE = None

    def run_pass(self, payload: dict, tasks: Sequence[Tuple[int, int]]) -> List:
        """Broadcast ``payload``, run ``tasks``, return results in task order."""
        from ..obs.trace import span

        with span(
            "pool.run_pass",
            kind=payload.get("kind"),
            tasks=len(tasks),
            workers=self.workers,
        ):
            return self._run_pass(payload, tasks)

    def _run_pass(self, payload: dict, tasks: Sequence[Tuple[int, int]]) -> List:
        if self._closed:
            raise RuntimeError("pool is closed")
        for task_queue in self._task_queues:
            task_queue.put(("pass", None, payload))
        results: List = [None] * len(tasks)
        pending = list(range(len(tasks) - 1, -1, -1))
        inflight = 0
        for worker_index in range(self.workers):
            if not pending:
                break
            task_id = pending.pop()
            self._task_queues[worker_index].put(("task", task_id, tasks[task_id]))
            inflight += 1
        while inflight:
            try:
                worker_index, task_id, error, result = self._results.get(
                    timeout=_POOL_POLL_SECONDS
                )
            except queue_module.Empty:
                dead = [p.pid for p in self._processes if not p.is_alive()]
                if dead:
                    self.close()
                    raise RuntimeError(f"pool worker(s) died: pids {dead}")
                continue
            inflight -= 1
            if error is not None:
                self.close()
                raise RuntimeError(f"pool worker task failed:\n{error}")
            results[task_id] = result
            if pending:
                task_id = pending.pop()
                self._task_queues[worker_index].put(("task", task_id, tasks[task_id]))
                inflight += 1
        return results

    def close(self) -> None:
        """Stop the workers; idempotent, safe after worker death."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._results.cancel_join_thread()
        self._results.close()
        for task_queue in self._task_queues:
            task_queue.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
