"""The PARIS fixpoint driver (Section 5.1).

One run alternates two steps until convergence:

1. **Instance pass** — recompute ``Pr(x ≡ x')`` for all instances from
   the previous iteration's equivalences (Eq. 13 / Eq. 14).  The very
   first pass is bootstrapped purely by clamped literal equivalences
   and the uniform relation prior ``θ``.
2. **Relation pass** — recompute ``Pr(r ⊆ r')`` in both directions from
   the fresh instance equivalences (Eq. 12).

Convergence is declared when fewer than ``convergence_threshold`` of
the instances change their maximal assignment (Section 6.1).  After the
fixpoint, class inclusions are computed once (Eq. 17, Section 4.3).

Both passes can run sharded across workers (``ParisConfig.workers`` /
``shard_size`` / ``parallel_backend``), mirroring the paper's "in
parallel on all available processors" (Section 5.1/6.2).  The parallel
engine (:mod:`repro.core.parallel`) guarantees scores equal to the
sequential passes: instances (and relations) are scored independently
against frozen previous-iteration views and merged in deterministic
shard order, and ``workers=1`` short-circuits to the bit-identical
sequential code paths.  The guarantee is enforced by
``tests/test_parallel.py`` and ``tests/test_parallel_properties.py``.

Incremental service mode
------------------------
Besides the cold batch run, the aligner offers a **warm-start
fixpoint** (:meth:`ParisAligner.warm_align`) for the long-running
alignment service (:mod:`repro.service`): after a delta batch touched
the ontologies, iteration 0 starts from the previous run's
:class:`EquivalenceStore` and relation matrices, and each pass
re-scores only the *dirty frontier* — instances whose inputs (own
statements, 1-hop neighbours' equivalents, relation rows,
functionalities, literal candidates) changed — while every other row
keeps its previous value.  The frontier expands along 1-hop
neighbourhoods of whatever each pass actually changed, so the warm run
converges to the same numeric fixpoint a cold ``score_stationarity``
run reaches, at a fraction of the work for small deltas.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs.trace import Span, root_span, span
from ..rdf.ontology import Ontology
from ..rdf.terms import Node, Relation, Resource
from .config import ParisConfig
from .equivalence import ordered_instances
from .functionality import FunctionalityOracle
from .incremental import (
    IncrementalRelationPass,
    RestrictedViewMaintainer,
    current_assignments,
)
from .literal_index import LiteralIndex
from .matrix import SubsumptionMatrix
from .parallel import (
    SHARDS_PER_WORKER,
    WorkerPool,
    even_ranges,
    parallel_instance_equivalence_pass,
    parallel_score_instances,
    parallel_subclass_pass,
    parallel_subrelation_pass,
)
from .result import AlignmentResult, IterationSnapshot
from .store import EquivalenceStore
from .subclasses import IncrementalClassPass, subclass_pass
from .subrelations import apply_relation_scores
from .vectorized import HAVE_NUMPY, VectorizedKernel
from .view import EquivalenceView

#: Warm passes without a new minimum per-pass change before the loop
#: declares a limit cycle (see :meth:`ParisAligner.warm_align`).  A
#: converging run improves its minimum (near-)every pass, so the window
#: only triggers on genuinely stuck dynamics.
WARM_STALL_WINDOW = 10

#: A stale vectorized kernel is rebuilt for a warm pass only when the
#: dirty frontier is at least this large: the rebuild is O(corpus),
#: while a small frontier is cheaper to score on the dict path (which
#: is bit-identical, so mixing engines across passes is safe).
KERNEL_REBUILD_MIN_FRONTIER = 512

#: Minimum warm-pass frontier for which fork-starting (or reusing) the
#: worker pool beats scoring the frontier in-process with the kernel.
POOL_MIN_FRONTIER = 1024


class ParisAligner:
    """Aligns two ontologies with the PARIS probabilistic fixpoint.

    Parameters
    ----------
    ontology1, ontology2:
        The two input ontologies.  Following the paper's assumption
        (Section 3), neither may contain internal duplicates; entities
        are only ever matched *across* the two.
    config:
        Algorithm settings; defaults reproduce the paper's setup
        (θ = 0.1, strict literal identity, positive evidence only,
        maximal-assignment restriction, 10 000-pair cap).

    Examples
    --------
    >>> from repro import ParisAligner, ParisConfig
    >>> result = ParisAligner(onto1, onto2).align()   # doctest: +SKIP
    >>> result.instance_pairs(threshold=0.5)          # doctest: +SKIP
    """

    def __init__(
        self,
        ontology1: Ontology,
        ontology2: Ontology,
        config: Optional[ParisConfig] = None,
    ) -> None:
        if ontology1.name == ontology2.name:
            raise ValueError("the two ontologies must have distinct names")
        self.ontology1 = ontology1
        self.ontology2 = ontology2
        self.config = config or ParisConfig()
        # Functionalities are computed upfront (Section 5.1): the
        # no-internal-duplicates assumption means they never change.
        self.fun1 = FunctionalityOracle(ontology1, self.config.functionality)
        self.fun2 = FunctionalityOracle(ontology2, self.config.functionality)
        # Literal equivalences are clamped (Section 5.3): index once.
        similarity = self.config.literal_similarity
        self.literals2 = LiteralIndex(ontology2, similarity)
        self.literals1 = LiteralIndex(ontology1, similarity)
        #: Vectorized scoring kernel, built lazily and rebuilt when the
        #: ontology versions move (see _kernel_for / _warm_kernel).
        self._kernel: Optional[VectorizedKernel] = None
        #: Persistent fork-once worker pool; alive for at most one
        #: align()/warm_align() run (closed in their finally blocks).
        self._pool: Optional[WorkerPool] = None
        #: Root span of the most recent align()/warm_align() run — the
        #: live staged profile `/stats` serves as ``last_align_profile``.
        self._last_align_span: Optional[Span] = None

    @property
    def last_profile(self) -> Optional[dict]:
        """JSON-ready span tree of the most recent cold/warm align."""
        node = self._last_align_span
        return node.to_dict() if node is not None else None

    # ------------------------------------------------------------------
    # engine selection (vectorized kernel + persistent pool)
    # ------------------------------------------------------------------

    def _kernel_allowed(self) -> bool:
        config = self.config
        if config.scoring == "dict" or not HAVE_NUMPY:
            return False
        # Eq. 14 reads arbitrary statements per surviving candidate;
        # the kernel only covers the positive-evidence traversal.
        return not config.use_negative_evidence

    def _kernel_for(self) -> Optional[VectorizedKernel]:
        """The current kernel, (re)built if the ontologies moved."""
        if not self._kernel_allowed():
            return None
        kernel = self._kernel
        if kernel is None or not kernel.fresh():
            with span(
                "kernel.build",
                nodes1=len(self.ontology1.instances),
                rebuild=kernel is not None,
            ):
                kernel = VectorizedKernel(
                    self.ontology1, self.ontology2, self.fun1, self.fun2, self.literals2
                )
            self._kernel = kernel
        return kernel

    def _warm_kernel(self, frontier_size: int) -> Optional[VectorizedKernel]:
        """Kernel for a warm pass: never rebuilt for a small frontier
        (the O(corpus) rebuild would dwarf the frontier's scoring
        cost); the dict path is bit-identical, so ``None`` is safe."""
        if not self._kernel_allowed():
            return None
        kernel = self._kernel
        if kernel is not None and kernel.fresh():
            return kernel
        if frontier_size < KERNEL_REBUILD_MIN_FRONTIER:
            return None
        return self._kernel_for()

    def _ensure_pool(self, kernel: VectorizedKernel) -> Optional[WorkerPool]:
        """The persistent pool for this run, forked against ``kernel``.

        Returns ``None`` when the configuration does not call for
        process parallelism (or ``fork`` is unavailable); an existing
        pool is reused only while its fork image matches the kernel's
        ontology versions — anything staler is closed and re-forked.
        """
        config = self.config
        if config.workers < 2 or config.parallel_backend != "process":
            return None
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        pool = self._pool
        if pool is not None and pool.versions == kernel.versions:
            return pool
        self._close_pool()
        pool = WorkerPool(
            config.workers,
            (self.ontology1, self.ontology2, self.literals2, self.literals1, kernel),
            versions=kernel.versions,
        )
        self._pool = pool
        return pool

    def _close_pool(self) -> None:
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.close()

    def close(self) -> None:
        """Release the worker pool (safe to call at any time)."""
        self._close_pool()

    # ------------------------------------------------------------------

    def _view_store(self, store: EquivalenceStore) -> EquivalenceStore:
        """The store the passes actually read (Section 5.2 restriction)."""
        if self.config.restrict_to_maximal_assignment:
            return store.restricted_to_maximal()
        return store

    def make_view(self, view_store: EquivalenceStore) -> EquivalenceView:
        """Wrap an (already restricted) store with the literal indexes."""
        return EquivalenceView(view_store, self.literals2, self.literals1)

    def _view(self, store: EquivalenceStore) -> EquivalenceView:
        return self.make_view(self._view_store(store))

    def _instance_pass(
        self,
        view: EquivalenceView,
        rel12: SubsumptionMatrix[Relation],
        rel21: SubsumptionMatrix[Relation],
    ) -> EquivalenceStore:
        """One instance pass, routed to the fastest bit-exact engine.

        With the vectorized kernel available the scores come from
        :meth:`VectorizedKernel.score_ids` — in-process, or sharded
        over the persistent pool for ``workers > 1`` with the process
        backend.  Both fill the store in the sequential emission order,
        so every route is bit-identical to the dict reference pass
        (which remains the fallback).
        """
        config = self.config
        kernel = self._kernel_for()
        if kernel is None:
            return parallel_instance_equivalence_pass(
                self.ontology1,
                self.ontology2,
                view,
                self.fun1,
                self.fun2,
                rel12,
                rel21,
                truncation_threshold=config.theta,
                use_negative_evidence=config.use_negative_evidence,
                workers=config.workers,
                shard_size=config.shard_size,
                backend=config.parallel_backend,
            )
        with span("kernel.prepare"):
            prepared = kernel.prepare_pass(view.store, rel12, rel21)
        store = EquivalenceStore(config.theta)
        pool = self._ensure_pool(kernel)
        if pool is not None:
            payload = {
                "kind": "instances",
                "prepared": prepared,
                "theta": config.theta,
                "ids": kernel.ordered_ids,
            }
            tasks = kernel.task_ranges(
                kernel.ordered_ids, prepared, config.workers * SHARDS_PER_WORKER
            )
            # Merging interleaves with result arrival, so the merge cost
            # rides the score span as an annotation instead of a child.
            with span("kernel.score", engine="pool", tasks=len(tasks)) as sp:
                merge_seconds = 0.0
                for result in pool.run_pass(payload, tasks):
                    merge_started = time.perf_counter()
                    store.update(kernel.entries_for(*result))
                    merge_seconds += time.perf_counter() - merge_started
                sp.annotate(merge_s=round(merge_seconds, 6))
            return store
        with span("kernel.score", engine="inprocess"):
            scored = kernel.score_ids(kernel.ordered_ids, prepared, config.theta)
        with span("kernel.merge"):
            store.update(kernel.entries_for(*scored))
        return store

    def _relation_pass(
        self, view: EquivalenceView, reverse: bool = False
    ) -> SubsumptionMatrix[Relation]:
        """One direction of the relation pass, sharded like the
        instance pass when ``config.workers > 1`` — over the persistent
        pool when it is live (workers rebuild the view from shipped id
        arrays instead of re-pickling the ontologies)."""
        config = self.config
        first, second = (
            (self.ontology2, self.ontology1) if reverse else (self.ontology1, self.ontology2)
        )
        kernel = self._kernel
        if kernel is not None and kernel.fresh():
            pool = self._ensure_pool(kernel)
            if pool is not None:
                lowered = kernel.lower_store(view.store)
                if lowered is not None:
                    relations = first.relations(include_inverses=True)
                    matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix()
                    payload = {
                        "kind": "relations",
                        "store": lowered,
                        "threshold": view.store.truncation_threshold,
                        "reverse": reverse,
                        "max_pairs": config.max_pairs_per_relation,
                    }
                    tasks = even_ranges(
                        len(relations), config.workers * SHARDS_PER_WORKER
                    )
                    for scored in pool.run_pass(payload, tasks):
                        apply_relation_scores(
                            matrix,
                            [(relations[index], row) for index, row in scored],
                            config.theta,
                            config.theta,
                        )
                    return matrix
        return parallel_subrelation_pass(
            first,
            second,
            view,
            truncation_threshold=config.theta,
            max_pairs=config.max_pairs_per_relation,
            reverse=reverse,
            bootstrap_theta=config.theta,
            workers=config.workers,
            backend=config.parallel_backend,
        )

    def _class_pass(
        self, view: EquivalenceView, reverse: bool = False
    ) -> SubsumptionMatrix[Resource]:
        """One direction of the Eq. 17 class pass, parallelized like
        the other passes (pool for the process backend, sharded threads
        otherwise).  Classes traverse in set order on every route, so
        the matrix insertion order matches the sequential pass."""
        config = self.config
        theta = config.theta
        first, second = (
            (self.ontology2, self.ontology1) if reverse else (self.ontology1, self.ontology2)
        )
        kernel = self._kernel
        if kernel is not None and kernel.fresh() and config.workers > 1:
            pool = self._ensure_pool(kernel)
            if pool is not None:
                lowered = kernel.lower_store(view.store)
                if lowered is not None:
                    classes = list(first.classes)
                    matrix: SubsumptionMatrix[Resource] = SubsumptionMatrix()
                    payload = {
                        "kind": "classes",
                        "store": lowered,
                        "threshold": view.store.truncation_threshold,
                        "reverse": reverse,
                        "max_instances": config.max_pairs_per_relation,
                    }
                    tasks = even_ranges(len(classes), config.workers * SHARDS_PER_WORKER)
                    for scored in pool.run_pass(payload, tasks):
                        for cls, scores in scored:
                            for cls2, score in scores.items():
                                if score >= theta:
                                    matrix.set(cls, cls2, score)
                    return matrix
        if config.workers > 1 and config.parallel_backend == "thread":
            return parallel_subclass_pass(
                first,
                second,
                view,
                truncation_threshold=theta,
                max_instances=config.max_pairs_per_relation,
                reverse=reverse,
                workers=config.workers,
                shard_size=config.shard_size,
            )
        return subclass_pass(
            first,
            second,
            view,
            truncation_threshold=theta,
            max_instances=config.max_pairs_per_relation,
            reverse=reverse,
        )

    def _score_frontier(
        self,
        ordered_dirty: List[Resource],
        view: EquivalenceView,
        rel12: SubsumptionMatrix[Relation],
        rel21: SubsumptionMatrix[Relation],
    ) -> List[Tuple[Resource, Resource, float]]:
        """Score a warm pass's dirty frontier (entries in input order).

        Routes to the kernel when it is fresh (or worth rebuilding),
        through the pool only for frontiers big enough to amortize the
        fork; the dict path covers everything else bit-identically.
        """
        config = self.config
        kernel = self._warm_kernel(len(ordered_dirty))
        if kernel is None:
            return parallel_score_instances(
                ordered_dirty,
                self.ontology1,
                self.ontology2,
                view,
                self.fun1,
                self.fun2,
                rel12,
                rel21,
                config.theta,
                config.use_negative_evidence,
                workers=config.workers,
                shard_size=config.shard_size,
                backend=config.parallel_backend,
            )
        with span("kernel.prepare"):
            prepared = kernel.prepare_pass(view.store, rel12, rel21)
        ids = kernel.ids_for(ordered_dirty)
        if len(ordered_dirty) >= POOL_MIN_FRONTIER:
            pool = self._ensure_pool(kernel)
            if pool is not None:
                payload = {
                    "kind": "instances",
                    "prepared": prepared,
                    "theta": config.theta,
                    "ids": ids,
                }
                tasks = kernel.task_ranges(
                    ids, prepared, config.workers * SHARDS_PER_WORKER
                )
                entries: List[Tuple[Resource, Resource, float]] = []
                with span("kernel.score", engine="pool", tasks=len(tasks)) as sp:
                    merge_seconds = 0.0
                    for result in pool.run_pass(payload, tasks):
                        merge_started = time.perf_counter()
                        entries.extend(kernel.entries_for(*result))
                        merge_seconds += time.perf_counter() - merge_started
                    sp.annotate(merge_s=round(merge_seconds, 6))
                return entries
        with span("kernel.score", engine="inprocess"):
            scored = kernel.score_ids(ids, prepared, config.theta)
        with span("kernel.merge"):
            return kernel.entries_for(*scored)

    def _dampen(
        self, old_store: EquivalenceStore, new_store: EquivalenceStore
    ) -> EquivalenceStore:
        """Blend successive estimates (Section 5.1's dampening remedy)."""
        factor = self.config.dampening
        if factor <= 0.0:
            return new_store
        blended = EquivalenceStore(new_store.truncation_threshold)
        pairs = {(left, right) for left, right, _p in new_store.items()}
        pairs |= {(left, right) for left, right, _p in old_store.items()}
        for left, right in pairs:
            probability = (
                factor * old_store.get(left, right)
                + (1.0 - factor) * new_store.get(left, right)
            )
            if probability >= blended.truncation_threshold:
                blended.set(left, right, probability)
        return blended

    @staticmethod
    def _same_targets(
        first: "dict", second: "dict"
    ) -> bool:
        """Whether two maximal assignments pick the same counterparts."""
        if first.keys() != second.keys():
            return False
        return all(first[key][0] == second[key][0] for key in first)

    def align(self) -> AlignmentResult:
        """Run the fixpoint and return the full alignment."""
        config = self.config
        theta = config.theta
        # Bootstrap: Pr(r ⊆ r') = θ for all cross-ontology relation
        # pairs in the very first step (Section 5.1) — or the
        # name-informed prior if the Section 7 extension is enabled.
        if config.use_name_prior:
            from .priors import name_prior_matrix

            rel12: SubsumptionMatrix[Relation] = name_prior_matrix(
                self.ontology1, self.ontology2, theta, config.name_prior_max
            )
            rel21: SubsumptionMatrix[Relation] = name_prior_matrix(
                self.ontology2, self.ontology1, theta, config.name_prior_max
            )
        else:
            rel12 = SubsumptionMatrix.bootstrap(theta)
            rel21 = SubsumptionMatrix.bootstrap(theta)
        store = EquivalenceStore(theta)
        previous_store = store
        previous_assignment = store.maximal_assignment()
        assignment_history: list = []
        snapshots: List[IterationSnapshot] = []
        # Running full assignments behind the snapshot delta chain
        # (IterationSnapshot.capture diffs against these).
        snap_prev12: Dict[Resource, Tuple[Resource, float]] = {}
        snap_prev21: Dict[Resource, Tuple[Resource, float]] = {}
        converged = False
        with root_span(
            "align.cold", instances=len(self.ontology1.instances)
        ) as profile:
            self._last_align_span = profile
            try:
                return self._align_loop(
                    config,
                    theta,
                    rel12,
                    rel21,
                    store,
                    previous_store,
                    previous_assignment,
                    assignment_history,
                    snapshots,
                    snap_prev12,
                    snap_prev21,
                    converged,
                )
            finally:
                # The pool's fork image is only valid for this run's
                # ontology state; workers release with the run.
                self._close_pool()

    def _align_loop(
        self,
        config: ParisConfig,
        theta: float,
        rel12: SubsumptionMatrix[Relation],
        rel21: SubsumptionMatrix[Relation],
        store: EquivalenceStore,
        previous_store: EquivalenceStore,
        previous_assignment,
        assignment_history: list,
        snapshots: List[IterationSnapshot],
        snap_prev12: Dict[Resource, Tuple[Resource, float]],
        snap_prev21: Dict[Resource, Tuple[Resource, float]],
        converged: bool,
    ) -> AlignmentResult:
        for iteration in range(1, config.max_iterations + 1):
            started = time.perf_counter()
            with span(
                "pass.instance",
                iteration=iteration,
                frontier=len(self.ontology1.instances),
            ):
                view = self._view(store)
                new_store = self._instance_pass(view, rel12, rel21)
                store = self._dampen(store, new_store)
            assignment12 = store.maximal_assignment()
            assignment21 = store.maximal_assignment(reverse=True)
            change = (
                EquivalenceStore.assignment_change(previous_assignment, assignment12)
                if iteration > 1
                else None
            )
            stationary = (
                config.score_stationarity
                and iteration > 1
                and store.max_difference(previous_store) <= config.warm_tolerance
            )
            previous_store = store
            previous_assignment = assignment12
            cycle = (
                config.detect_cycles
                and not config.score_stationarity
                and len(assignment_history) >= 2
                and self._same_targets(assignment12, assignment_history[-2])
            )
            assignment_history.append(assignment12)
            if len(assignment_history) > 3:
                assignment_history.pop(0)
            # Relation pass uses the fresh equivalences ("These two
            # steps are iterated until convergence", Section 5.1).  The
            # second round uses the computed values and no longer θ.
            with span("pass.relation", iteration=iteration):
                relation_view = self._view(store)
                rel12 = self._relation_pass(relation_view)
                rel21 = self._relation_pass(relation_view, reverse=True)
            duration = time.perf_counter() - started
            if config.keep_snapshots:
                snapshots.append(
                    IterationSnapshot.capture(
                        index=iteration,
                        duration_seconds=duration,
                        change_fraction=change,
                        num_equivalences=len(store),
                        assignment12=assignment12,
                        assignment21=assignment21,
                        relations12=rel12,
                        relations21=rel21,
                        previous=snapshots[-1] if snapshots else None,
                        previous12=snap_prev12,
                        previous21=snap_prev21,
                    )
                )
                snap_prev12, snap_prev21 = assignment12, assignment21
            if config.score_stationarity:
                # Numeric stationarity replaces both the assignment
                # criterion and cycle detection (warm-start reference
                # mode; see the config docstring).
                if stationary:
                    converged = True
                    break
                continue
            if change is not None and change < config.convergence_threshold:
                converged = True
                break
            if cycle:
                # Period-2 oscillation between equally plausible
                # matches: the fixpoint will not settle further.
                converged = True
                break
        # Classes are aligned once, from the final assignment
        # (Section 4.3 / 5.1: "In a last step, the equivalences between
        # classes are computed by Equation (17)").
        with span("pass.class"):
            class_view = self._view(store)
            classes12 = self._class_pass(class_view)
            classes21 = self._class_pass(class_view, reverse=True)
        return AlignmentResult(
            left_name=self.ontology1.name,
            right_name=self.ontology2.name,
            instances=store,
            assignment12=store.maximal_assignment(),
            assignment21=store.maximal_assignment(reverse=True),
            relations12=rel12,
            relations21=rel21,
            classes12=classes12,
            classes21=classes21,
            converged=converged,
            iterations=snapshots,
        )

    # ------------------------------------------------------------------
    # warm-start fixpoint (incremental service mode)
    # ------------------------------------------------------------------

    def _instance_subjects(self, relation: Relation) -> Iterable[Resource]:
        """Instances with a ``relation``-statement (literal subjects of
        inverse relations are skipped — only instances get re-scored)."""
        return (
            subject
            for subject in self.ontology1.subjects(relation)
            if isinstance(subject, Resource)
        )

    def warm_align(
        self,
        store: EquivalenceStore,
        rel12_cache: IncrementalRelationPass,
        rel21_cache: IncrementalRelationPass,
        dirty_instances: Iterable[Resource] = (),
        seed_nodes1: Iterable[Node] = (),
        seed_nodes2: Iterable[Node] = (),
        delta_statements1: Iterable[Tuple[Relation, Node, Node]] = (),
        delta_statements2: Iterable[Tuple[Relation, Node, Node]] = (),
        view_maintainer: Optional[RestrictedViewMaintainer] = None,
        class12_cache: Optional[IncrementalClassPass] = None,
        class21_cache: Optional[IncrementalClassPass] = None,
        mutate_store: bool = False,
    ) -> AlignmentResult:
        """Resume the fixpoint from a previous run's state after a delta.

        Thin lifecycle wrapper: the actual fixpoint lives in
        :meth:`_warm_align_impl` (see its docstring for the full
        parameter and convergence semantics); this layer only
        guarantees that a worker pool forked for a large-frontier pass
        never outlives the run whose ontology state it inherited.
        """
        with root_span("align.warm") as profile:
            self._last_align_span = profile
            try:
                return self._warm_align_impl(
                    store,
                    rel12_cache,
                    rel21_cache,
                    dirty_instances,
                    seed_nodes1,
                    seed_nodes2,
                    delta_statements1,
                    delta_statements2,
                    view_maintainer,
                    class12_cache,
                    class21_cache,
                    mutate_store,
                )
            finally:
                self._close_pool()

    def _warm_align_impl(
        self,
        store: EquivalenceStore,
        rel12_cache: IncrementalRelationPass,
        rel21_cache: IncrementalRelationPass,
        dirty_instances: Iterable[Resource] = (),
        seed_nodes1: Iterable[Node] = (),
        seed_nodes2: Iterable[Node] = (),
        delta_statements1: Iterable[Tuple[Relation, Node, Node]] = (),
        delta_statements2: Iterable[Tuple[Relation, Node, Node]] = (),
        view_maintainer: Optional[RestrictedViewMaintainer] = None,
        class12_cache: Optional[IncrementalClassPass] = None,
        class21_cache: Optional[IncrementalClassPass] = None,
        mutate_store: bool = False,
    ) -> AlignmentResult:
        """Resume the fixpoint from a previous run's state after a delta.

        Parameters
        ----------
        store:
            The previous run's instance equivalences (iteration-0
            state).  Copied up front unless ``mutate_store`` is set; the
            result's ``instances`` is the working store either way.
        rel12_cache, rel21_cache:
            Incremental relation matrices built over the previous state
            (see :class:`repro.core.incremental.IncrementalRelationPass`);
            refreshed in place as the warm passes proceed.
        dirty_instances:
            Left instances whose scores must be recomputed — delta
            statement endpoints, 1-hop neighbours of changed literals,
            left equivalents of touched right nodes (the service's
            delta layer computes this frontier).  May include former
            instances that lost all statements; their rows are cleared.
        seed_nodes1, seed_nodes2:
            Left/right nodes whose *equivalents-view* changed at delta
            time without their own scores moving — literals with
            shifted candidate sets, and equivalents of touched
            opposite-side resources.  They seed the relation-cache
            refresh of the first pass.
        delta_statements1, delta_statements2:
            Applied data-statement changes ``(relation, subject,
            object)`` per ontology, for targeted relation-row updates.
        view_maintainer:
            A resident :class:`RestrictedViewMaintainer` over ``store``
            (requires ``mutate_store=True``): the restricted view is
            then *updated* from the touched rows instead of rebuilt
            from all pairs each pass.  ``None`` builds a fresh one.
        class12_cache, class21_cache:
            Resident :class:`~repro.core.subclasses.IncrementalClassPass`
            caches; when given, only class rows whose member rows moved
            are recomputed after the fixpoint.  ``None`` falls back to
            a full :func:`subclass_pass` per direction.
        mutate_store:
            Fold each pass's touched rows back into ``store`` itself
            (O(frontier) per pass, no O(store) copy).  The resident
            service sets this; one-shot callers keep the default, which
            copies once up front.

        Each pass re-scores the dirty frontier against the current
        view and replaces exactly those rows **through a copy-on-write
        overlay** (:class:`~repro.core.store.OverlayStore`): the store
        copy, the restricted-view rebuild and the store diff of earlier
        revisions are all replaced by O(frontier) work on the touched
        rows.  The relation matrices refresh incrementally, then the
        frontier expands to the 1-hop neighbourhood of whatever changed
        beyond ``config.warm_tolerance``.  Convergence is numeric
        stationarity, i.e. the same criterion as a cold
        ``score_stationarity`` run — which is the reference this method
        is equality-tested against (``tests/test_warm_start.py``).
        Falls back to full passes when the frontier exceeds
        ``config.warm_full_pass_fraction`` of the instances, when
        negative evidence is enabled (its penalty term reads arbitrary
        statements, defeating frontier tracking), or when a relation
        row's *default* flipped (which re-prices every unmatched
        relation pair at once).

        On noisy inputs whose fixpoint oscillates (the case the batch
        path's cycle detection handles), stationarity never arrives;
        with ``config.detect_cycles`` the warm loop stops early on two
        signals, both at the *score* level (scores can oscillate under
        a perfectly stable maximal assignment, so the batch path's
        assignment check is not enough):

        * a period-2 cycle — the view store returns to where it stood
          two passes earlier (within ``warm_tolerance``), checked over
          the last two passes' change logs instead of a full diff;
        * a stall — the per-pass maximum change fails to set a new
          minimum for :data:`WARM_STALL_WINDOW` consecutive passes,
          which catches longer-period and intermittent limit cycles.

        A genuinely converging run trips neither: its changes shrink
        (near-)geometrically until the stationarity criterion fires.
        """
        config = self.config
        theta = config.theta
        tolerance = config.warm_tolerance
        force_full = config.use_negative_evidence
        dirty: Set[Resource] = set(dirty_instances)
        changed_left: Set[Node] = set(seed_nodes1)
        changed_right: Set[Node] = set(seed_nodes2)
        pending12: Iterable[Tuple[Relation, Node, Node]] = list(delta_statements1)
        pending21: Iterable[Tuple[Relation, Node, Node]] = list(delta_statements2)
        working = store if mutate_store else store.copy()
        maintainer: Optional[RestrictedViewMaintainer] = None
        if config.restrict_to_maximal_assignment:
            maintainer = view_maintainer or RestrictedViewMaintainer(working)
            if maintainer.store is not working:
                raise ValueError(
                    "view_maintainer must maintain the store being warmed "
                    "(pass mutate_store=True for a resident maintainer)"
                )
            view_store = maintainer.view_store
        else:
            view_store = working
        snapshots: List[IterationSnapshot] = []
        # Snapshot chain base: the pre-delta assignments.  Each pass's
        # snapshot then stores only its assignment delta, so a resident
        # service with keep_snapshots on pays O(frontier) per pass, not
        # O(matched) copies.
        snap_prev12: Dict[Resource, Tuple[Resource, float]] = {}
        snap_prev21: Dict[Resource, Tuple[Resource, float]] = {}
        if config.keep_snapshots:
            snap_prev12, snap_prev21 = current_assignments(maintainer, working)
        previous_log: Optional[Dict[Tuple[Resource, Resource], Tuple[float, float]]] = None
        # Members whose view rows moved at all (any non-zero change):
        # the exact invalidation set of the class-row caches.
        changed_members1: Set[Resource] = set()
        changed_members2: Set[Resource] = set()
        pairs_touched = 0
        best_change = float("inf")
        stalled_passes = 0
        converged = False
        for iteration in range(1, config.warm_max_iterations + 1):
            started = time.perf_counter()
            with span("pass.warm", iteration=iteration) as pass_span:
                view = self.make_view(view_store)
                changes12 = rel12_cache.refresh(view, changed_left, pending12)
                changes21 = rel21_cache.refresh(view, changed_right, pending21)
                pending12 = pending21 = ()
                full_pass = force_full
                for relation, row_change in changes12.items():
                    # A left relation's row prices statements of exactly its
                    # subjects (Eq. 13 reads rel12[r, ·] and rel21[·, r]
                    # only for relations r of the instance being scored).
                    if row_change.max_delta > tolerance:
                        dirty.update(self._instance_subjects(relation))
                for _relation2, row_change in changes21.items():
                    if row_change.max_delta <= tolerance:
                        continue
                    if row_change.default_changed:
                        full_pass = True
                        continue
                    for relation in row_change.changed_supers:
                        dirty.update(self._instance_subjects(relation))
                instances = self.ontology1.instances
                if full_pass or len(dirty) >= config.warm_full_pass_fraction * len(
                    instances
                ):
                    dirty |= instances
                ordered_dirty = ordered_instances(dirty)
                # The frontier is only known after expansion — annotate
                # late so the span line still carries it.
                pass_span.annotate(frontier=len(ordered_dirty))
                entries = self._score_frontier(
                    ordered_dirty, view, rel12_cache.matrix, rel21_cache.matrix
                )
                overlay = working.overlay()
                for x in ordered_dirty:
                    overlay.clear_left(x)
                if config.dampening > 0.0:
                    self._blend_rows(working, overlay, ordered_dirty, entries)
                else:
                    overlay.update(entries)
                # View maintenance replaces the old full restricted-view
                # rebuild + full store diff: only the touched rows (and the
                # rights they mention) are reconsidered.
                if maintainer is not None:
                    view_changes = maintainer.apply(overlay)
                else:
                    view_changes = {
                        (left, right): (old, new)
                        for left, right, old, new in overlay.row_changes()
                    }
                pairs_touched += overlay.pairs_touched + len(view_changes)
                max_change = 0.0
                changed_left = set()
                changed_right = set()
                for (left, right), (old_p, new_p) in view_changes.items():
                    delta = abs(new_p - old_p)
                    max_change = max(max_change, delta)
                    changed_members1.add(left)
                    changed_members2.add(right)
                    if delta > tolerance:
                        changed_left.add(left)
                        changed_right.add(right)
                # Next frontier: 1-hop neighbourhood of every node whose
                # view row moved — their Eq. 13 inputs are now stale.
                dirty = set()
                for node in changed_left:
                    for _relation, other in self.ontology1.statements_about(node):
                        if isinstance(other, Resource):
                            dirty.add(other)
                working = overlay.commit()
                pass_span.annotate(max_change=round(max_change, 9))
            duration = time.perf_counter() - started
            if max_change < best_change:
                best_change = max_change
                stalled_passes = 0
            else:
                stalled_passes += 1
            cycle = config.detect_cycles and (
                stalled_passes >= WARM_STALL_WINDOW
                or (
                    previous_log is not None
                    and self._view_cycled(
                        previous_log, view_changes, view_store, tolerance
                    )
                )
            )
            previous_log = view_changes
            if config.keep_snapshots:
                assignment12, assignment21 = current_assignments(maintainer, working)
                snapshots.append(
                    IterationSnapshot.capture(
                        index=iteration,
                        duration_seconds=duration,
                        change_fraction=None,
                        num_equivalences=len(working),
                        assignment12=assignment12,
                        assignment21=assignment21,
                        # Copies: the cache matrices keep mutating in
                        # place on later passes (and later deltas).
                        relations12=rel12_cache.matrix.copy(),
                        relations21=rel21_cache.matrix.copy(),
                        previous=snapshots[-1] if snapshots else None,
                        previous12=snap_prev12,
                        previous21=snap_prev21,
                    )
                )
                snap_prev12, snap_prev21 = assignment12, assignment21
            if max_change <= tolerance:
                converged = True
                break
            if cycle:
                # Oscillation between equally plausible states:
                # stationarity will never arrive (the same situation
                # the batch path's cycle detection stops).
                converged = True
                break
        final_view = self.make_view(view_store)
        if changed_left or changed_right:
            # Non-stationary exit (cycle break or iteration cap): the
            # last pass's view changes were never folded into the
            # relation caches.  Refresh now so the returned matrices —
            # and the caches a resident service reuses for the *next*
            # delta — reflect the final store, exactly as the batch
            # path recomputes its matrices after the last instance
            # pass.  (On a stationary exit both sets are empty.)
            rel12_cache.refresh(final_view, changed_left)
            rel21_cache.refresh(final_view, changed_right)
        with span("pass.class", incremental=class12_cache is not None):
            if class12_cache is not None:
                class12_cache.invalidate_members(changed_members1)
                classes12 = class12_cache.matrix(final_view)
            else:
                classes12 = self._class_pass(final_view)
            if class21_cache is not None:
                class21_cache.invalidate_members(changed_members2)
                classes21 = class21_cache.matrix(final_view)
            else:
                classes21 = self._class_pass(final_view, reverse=True)
        final_assignment12, final_assignment21 = current_assignments(maintainer, working)
        return AlignmentResult(
            left_name=self.ontology1.name,
            right_name=self.ontology2.name,
            instances=working,
            assignment12=final_assignment12,
            assignment21=final_assignment21,
            relations12=rel12_cache.matrix,
            relations21=rel21_cache.matrix,
            classes12=classes12,
            classes21=classes21,
            converged=converged,
            iterations=snapshots,
            pairs_touched=pairs_touched,
        )

    @staticmethod
    def _view_cycled(
        previous_log: Dict[Tuple[Resource, Resource], Tuple[float, float]],
        current_log: Dict[Tuple[Resource, Resource], Tuple[float, float]],
        view_store: EquivalenceStore,
        tolerance: float,
    ) -> bool:
        """Period-2 check from change logs: is the (already updated)
        view within ``tolerance`` of where it stood two passes ago?
        Entries outside both logs did not move in either pass, so the
        union of logged keys carries the whole difference."""
        for key in previous_log.keys() | current_log.keys():
            if key in previous_log:
                two_ago = previous_log[key][0]
            else:
                two_ago = current_log[key][0]
            left, right = key
            if abs(view_store.get(left, right) - two_ago) > tolerance:
                return False
        return True

    def _blend_rows(
        self,
        old_store: EquivalenceStore,
        new_store,
        dirty: List[Resource],
        entries: List[Tuple[Resource, Resource, float]],
    ) -> None:
        """Dampening for re-scored rows only.

        An untouched row blends to itself (``f·p + (1−f)·p = p``), so
        the warm pass only needs to blend the rows it replaced.
        ``new_store`` is the pass's working store — an
        :class:`~repro.core.store.OverlayStore` in the warm loop.
        """
        factor = self.config.dampening
        fresh: Dict[Resource, Dict[Resource, float]] = {}
        for left, right, probability in entries:
            fresh.setdefault(left, {})[right] = probability
        for left in dirty:
            old_row = old_store.equals_of(left)
            new_row = fresh.get(left, {})
            for right in old_row.keys() | new_row.keys():
                blended = factor * old_row.get(right, 0.0) + (1.0 - factor) * new_row.get(
                    right, 0.0
                )
                if blended >= new_store.truncation_threshold:
                    new_store.set(left, right, blended)


def align(
    ontology1: Ontology,
    ontology2: Ontology,
    config: Optional[ParisConfig] = None,
) -> AlignmentResult:
    """Convenience wrapper: ``ParisAligner(o1, o2, config).align()``."""
    return ParisAligner(ontology1, ontology2, config).align()
