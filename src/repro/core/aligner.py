"""The PARIS fixpoint driver (Section 5.1).

One run alternates two steps until convergence:

1. **Instance pass** — recompute ``Pr(x ≡ x')`` for all instances from
   the previous iteration's equivalences (Eq. 13 / Eq. 14).  The very
   first pass is bootstrapped purely by clamped literal equivalences
   and the uniform relation prior ``θ``.
2. **Relation pass** — recompute ``Pr(r ⊆ r')`` in both directions from
   the fresh instance equivalences (Eq. 12).

Convergence is declared when fewer than ``convergence_threshold`` of
the instances change their maximal assignment (Section 6.1).  After the
fixpoint, class inclusions are computed once (Eq. 17, Section 4.3).

The instance pass — the dominant cost — can run sharded across workers
(``ParisConfig.workers`` / ``shard_size`` / ``parallel_backend``),
mirroring the paper's "in parallel on all available processors"
(Section 5.1/6.2).  The parallel engine (:mod:`repro.core.parallel`)
guarantees scores equal to the sequential pass: instances are scored
independently against frozen previous-iteration views and merged in
deterministic shard order, and ``workers=1`` short-circuits to the
bit-identical sequential code path.  The guarantee is enforced by
``tests/test_parallel.py`` and ``tests/test_parallel_properties.py``.
"""

from __future__ import annotations

import time
from typing import Optional

from ..rdf.ontology import Ontology
from ..rdf.terms import Relation
from .config import ParisConfig
from .functionality import FunctionalityOracle
from .literal_index import LiteralIndex
from .matrix import SubsumptionMatrix
from .parallel import parallel_instance_equivalence_pass
from .result import AlignmentResult, IterationSnapshot
from .store import EquivalenceStore
from .subclasses import subclass_pass
from .subrelations import subrelation_pass
from .view import EquivalenceView


class ParisAligner:
    """Aligns two ontologies with the PARIS probabilistic fixpoint.

    Parameters
    ----------
    ontology1, ontology2:
        The two input ontologies.  Following the paper's assumption
        (Section 3), neither may contain internal duplicates; entities
        are only ever matched *across* the two.
    config:
        Algorithm settings; defaults reproduce the paper's setup
        (θ = 0.1, strict literal identity, positive evidence only,
        maximal-assignment restriction, 10 000-pair cap).

    Examples
    --------
    >>> from repro import ParisAligner, ParisConfig
    >>> result = ParisAligner(onto1, onto2).align()   # doctest: +SKIP
    >>> result.instance_pairs(threshold=0.5)          # doctest: +SKIP
    """

    def __init__(
        self,
        ontology1: Ontology,
        ontology2: Ontology,
        config: Optional[ParisConfig] = None,
    ) -> None:
        if ontology1.name == ontology2.name:
            raise ValueError("the two ontologies must have distinct names")
        self.ontology1 = ontology1
        self.ontology2 = ontology2
        self.config = config or ParisConfig()
        # Functionalities are computed upfront (Section 5.1): the
        # no-internal-duplicates assumption means they never change.
        self.fun1 = FunctionalityOracle(ontology1, self.config.functionality)
        self.fun2 = FunctionalityOracle(ontology2, self.config.functionality)
        # Literal equivalences are clamped (Section 5.3): index once.
        similarity = self.config.literal_similarity
        self.literals2 = LiteralIndex(ontology2, similarity)
        self.literals1 = LiteralIndex(ontology1, similarity)

    # ------------------------------------------------------------------

    def _view(self, store: EquivalenceStore) -> EquivalenceView:
        if self.config.restrict_to_maximal_assignment:
            store = store.restricted_to_maximal()
        return EquivalenceView(store, self.literals2, self.literals1)

    def _instance_pass(
        self,
        view: EquivalenceView,
        rel12: SubsumptionMatrix[Relation],
        rel21: SubsumptionMatrix[Relation],
    ) -> EquivalenceStore:
        """One instance pass; the engine itself falls back to the
        bit-identical sequential path for workers=1."""
        config = self.config
        return parallel_instance_equivalence_pass(
            self.ontology1,
            self.ontology2,
            view,
            self.fun1,
            self.fun2,
            rel12,
            rel21,
            truncation_threshold=config.theta,
            use_negative_evidence=config.use_negative_evidence,
            workers=config.workers,
            shard_size=config.shard_size,
            backend=config.parallel_backend,
        )

    def _dampen(
        self, old_store: EquivalenceStore, new_store: EquivalenceStore
    ) -> EquivalenceStore:
        """Blend successive estimates (Section 5.1's dampening remedy)."""
        factor = self.config.dampening
        if factor <= 0.0:
            return new_store
        blended = EquivalenceStore(new_store.truncation_threshold)
        pairs = {(left, right) for left, right, _p in new_store.items()}
        pairs |= {(left, right) for left, right, _p in old_store.items()}
        for left, right in pairs:
            probability = (
                factor * old_store.get(left, right)
                + (1.0 - factor) * new_store.get(left, right)
            )
            if probability >= blended.truncation_threshold:
                blended.set(left, right, probability)
        return blended

    @staticmethod
    def _same_targets(
        first: "dict", second: "dict"
    ) -> bool:
        """Whether two maximal assignments pick the same counterparts."""
        if first.keys() != second.keys():
            return False
        return all(first[key][0] == second[key][0] for key in first)

    def align(self) -> AlignmentResult:
        """Run the fixpoint and return the full alignment."""
        config = self.config
        theta = config.theta
        # Bootstrap: Pr(r ⊆ r') = θ for all cross-ontology relation
        # pairs in the very first step (Section 5.1) — or the
        # name-informed prior if the Section 7 extension is enabled.
        if config.use_name_prior:
            from .priors import name_prior_matrix

            rel12: SubsumptionMatrix[Relation] = name_prior_matrix(
                self.ontology1, self.ontology2, theta, config.name_prior_max
            )
            rel21: SubsumptionMatrix[Relation] = name_prior_matrix(
                self.ontology2, self.ontology1, theta, config.name_prior_max
            )
        else:
            rel12 = SubsumptionMatrix.bootstrap(theta)
            rel21 = SubsumptionMatrix.bootstrap(theta)
        store = EquivalenceStore(theta)
        previous_assignment = store.maximal_assignment()
        assignment_history: list = []
        snapshots = []
        converged = False
        for iteration in range(1, config.max_iterations + 1):
            started = time.perf_counter()
            view = self._view(store)
            new_store = self._instance_pass(view, rel12, rel21)
            store = self._dampen(store, new_store)
            assignment12 = store.maximal_assignment()
            assignment21 = store.maximal_assignment(reverse=True)
            change = (
                EquivalenceStore.assignment_change(previous_assignment, assignment12)
                if iteration > 1
                else None
            )
            previous_assignment = assignment12
            cycle = (
                config.detect_cycles
                and len(assignment_history) >= 2
                and self._same_targets(assignment12, assignment_history[-2])
            )
            assignment_history.append(assignment12)
            if len(assignment_history) > 3:
                assignment_history.pop(0)
            # Relation pass uses the fresh equivalences ("These two
            # steps are iterated until convergence", Section 5.1).  The
            # second round uses the computed values and no longer θ.
            relation_view = self._view(store)
            rel12 = subrelation_pass(
                self.ontology1,
                self.ontology2,
                relation_view,
                truncation_threshold=theta,
                max_pairs=config.max_pairs_per_relation,
                bootstrap_theta=theta,
            )
            rel21 = subrelation_pass(
                self.ontology2,
                self.ontology1,
                relation_view,
                truncation_threshold=theta,
                max_pairs=config.max_pairs_per_relation,
                reverse=True,
                bootstrap_theta=theta,
            )
            duration = time.perf_counter() - started
            if config.keep_snapshots:
                snapshots.append(
                    IterationSnapshot(
                        index=iteration,
                        duration_seconds=duration,
                        change_fraction=change,
                        num_equivalences=len(store),
                        assignment12=assignment12,
                        assignment21=assignment21,
                        relations12=rel12,
                        relations21=rel21,
                    )
                )
            if change is not None and change < config.convergence_threshold:
                converged = True
                break
            if cycle:
                # Period-2 oscillation between equally plausible
                # matches: the fixpoint will not settle further.
                converged = True
                break
        # Classes are aligned once, from the final assignment
        # (Section 4.3 / 5.1: "In a last step, the equivalences between
        # classes are computed by Equation (17)").
        class_view = self._view(store)
        classes12 = subclass_pass(
            self.ontology1,
            self.ontology2,
            class_view,
            truncation_threshold=theta,
            max_instances=config.max_pairs_per_relation,
        )
        classes21 = subclass_pass(
            self.ontology2,
            self.ontology1,
            class_view,
            truncation_threshold=theta,
            max_instances=config.max_pairs_per_relation,
            reverse=True,
        )
        return AlignmentResult(
            left_name=self.ontology1.name,
            right_name=self.ontology2.name,
            instances=store,
            assignment12=store.maximal_assignment(),
            assignment21=store.maximal_assignment(reverse=True),
            relations12=rel12,
            relations21=rel21,
            classes12=classes12,
            classes21=classes21,
            converged=converged,
            iterations=snapshots,
        )


def align(
    ontology1: Ontology,
    ontology2: Ontology,
    config: Optional[ParisConfig] = None,
) -> AlignmentResult:
    """Convenience wrapper: ``ParisAligner(o1, o2, config).align()``."""
    return ParisAligner(ontology1, ontology2, config).align()
