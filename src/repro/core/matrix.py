"""Sparse subsumption score matrix.

Both relation inclusion ``Pr(r ⊆ r')`` (Eq. 12) and class inclusion
``Pr(c ⊆ c')`` (Eq. 17) are sparse maps from a *sub* term of one
ontology to *super* terms of the other with a probability each.
:class:`SubsumptionMatrix` stores one direction (sub-side ontology →
super-side ontology) with reverse indexing, an optional default score
(the bootstrap ``θ`` of Section 5.1), and the usual report helpers.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Mapping, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class SubsumptionMatrix(Generic[K]):
    """Sparse ``Pr(sub ⊆ super)`` scores with a default for unknown pairs.

    Parameters
    ----------
    default:
        Score returned for pairs without an explicit entry.  The very
        first PARIS iteration bootstraps with ``default = θ``
        (Section 5.1); later iterations use ``default = 0``.
    """

    def __init__(self, default: float = 0.0) -> None:
        if default < 0.0 or default > 1.0:
            raise ValueError("default must be in [0, 1]")
        self.default = default
        self._by_sub: Dict[K, Dict[K, float]] = {}
        self._by_super: Dict[K, Dict[K, float]] = {}
        self._sub_defaults: Dict[K, float] = {}

    @classmethod
    def bootstrap(cls, theta: float) -> "SubsumptionMatrix[K]":
        """The Section 5.1 bootstrap: every pair scores ``θ``."""
        return cls(default=theta)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def set(self, sub: K, sup: K, probability: float) -> None:
        """Record ``Pr(sub ⊆ sup) = probability``."""
        if probability < 0.0 or probability > 1.0 + 1e-9:
            raise ValueError(f"probability out of range: {probability}")
        probability = min(probability, 1.0)
        if probability == 0.0:
            row = self._by_sub.get(sub)
            if row and sup in row:
                del row[sup]
                del self._by_super[sup][sub]
            return
        self._by_sub.setdefault(sub, {})[sup] = probability
        self._by_super.setdefault(sup, {})[sub] = probability

    def copy(self) -> "SubsumptionMatrix[K]":
        """An independent copy (same entries, defaults and reverse index).

        Needed where a matrix that keeps being mutated in place (the
        incremental relation caches) must be captured at a point in
        time — e.g. warm-run iteration snapshots.
        """
        duplicate: SubsumptionMatrix[K] = SubsumptionMatrix(self.default)
        duplicate._by_sub = {sub: dict(row) for sub, row in self._by_sub.items()}
        duplicate._by_super = {sup: dict(row) for sup, row in self._by_super.items()}
        duplicate._sub_defaults = dict(self._sub_defaults)
        return duplicate

    def clear_sub(self, sub: K) -> None:
        """Drop the explicit row and per-sub default of ``sub``.

        The row-replacement primitive of the incremental relation pass
        (:mod:`repro.core.incremental`): a dirty relation's row is
        cleared and rebuilt from its refreshed statement sums.
        """
        row = self._by_sub.pop(sub, None)
        if row:
            for sup in row:
                column = self._by_super[sup]
                del column[sub]
                if not column:
                    del self._by_super[sup]
        self._sub_defaults.pop(sub, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def sub_default(self, sub: K) -> float:
        """The effective default score of ``sub``'s row."""
        return self._sub_defaults.get(sub, self.default)

    def set_sub_default(self, sub: K, default: float) -> None:
        """Keep ``sub`` in its prior state: unknown pairs score ``default``.

        Used when Eq. 12 has *no evidence at all* for a relation (its
        statements have no matched counterpart pairs yet): the paper
        distinguishes computed-zero from unknown, and an unknown
        relation keeps the bootstrap prior ``θ`` so entities reachable
        only through it can still start matching in a later iteration.
        """
        if default < 0.0 or default > 1.0:
            raise ValueError("default must be in [0, 1]")
        self._sub_defaults[sub] = default

    def get(self, sub: K, sup: K) -> float:
        """``Pr(sub ⊆ sup)``, falling back to per-sub then global default."""
        row = self._by_sub.get(sub)
        if row is not None and sup in row:
            return row[sup]
        return self._sub_defaults.get(sub, self.default)

    def supers_of(self, sub: K) -> Mapping[K, float]:
        """Explicitly stored super-terms of ``sub`` (no default entries)."""
        return self._by_sub.get(sub, {})

    def subs_of(self, sup: K) -> Mapping[K, float]:
        """Explicitly stored sub-terms of ``sup`` (no default entries)."""
        return self._by_super.get(sup, {})

    def best_super(self, sub: K) -> Optional[Tuple[K, float]]:
        """Highest-scoring super-term of ``sub`` (the maximal assignment)."""
        row = self._by_sub.get(sub)
        if not row:
            return None
        best_key = max(row, key=lambda key: row[key])
        return best_key, row[best_key]

    def items(self) -> Iterator[Tuple[K, K, float]]:
        """Iterate all explicitly stored ``(sub, sup, probability)``."""
        for sub, row in self._by_sub.items():
            for sup, probability in row.items():
                yield sub, sup, probability

    def pairs_above(self, threshold: float) -> List[Tuple[K, K, float]]:
        """All stored pairs with score ≥ ``threshold``, best first."""
        selected = [
            (sub, sup, probability)
            for sub, sup, probability in self.items()
            if probability >= threshold
        ]
        selected.sort(key=lambda entry: -entry[2])
        return selected

    def subs_with_match_above(self, threshold: float) -> int:
        """Number of sub-terms having at least one score ≥ ``threshold``.

        This is the quantity plotted in Figure 2 of the paper (number
        of YAGO classes with an assignment above the threshold).
        """
        return sum(
            1
            for row in self._by_sub.values()
            if row and max(row.values()) >= threshold
        )

    def __len__(self) -> int:
        return sum(len(row) for row in self._by_sub.values())

    def __repr__(self) -> str:
        return f"SubsumptionMatrix({len(self)} pairs, default={self.default})"
