"""Result objects of an alignment run.

An :class:`AlignmentResult` bundles everything Section 6 evaluates:

* final instance equivalences and their maximal assignments (both
  directions),
* relation-inclusion matrices in both directions (Tables 3–5 report
  them separately as ``yago ⊆ DBp`` and ``DBp ⊆ yago``),
* class-inclusion matrices in both directions,
* per-iteration snapshots carrying the maximal assignment and relation
  matrices of each iteration, which is what the per-iteration rows of
  Tables 3 and 5 are computed from.

Snapshots store assignment state *frontier-proportionally*: each
:class:`IterationSnapshot` holds only the delta of the maximal
assignments against the previous pass (the chain head additionally
carries the assignments the run started from), and the
``assignment12``/``assignment21`` properties reconstruct the full
per-pass assignment by replaying the chain.  A cold run starts from
empty assignments, so its first snapshot's delta is the full
first-pass assignment — same cost as before — while a warm-start run
(whose passes move only a small dirty frontier) stores O(changed)
entries per pass instead of O(matched) copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.terms import Relation, Resource
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore

#: Maximal assignment: instance → (best counterpart, probability).
Assignment = Dict[Resource, Tuple[Resource, float]]

#: One pass's change to a maximal assignment: instance → its new
#: (counterpart, probability), or ``None`` when the instance dropped
#: out of the assignment entirely.
AssignmentDelta = Dict[Resource, Optional[Tuple[Resource, float]]]


def assignment_delta(previous: Assignment, current: Assignment) -> AssignmentDelta:
    """The delta that turns ``previous`` into ``current``.

    Inverse of :func:`apply_assignment_delta`:
    ``apply_assignment_delta(dict(previous), assignment_delta(previous,
    current)) == current`` for any two assignments.
    """
    delta: AssignmentDelta = {}
    for entity, match in current.items():
        if previous.get(entity) != match:
            delta[entity] = match
    for entity in previous:
        if entity not in current:
            delta[entity] = None
    return delta


def apply_assignment_delta(assignment: Assignment, delta: AssignmentDelta) -> Assignment:
    """Apply one pass's delta to ``assignment`` in place (and return it)."""
    for entity, match in delta.items():
        if match is None:
            assignment.pop(entity, None)
        else:
            assignment[entity] = match
    return assignment


def iter_pair_changes(
    changes: AssignmentDelta, previous: Assignment
) -> Iterable[Tuple[Resource, Optional[Tuple[Resource, float]], Optional[Tuple[Resource, float]]]]:
    """``(entity, old match, new match)`` rows of one net change log.

    ``previous`` must be the assignment *before* ``changes`` applied —
    the convention every consumer of the change log shares (change
    events, the query index, the state digest): the old side of a row
    comes from the pre-delta assignment, the new side from the delta
    itself, and an entity absent from either side reads as ``None``.
    """
    for entity, match in changes.items():
        yield entity, previous.get(entity), match


def merge_assignment_deltas(
    deltas: Iterable[AssignmentDelta], base: Assignment
) -> AssignmentDelta:
    """Collapse consecutive per-pass deltas into one *net* delta.

    Later passes win per entity, and entities whose final value equals
    what ``base`` already held (a change that reverted mid-run) drop
    out — the result is exactly the change log a downstream consumer
    (secondary query indexes, change subscriptions) must apply to move
    from the pre-run assignment to the post-run one, computed in
    O(total changes), never O(matched).
    """
    merged: AssignmentDelta = {}
    for delta in deltas:
        merged.update(delta)
    return {
        entity: match
        for entity, match in merged.items()
        if base.get(entity) != match
    }


@dataclass
class IterationSnapshot:
    """State captured at the end of one fixpoint iteration.

    Construct via :meth:`capture` (which computes the assignment deltas
    from the caller's running full assignments) and read the full
    per-pass assignments back through the ``assignment12`` /
    ``assignment21`` properties; the raw delta fields exist for
    introspection and for tests asserting the O(changed) storage bound.
    """

    #: 1-based iteration number.
    index: int
    #: Wall-clock seconds spent in this iteration.
    duration_seconds: float
    #: Fraction of instances whose maximal assignment changed relative
    #: to the previous iteration (the "Change to prev." column of
    #: Tables 3 and 5); ``None`` for the first iteration.
    change_fraction: Optional[float]
    #: Number of stored positive equivalences after this iteration.
    num_equivalences: int
    #: Changes of the left → right maximal assignment relative to the
    #: previous pass (or to ``base12`` on the chain head).
    assignment12_delta: AssignmentDelta
    #: Changes of the right → left maximal assignment.
    assignment21_delta: AssignmentDelta
    #: Relation inclusions left ⊆ right computed in this iteration.
    relations12: SubsumptionMatrix[Relation]
    #: Relation inclusions right ⊆ left computed in this iteration.
    relations21: SubsumptionMatrix[Relation]
    #: The previous pass's snapshot (``None`` on the chain head).
    previous: Optional["IterationSnapshot"] = field(default=None, repr=False)
    #: Assignments the chain starts from; only read on the head
    #: (empty for cold runs, the pre-delta assignment for warm runs).
    base12: Assignment = field(default_factory=dict, repr=False)
    base21: Assignment = field(default_factory=dict, repr=False)

    @classmethod
    def capture(
        cls,
        *,
        index: int,
        duration_seconds: float,
        change_fraction: Optional[float],
        num_equivalences: int,
        assignment12: Assignment,
        assignment21: Assignment,
        relations12: SubsumptionMatrix[Relation],
        relations21: SubsumptionMatrix[Relation],
        previous: Optional["IterationSnapshot"],
        previous12: Assignment,
        previous21: Assignment,
    ) -> "IterationSnapshot":
        """Snapshot one pass, storing only its assignment changes.

        ``previous12``/``previous21`` are the full assignments that
        ``previous`` reconstructs to — the fixpoint loops track them
        anyway for their convergence criteria, so capturing never has
        to replay the chain.  When ``previous`` is ``None`` they become
        the chain's base (copied, so later caller mutation cannot skew
        reconstruction).
        """
        return cls(
            index=index,
            duration_seconds=duration_seconds,
            change_fraction=change_fraction,
            num_equivalences=num_equivalences,
            assignment12_delta=assignment_delta(previous12, assignment12),
            assignment21_delta=assignment_delta(previous21, assignment21),
            relations12=relations12,
            relations21=relations21,
            previous=previous,
            base12=dict(previous12) if previous is None else {},
            base21=dict(previous21) if previous is None else {},
        )

    def _reconstruct(self, forward: bool) -> Assignment:
        chain: List["IterationSnapshot"] = []
        node: Optional["IterationSnapshot"] = self
        while node is not None:
            chain.append(node)
            node = node.previous
        chain.reverse()
        head = chain[0]
        assignment = dict(head.base12 if forward else head.base21)
        for snapshot in chain:
            apply_assignment_delta(
                assignment,
                snapshot.assignment12_delta if forward else snapshot.assignment21_delta,
            )
        return assignment

    @property
    def assignment12(self) -> Assignment:
        """Maximal assignment, left ontology → right ontology.

        Reconstructed by replaying the delta chain on *every* access —
        O(matched + changes), not a stored dict — so callers that read
        it repeatedly (e.g. inside per-entity loops) should hoist it
        into a local first.
        """
        return self._reconstruct(forward=True)

    @property
    def assignment21(self) -> Assignment:
        """Maximal assignment, right ontology → left ontology (same
        access cost caveat as :attr:`assignment12`)."""
        return self._reconstruct(forward=False)


@dataclass
class AlignmentResult:
    """Complete output of a PARIS run."""

    #: Name of the left ontology.
    left_name: str
    #: Name of the right ontology.
    right_name: str
    #: Final instance-equivalence store.
    instances: EquivalenceStore
    #: Final maximal assignment, left → right.
    assignment12: Assignment
    #: Final maximal assignment, right → left.
    assignment21: Assignment
    #: Final relation inclusions, left ⊆ right.
    relations12: SubsumptionMatrix[Relation]
    #: Final relation inclusions, right ⊆ left.
    relations21: SubsumptionMatrix[Relation]
    #: Class inclusions, left ⊆ right (computed after the fixpoint).
    classes12: SubsumptionMatrix[Resource]
    #: Class inclusions, right ⊆ left.
    classes21: SubsumptionMatrix[Resource]
    #: Whether the run stopped because the change criterion was met
    #: (as opposed to hitting the iteration cap).
    converged: bool
    #: Per-iteration snapshots (empty if ``keep_snapshots`` was off).
    iterations: List[IterationSnapshot] = field(default_factory=list)
    #: Store/view entry writes performed by the warm-start fixpoint
    #: (0 for cold runs) — the O(frontier) work metric the incremental
    #: microbenchmark asserts against the store size.
    pairs_touched: int = 0

    @property
    def num_iterations(self) -> int:
        """Number of fixpoint iterations that ran."""
        return len(self.iterations)

    def net_assignment_changes(
        self,
    ) -> Optional[Tuple[AssignmentDelta, AssignmentDelta]]:
        """The run's net change log for both maximal assignments.

        Merges the per-iteration snapshot deltas against the chain
        head's base assignment (:func:`merge_assignment_deltas`), so a
        warm run costs O(changes) — the frontier — not O(matched).  An
        entity maps to its new ``(counterpart, probability)`` or
        ``None`` when it dropped out of the assignment.  Returns
        ``None`` when the run kept no snapshots (``keep_snapshots``
        off); callers then diff the full assignments themselves.
        """
        if not self.iterations:
            return None
        head = self.iterations[0]
        return (
            merge_assignment_deltas(
                (snap.assignment12_delta for snap in self.iterations), head.base12
            ),
            merge_assignment_deltas(
                (snap.assignment21_delta for snap in self.iterations), head.base21
            ),
        )

    def instance_pairs(self, threshold: float = 0.0) -> List[Tuple[Resource, Resource, float]]:
        """Maximal-assignment pairs with probability ≥ ``threshold``.

        This is the output evaluated against gold standards in
        Section 6.1 ("For instances, we considered only the assignment
        with the maximal score").
        """
        return [
            (left, right, probability)
            for left, (right, probability) in self.assignment12.items()
            if probability >= threshold
        ]

    def relation_pairs(
        self, threshold: float = 0.0, reverse: bool = False
    ) -> List[Tuple[Relation, Relation, float]]:
        """Maximally-assigned relation inclusions with score ≥ ``threshold``.

        Section 6.4: "We consider only the maximally assigned relation,
        because the relations do not form a hierarchy."
        """
        matrix = self.relations21 if reverse else self.relations12
        pairs: List[Tuple[Relation, Relation, float]] = []
        for sub in {sub for sub, _sup, _p in matrix.items()}:
            best = matrix.best_super(sub)
            if best is not None and best[1] >= threshold:
                pairs.append((sub, best[0], best[1]))
        pairs.sort(key=lambda entry: -entry[2])
        return pairs

    def class_pairs(
        self, threshold: float = 0.0, reverse: bool = False
    ) -> List[Tuple[Resource, Resource, float]]:
        """All class inclusions with score ≥ ``threshold`` (best first).

        Unlike relations, classes keep *all* assignments above the
        threshold: "paris assigns one class of one ontology to multiple
        classes in the taxonomy of the other ontology" (Section 6.4).
        """
        matrix = self.classes21 if reverse else self.classes12
        return matrix.pairs_above(threshold)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        status = "converged" if self.converged else "stopped at iteration cap"
        return (
            f"PARIS alignment {self.left_name} <-> {self.right_name}: "
            f"{self.num_iterations} iterations ({status}), "
            f"{len(self.assignment12)} instances matched left-to-right, "
            f"{len(self.assignment21)} right-to-left, "
            f"{len(self.relations12)} relation inclusions left-in-right, "
            f"{len(self.relations21)} right-in-left, "
            f"{len(self.classes12)} class inclusions left-in-right, "
            f"{len(self.classes21)} right-in-left."
        )
