"""Result objects of an alignment run.

An :class:`AlignmentResult` bundles everything Section 6 evaluates:

* final instance equivalences and their maximal assignments (both
  directions),
* relation-inclusion matrices in both directions (Tables 3–5 report
  them separately as ``yago ⊆ DBp`` and ``DBp ⊆ yago``),
* class-inclusion matrices in both directions,
* per-iteration snapshots carrying the maximal assignment and relation
  matrices of each iteration, which is what the per-iteration rows of
  Tables 3 and 5 are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rdf.terms import Relation, Resource
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore

#: Maximal assignment: instance → (best counterpart, probability).
Assignment = Dict[Resource, Tuple[Resource, float]]


@dataclass
class IterationSnapshot:
    """State captured at the end of one fixpoint iteration."""

    #: 1-based iteration number.
    index: int
    #: Wall-clock seconds spent in this iteration.
    duration_seconds: float
    #: Fraction of instances whose maximal assignment changed relative
    #: to the previous iteration (the "Change to prev." column of
    #: Tables 3 and 5); ``None`` for the first iteration.
    change_fraction: Optional[float]
    #: Number of stored positive equivalences after this iteration.
    num_equivalences: int
    #: Maximal assignment, left ontology → right ontology.
    assignment12: Assignment
    #: Maximal assignment, right ontology → left ontology.
    assignment21: Assignment
    #: Relation inclusions left ⊆ right computed in this iteration.
    relations12: SubsumptionMatrix[Relation]
    #: Relation inclusions right ⊆ left computed in this iteration.
    relations21: SubsumptionMatrix[Relation]


@dataclass
class AlignmentResult:
    """Complete output of a PARIS run."""

    #: Name of the left ontology.
    left_name: str
    #: Name of the right ontology.
    right_name: str
    #: Final instance-equivalence store.
    instances: EquivalenceStore
    #: Final maximal assignment, left → right.
    assignment12: Assignment
    #: Final maximal assignment, right → left.
    assignment21: Assignment
    #: Final relation inclusions, left ⊆ right.
    relations12: SubsumptionMatrix[Relation]
    #: Final relation inclusions, right ⊆ left.
    relations21: SubsumptionMatrix[Relation]
    #: Class inclusions, left ⊆ right (computed after the fixpoint).
    classes12: SubsumptionMatrix[Resource]
    #: Class inclusions, right ⊆ left.
    classes21: SubsumptionMatrix[Resource]
    #: Whether the run stopped because the change criterion was met
    #: (as opposed to hitting the iteration cap).
    converged: bool
    #: Per-iteration snapshots (empty if ``keep_snapshots`` was off).
    iterations: List[IterationSnapshot] = field(default_factory=list)
    #: Store/view entry writes performed by the warm-start fixpoint
    #: (0 for cold runs) — the O(frontier) work metric the incremental
    #: microbenchmark asserts against the store size.
    pairs_touched: int = 0

    @property
    def num_iterations(self) -> int:
        """Number of fixpoint iterations that ran."""
        return len(self.iterations)

    def instance_pairs(self, threshold: float = 0.0) -> List[Tuple[Resource, Resource, float]]:
        """Maximal-assignment pairs with probability ≥ ``threshold``.

        This is the output evaluated against gold standards in
        Section 6.1 ("For instances, we considered only the assignment
        with the maximal score").
        """
        return [
            (left, right, probability)
            for left, (right, probability) in self.assignment12.items()
            if probability >= threshold
        ]

    def relation_pairs(
        self, threshold: float = 0.0, reverse: bool = False
    ) -> List[Tuple[Relation, Relation, float]]:
        """Maximally-assigned relation inclusions with score ≥ ``threshold``.

        Section 6.4: "We consider only the maximally assigned relation,
        because the relations do not form a hierarchy."
        """
        matrix = self.relations21 if reverse else self.relations12
        pairs: List[Tuple[Relation, Relation, float]] = []
        for sub in {sub for sub, _sup, _p in matrix.items()}:
            best = matrix.best_super(sub)
            if best is not None and best[1] >= threshold:
                pairs.append((sub, best[0], best[1]))
        pairs.sort(key=lambda entry: -entry[2])
        return pairs

    def class_pairs(
        self, threshold: float = 0.0, reverse: bool = False
    ) -> List[Tuple[Resource, Resource, float]]:
        """All class inclusions with score ≥ ``threshold`` (best first).

        Unlike relations, classes keep *all* assignments above the
        threshold: "paris assigns one class of one ontology to multiple
        classes in the taxonomy of the other ontology" (Section 6.4).
        """
        matrix = self.classes21 if reverse else self.classes12
        return matrix.pairs_above(threshold)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        status = "converged" if self.converged else "stopped at iteration cap"
        return (
            f"PARIS alignment {self.left_name} <-> {self.right_name}: "
            f"{self.num_iterations} iterations ({status}), "
            f"{len(self.assignment12)} instances matched left-to-right, "
            f"{len(self.assignment21)} right-to-left, "
            f"{len(self.relations12)} relation inclusions left-in-right, "
            f"{len(self.relations21)} right-in-left, "
            f"{len(self.classes12)} class inclusions left-in-right, "
            f"{len(self.classes21)} right-in-left."
        )
