"""Unified read view over instance equivalences and literal similarities.

The equations of Section 4 mix two kinds of equivalence:

* clamped literal equivalences (Section 5.3) — available from the very
  first iteration, they are what bootstraps instance matching, and
* computed instance equivalences — read from the *previous* iteration's
  store (optionally restricted to the maximal assignment, Section 5.2).

:class:`EquivalenceView` exposes both behind one interface so the
equivalence/subrelation/subclass passes need not care which kind of
node they are looking at.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple

from ..rdf.terms import Literal, Node, Resource
from .literal_index import LiteralIndex
from .store import EquivalenceStore

#: The empty candidate mapping, shared to avoid allocation.
_EMPTY: Mapping[Resource, float] = {}


class EquivalenceView:
    """Candidate equivalents and probabilities across two ontologies.

    Parameters
    ----------
    store:
        Instance equivalences of the previous iteration (possibly
        already restricted to the maximal assignment).
    literals_of_right:
        Blocking index over the right ontology's literals (used when a
        left node is a literal).
    literals_of_left:
        Blocking index over the left ontology's literals.
    """

    def __init__(
        self,
        store: EquivalenceStore,
        literals_of_right: LiteralIndex,
        literals_of_left: LiteralIndex,
    ) -> None:
        self.store = store
        self._right_index = literals_of_right
        self._left_index = literals_of_left
        if literals_of_right.similarity is not literals_of_left.similarity:
            raise ValueError("both literal indexes must share one similarity measure")
        self.similarity = literals_of_right.similarity

    def equivalents(
        self, node: Node, reverse: bool = False
    ) -> Iterable[Tuple[Node, float]]:
        """Iterate ``(counterpart, probability)`` for ``node``.

        Parameters
        ----------
        node:
            A node of the left ontology (or of the right one when
            ``reverse`` is set).
        reverse:
            Look up right-to-left instead of left-to-right.
        """
        if isinstance(node, Literal):
            index = self._left_index if reverse else self._right_index
            return index.candidates(node)
        row = (
            self.store.equals_of_right(node)
            if reverse
            else self.store.equals_of(node)
        )
        return row.items()

    def prob(self, left: Node, right: Node) -> float:
        """``Pr(left ≡ right)`` for any node kinds.

        A literal and a resource are never equivalent (the paper treats
        "one ontology refers to cities by strings" as future work).
        """
        left_is_literal = isinstance(left, Literal)
        right_is_literal = isinstance(right, Literal)
        if left_is_literal != right_is_literal:
            return 0.0
        if left_is_literal:
            return self.similarity.similarity(left, right)  # type: ignore[arg-type]
        return self.store.get(left, right)  # type: ignore[arg-type]
