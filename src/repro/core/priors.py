"""Relation-name priors (the paper's conjectured extension).

PARIS deliberately "does not use any kind of heuristics on relation
names, which allows aligning relations with completely different
names.  We conjecture that the name heuristics of more traditional
schema-alignment techniques could be factored into the model"
(Section 7).  This module implements that factoring: instead of the
uniform bootstrap ``Pr(r ⊆ r') = θ``, the first iteration can start
from a per-pair prior derived from the relations' names::

    prior(r, r') = θ + (θ_max − θ) · name_similarity(r, r')

where ``name_similarity`` is a token-based Jaccard similarity over
camelCase/snake_case/namespace-split name fragments.  Relations with
similar names start with more trust but never *less* than θ, so
alignments with completely different names remain discoverable — the
prior only accelerates, it cannot exclude.

The ``test_ablation_name_prior`` bench measures the effect: same final
quality (θ-invariance extends to informed priors), sometimes fewer
iterations to convergence.
"""

from __future__ import annotations

import re
from typing import Set

from ..rdf.ontology import Ontology
from ..rdf.terms import Relation
from .matrix import SubsumptionMatrix

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_SEPARATORS = re.compile(r"[:_\-./]+")

#: Tokens too generic to signal a correspondence on their own.
_STOP_TOKENS = frozenset({"has", "is", "of", "was", "the", "in", "on", "a"})


def name_tokens(relation: Relation) -> Set[str]:
    """Lowercased word fragments of a relation name.

    ``y:wasBornIn`` → ``{"born"}``;  ``dbp:birth_place`` →
    ``{"birth", "place"}``.  Namespace prefixes, separators and stop
    words are dropped; the inversion marker is ignored (the prior is
    about the lexical name, directionality comes from the data).
    """
    name = relation.name
    if ":" in name:
        name = name.split(":", 1)[1]
    pieces = _SEPARATORS.split(name)
    tokens: Set[str] = set()
    for piece in pieces:
        for token in _CAMEL_BOUNDARY.split(piece):
            lowered = token.lower()
            if lowered and lowered not in _STOP_TOKENS:
                tokens.add(lowered)
    return tokens


def name_similarity(left: Relation, right: Relation) -> float:
    """Jaccard similarity of the two relations' name-token sets."""
    left_tokens = name_tokens(left)
    right_tokens = name_tokens(right)
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    if not intersection:
        return 0.0
    return intersection / len(left_tokens | right_tokens)


def name_prior_matrix(
    ontology1: Ontology,
    ontology2: Ontology,
    theta: float,
    theta_max: float = 0.5,
) -> SubsumptionMatrix[Relation]:
    """Bootstrap matrix seeded with name similarity.

    Every pair defaults to ``θ`` (so nothing is excluded); pairs with
    lexically similar names get an explicit boosted entry up to
    ``θ_max``.

    Parameters
    ----------
    theta:
        The uniform floor (the paper's bootstrap value).
    theta_max:
        Prior for a perfect name match; intermediate similarities
        interpolate linearly.
    """
    if not 0.0 < theta <= theta_max <= 1.0:
        raise ValueError("need 0 < theta <= theta_max <= 1")
    matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix.bootstrap(theta)
    relations2 = ontology2.relations(include_inverses=True)
    for relation1 in ontology1.relations(include_inverses=True):
        for relation2 in relations2:
            # Align same-direction pairs lexically; cross-direction
            # pairs keep the floor (names say nothing about inversion).
            if relation1.inverted != relation2.inverted:
                continue
            similarity = name_similarity(relation1, relation2)
            if similarity > 0.0:
                prior = theta + (theta_max - theta) * similarity
                matrix.set(relation1, relation2, prior)
    return matrix
