"""Sub-relation pass (Section 4.2, Eq. 12).

For relations ``r`` of the first ontology and ``r'`` of the second::

              Σ_{r(x,y)} (1 − ∏_{r'(x',y')} (1 − Pr(x≡x')·Pr(y≡y')))
  Pr(r⊆r') = ──────────────────────────────────────────────────────────
              Σ_{r(x,y)} (1 − ∏_{x',y'}    (1 − Pr(x≡x')·Pr(y≡y')))

The numerator counts statements of ``r`` whose matched counterpart pair
is connected by ``r'`` in the other ontology; the denominator normalizes
by the statements of ``r`` that have *any* counterpart pair at all.

Implementation notes (Section 5.2):

* the pass walks each statement ``r(x, y)`` once, looks up the known
  equivalents of ``x`` and ``y``, and updates every ``r'`` that holds
  between any counterpart pair — all ``r'`` scores for a given ``r``
  are produced in one sweep;
* the number of statements examined per relation is capped
  (``max_pairs_per_relation``, paper value 10 000);
* with the maximal-assignment restriction each node has at most one
  counterpart, which is what makes the sweep cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Node, Relation
from .matrix import SubsumptionMatrix
from .view import EquivalenceView


def statement_terms(
    x: Node,
    y: Node,
    ontology2: Ontology,
    view: EquivalenceView,
    reverse: bool = False,
) -> Tuple[float, Dict[Relation, float]]:
    """The Eq. 12 contribution of one statement ``r(x, y)``.

    Returns ``(denominator_term, {r': numerator_term})``: the statement
    adds ``denominator_term`` to every row denominator of its relation
    and ``numerator_term`` to the numerator of each matched ``r'``.
    Both the batch pass below and the incremental relation pass
    (:mod:`repro.core.incremental`) sum exactly these terms, which is
    what makes the incremental row maintenance equivalent to a fresh
    sweep.
    """
    x_equals = list(view.equivalents(x, reverse=reverse))
    if not x_equals:
        return 0.0, {}
    y_equals = list(view.equivalents(y, reverse=reverse))
    if not y_equals:
        return 0.0, {}
    denominator_product = 1.0
    matched_products: Dict[Relation, float] = {}
    for x_prime, prob_x in x_equals:
        for y_prime, prob_y in y_equals:
            pair_probability = prob_x * prob_y
            if pair_probability <= 0.0:
                continue
            denominator_product *= 1.0 - pair_probability
            for relation2 in ontology2.relations_of(x_prime):
                if y_prime in ontology2.objects(relation2, x_prime):
                    matched_products[relation2] = matched_products.get(
                        relation2, 1.0
                    ) * (1.0 - pair_probability)
    return 1.0 - denominator_product, {
        relation2: 1.0 - product for relation2, product in matched_products.items()
    }


def score_relation(
    relation: Relation,
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    max_pairs: int,
    reverse: bool = False,
) -> Optional[Dict[Relation, float]]:
    """Scores ``Pr(relation ⊆ r')`` against every relation of ``ontology2``.

    Returns ``None`` when Eq. 12 has no evidence for ``relation`` (its
    statements have no matched counterpart pair — a zero denominator):
    the relation's inclusion probabilities are then *unknown* rather
    than zero, and the caller keeps them at the bootstrap prior.

    Parameters
    ----------
    reverse:
        When ``True``, ``relation`` belongs to the right ontology and
        equivalents are looked up right-to-left; ``ontology1`` is then
        the right ontology and ``ontology2`` the left one.
    """
    numerators: Dict[Relation, float] = {}
    denominator = 0.0
    examined = 0
    for x, y in ontology1.pairs(relation):
        if examined >= max_pairs:
            break
        examined += 1
        denominator_term, numerator_terms = statement_terms(
            x, y, ontology2, view, reverse=reverse
        )
        denominator += denominator_term
        for relation2, term in numerator_terms.items():
            numerators[relation2] = numerators.get(relation2, 0.0) + term
    if denominator <= 0.0:
        return None
    return {
        relation2: min(1.0, numerator / denominator)
        for relation2, numerator in numerators.items()
    }


def score_relations(
    relations: Iterable[Relation],
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    max_pairs: int,
    reverse: bool = False,
) -> List[Tuple[Relation, Optional[Dict[Relation, float]]]]:
    """Score a batch of relations; the shard unit of the parallel pass.

    Each relation's row depends only on the frozen inputs (ontologies
    and previous-iteration view), never on other relations, so any
    partition of the relation list yields the same rows — the exact
    analogue of :func:`repro.core.equivalence.score_instances` for the
    relation pass.
    """
    return [
        (
            relation,
            score_relation(relation, ontology1, ontology2, view, max_pairs, reverse=reverse),
        )
        for relation in relations
    ]


def apply_relation_scores(
    matrix: SubsumptionMatrix[Relation],
    scored: Iterable[Tuple[Relation, Optional[Dict[Relation, float]]]],
    truncation_threshold: float,
    bootstrap_theta: float,
) -> None:
    """Fold scored rows into ``matrix`` (the shard-merge step)."""
    for relation, scores in scored:
        if scores is None:
            # No evidence: the relation stays at the bootstrap prior so
            # entities reachable only through it can still be matched
            # in the next iteration (see score_relation).
            matrix.set_sub_default(relation, bootstrap_theta)
            continue
        for relation2, score in scores.items():
            if score >= truncation_threshold:
                matrix.set(relation, relation2, score)


def subrelation_pass(
    ontology1: Ontology,
    ontology2: Ontology,
    view: EquivalenceView,
    truncation_threshold: float,
    max_pairs: int,
    reverse: bool = False,
    bootstrap_theta: float = 0.0,
) -> SubsumptionMatrix[Relation]:
    """Compute ``Pr(r ⊆ r')`` for every relation ``r`` of ``ontology1``.

    Schema relations (``rdf:type`` etc.) are excluded: the paper aligns
    the schema through Eq. 12/17, not by matching the RDFS vocabulary
    against itself.  Note that ``Pr(r ⊆ r)`` is *not* pinned to 1 — the
    paper computes it as a contingent quantity even for shared relation
    names (Section 4.2).
    """
    matrix: SubsumptionMatrix[Relation] = SubsumptionMatrix()
    for relation in ontology1.relations(include_inverses=True):
        apply_relation_scores(
            matrix,
            score_relations(
                (relation,), ontology1, ontology2, view, max_pairs, reverse=reverse
            ),
            truncation_threshold,
            bootstrap_theta,
        )
    return matrix
