"""Interned-ID vectorized Eq. 13 scoring kernel.

The dict engine in :mod:`repro.core.equivalence` walks the optimized
Section 5.2 traversal one Python statement at a time.  This module
freezes the same traversal into flat numpy arrays so a whole pass runs
as a handful of vectorized gathers:

* **Interning** — every node with a data statement gets a dense integer
  id per ontology (:meth:`Ontology.nodes_with_statements` order), every
  relation (inverses included) likewise.
* **Static CSR** — per ontology, the ``statements_about`` adjacency is
  stored as ``indptr``/``rel``/``other`` arrays frozen in the *exact*
  iteration order of the dict traversal.  The right ontology's CSR
  keeps only resource-valued "other" slots (the dict path skips literal
  ``x'`` candidates).  Functionality vectors are indexed by relation
  id.  All of this is rebuilt only when :attr:`Ontology.version` moves.
* **Per-pass arrays** — :meth:`VectorizedKernel.prepare_pass` lowers
  the previous iteration's view (clamped literal candidates + the
  restricted store) into one candidate CSR and the two relation
  matrices into dense ``[sub_id, super_id]`` grids honouring per-sub
  defaults.  This is the only state a pass has to ship to workers.

Bit-exactness with the dict path
--------------------------------
The kernel reproduces the dict engine's floats *bit for bit*, which is
what lets the aligner switch backends without disturbing the parallel
engine's sequential-equality guarantees:

* every factor is computed by the same left-to-right IEEE operations
  (``1 - (s·fun⁻¹)·p``) element-wise, with the same ``> 0`` guards;
* per ``(x, x')`` products fold factors in traversal order via
  ``np.multiply.reduceat`` over a stable sort — the same grouping of
  multiplications as the sequential loop;
* the dict path's running clamp ``max(product·factor, 1e-12)`` is
  equivalent to clamping once at the end: factors lie in ``[0, 1)``
  (factors ``>= 1`` are skipped), so the product sequence is
  non-increasing and the first dip below the clamp is also the final
  unclamped value — once clamped, ``max(1e-12·f, 1e-12)`` stays at
  exactly ``1e-12`` forever.  ``np.maximum(product, 1e-12)`` therefore
  yields the identical float;
* candidates are emitted in first-touch traversal order per instance,
  so downstream stores fill in the same insertion order (later passes
  accumulate floats over store dict order).

``tests/test_vectorized.py`` asserts the equality property; the kernel
declines to run (``HAVE_NUMPY`` is false) when numpy is unavailable,
and negative evidence (Eq. 14) stays on the dict path — its penalty
term reads arbitrary statements and is applied per surviving candidate
by the caller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Node, Relation, Resource
from .equivalence import _MIN_FACTOR, ordered_instances
from .functionality import FunctionalityOracle
from .literal_index import LiteralIndex
from .matrix import SubsumptionMatrix
from .store import EquivalenceStore

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container bakes numpy in
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Target number of innermost (level-3) expansion entries per chunk;
#: bounds the transient flat arrays to tens of MB regardless of corpus
#: size or hub fan-in.
CHUNK_BUDGET = 2_000_000


def _ragged(starts, counts):
    """Flat gather positions for ragged rows ``[starts[i], starts[i]+counts[i])``.

    Returns ``(positions, segment_ids)`` where ``segment_ids[k]`` is the
    row index that produced ``positions[k]``; concatenation order is row
    order — exactly the nested-loop visitation order of the dict path.
    """
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    seg = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    prefix = np.cumsum(counts) - counts
    pos = starts[seg] + (np.arange(total, dtype=np.int64) - prefix[seg])
    return pos, seg


class PreparedPass:
    """Per-pass candidate CSR + dense relation grids (shippable).

    Everything a worker needs beyond the fork-inherited static kernel:
    small arrays proportional to the matched pairs and literal
    candidates, never to the ontologies.
    """

    __slots__ = (
        "view_starts",
        "view_counts",
        "flat_ids",
        "flat_probs",
        "m12",
        "m21",
        "level3_cost",
    )

    def __init__(self, view_starts, view_counts, flat_ids, flat_probs, m12, m21, level3_cost):
        self.view_starts = view_starts
        self.view_counts = view_counts
        self.flat_ids = flat_ids
        self.flat_probs = flat_probs
        self.m12 = m12
        self.m21 = m21
        self.level3_cost = level3_cost


class VectorizedKernel:
    """Frozen statement arrays for one ontology pair (one `version` each).

    Built by :class:`~repro.core.aligner.ParisAligner` when the
    ``scoring`` config resolves to the vectorized backend; workers
    inherit it read-only through the fork of the persistent pool.
    """

    def __init__(
        self,
        ontology1: Ontology,
        ontology2: Ontology,
        fun1: FunctionalityOracle,
        fun2: FunctionalityOracle,
        literals_of_right: LiteralIndex,
    ) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by callers
            raise RuntimeError("the vectorized kernel requires numpy")
        self.ontology1 = ontology1
        self.ontology2 = ontology2
        self.versions = (ontology1.version, ontology2.version)

        # -- node interners (iteration order of nodes_with_statements) --
        self.nodes1: Dict[Node, int] = {}
        self.table1: List[Node] = []
        for node in ontology1.nodes_with_statements():
            self.nodes1[node] = len(self.table1)
            self.table1.append(node)
        self.nodes2: Dict[Node, int] = {}
        self.table2: List[Node] = []
        for node in ontology2.nodes_with_statements():
            self.nodes2[node] = len(self.table2)
            self.table2.append(node)
        self.n1 = len(self.table1)
        self.n2 = len(self.table2)

        # -- relation interners (both directions carry statements) -----
        self.rels1: Dict[Relation, int] = {}
        self.rel_table1: List[Relation] = []
        for relation in ontology1.relations(include_inverses=True):
            self.rels1[relation] = len(self.rel_table1)
            self.rel_table1.append(relation)
        self.rels2: Dict[Relation, int] = {}
        self.rel_table2: List[Relation] = []
        for relation in ontology2.relations(include_inverses=True):
            self.rels2[relation] = len(self.rel_table2)
            self.rel_table2.append(relation)
        self.inv2 = np.array(
            [self.rels2[relation.inverse] for relation in self.rel_table2],
            dtype=np.int64,
        )

        # -- functionality vectors indexed by relation id ---------------
        self.inv_fun1 = np.array(
            fun1.inverse_fun_values(self.rel_table1), dtype=np.float64
        )
        self.inv_fun2 = np.array(
            fun2.inverse_fun_values(self.rel_table2), dtype=np.float64
        )

        # -- outer CSR: statements_about order, left ontology -----------
        indptr1 = [0]
        rel1: List[int] = []
        other1: List[int] = []
        for node in self.table1:
            for relation, obj in ontology1.statements_about(node):
                rel1.append(self.rels1[relation])
                other1.append(self.nodes1[obj])
            indptr1.append(len(rel1))
        self.indptr1 = np.array(indptr1, dtype=np.int64)
        self.stmt_rel1 = np.array(rel1, dtype=np.int64)
        self.stmt_other1 = np.array(other1, dtype=np.int64)

        # -- inner CSR: resource-valued statements of the right side ----
        indptr2 = [0]
        rel2: List[int] = []
        other2: List[int] = []
        for node in self.table2:
            for relation, obj in ontology2.statements_about(node):
                if isinstance(obj, Literal):
                    continue  # the dict path skips literal x' candidates
                rel2.append(self.rels2[relation])
                other2.append(self.nodes2[obj])
            indptr2.append(len(rel2))
        self.indptr2 = np.array(indptr2, dtype=np.int64)
        self.stmt_rel2 = np.array(rel2, dtype=np.int64)
        self.stmt_other2 = np.array(other2, dtype=np.int64)

        # -- clamped literal candidates (static for the whole run) ------
        lit_indptr = [0]
        lit_ids: List[int] = []
        lit_probs: List[float] = []
        for node in self.table1:
            if isinstance(node, Literal):
                for candidate, probability in literals_of_right.candidates(node):
                    target = self.nodes2.get(candidate)
                    if target is None:
                        continue  # no statements -> no contribution
                    lit_ids.append(target)
                    lit_probs.append(probability)
            lit_indptr.append(len(lit_ids))
        self.lit_indptr = np.array(lit_indptr, dtype=np.int64)
        self.lit_ids = np.array(lit_ids, dtype=np.int64)
        self.lit_probs = np.array(lit_probs, dtype=np.float64)
        self.lit_counts = self.lit_indptr[1:] - self.lit_indptr[:-1]
        self.is_literal1 = np.array(
            [isinstance(node, Literal) for node in self.table1], dtype=bool
        )

        # -- canonical full-pass traversal (sorted instance order) ------
        self.ordered_nodes: List[Resource] = ordered_instances(ontology1.instances)
        self.ordered_ids = self.ids_for(self.ordered_nodes)

    # ------------------------------------------------------------------

    def fresh(self) -> bool:
        """Whether the frozen arrays still match the ontologies."""
        return self.versions == (self.ontology1.version, self.ontology2.version)

    def ids_for(self, instances: Sequence[Resource]):
        """Interned ids of ``instances`` (-1 for statement-less ones)."""
        nodes1 = self.nodes1
        return np.array(
            [nodes1.get(instance, -1) for instance in instances], dtype=np.int64
        )

    # ------------------------------------------------------------------

    def lower_store(self, store: EquivalenceStore):
        """Both orderings of a view store as compact id arrays.

        Returns ``(fwd_left, fwd_right, fwd_prob, bwd_left, bwd_right,
        bwd_prob)``; the forward triple is in :meth:`EquivalenceStore.items`
        order and the backward one in
        :meth:`EquivalenceStore.backward_items` order, so a worker can
        rebuild a store whose row dicts iterate exactly like the
        original's.  Returns ``None`` when the store mentions a node
        the kernel never interned (no statements) — callers then fall
        back to shipping nothing and using the legacy path.
        """
        nodes1 = self.nodes1
        nodes2 = self.nodes2
        forward = list(store.items())
        backward = list(store.backward_items())
        try:
            fwd_left = np.array([nodes1[l] for l, _r, _p in forward], dtype=np.int64)
            fwd_right = np.array([nodes2[r] for _l, r, _p in forward], dtype=np.int64)
            bwd_left = np.array([nodes1[l] for l, _r, _p in backward], dtype=np.int64)
            bwd_right = np.array([nodes2[r] for _l, r, _p in backward], dtype=np.int64)
        except KeyError:
            return None
        fwd_prob = np.array([p for _l, _r, p in forward], dtype=np.float64)
        bwd_prob = np.array([p for _l, _r, p in backward], dtype=np.float64)
        return fwd_left, fwd_right, fwd_prob, bwd_left, bwd_right, bwd_prob

    def rebuild_store(self, lowered, truncation_threshold: float) -> EquivalenceStore:
        """Worker-side inverse of :meth:`lower_store` (exact row orders)."""
        fwd_left, fwd_right, fwd_prob, bwd_left, bwd_right, bwd_prob = lowered
        table1 = self.table1
        table2 = self.table2
        store = EquivalenceStore(truncation_threshold)
        forward = store._forward
        for left, right, probability in zip(
            fwd_left.tolist(), fwd_right.tolist(), fwd_prob.tolist()
        ):
            forward.setdefault(table1[left], {})[table2[right]] = probability
        backward = store._backward
        for left, right, probability in zip(
            bwd_left.tolist(), bwd_right.tolist(), bwd_prob.tolist()
        ):
            backward.setdefault(table2[right], {})[table1[left]] = probability
        store._count = len(fwd_prob)
        return store

    def task_ranges(self, x_ids, prepared: "PreparedPass", num_tasks: int):
        """Contiguous ``(lo, hi)`` ranges over ``x_ids`` with roughly
        equal projected level-3 work — the pool's instance-task shards.
        Empty ranges are dropped; boundaries fall on instance edges so
        any split preserves the sequential emission order when results
        merge in task order."""
        n = len(x_ids)
        if n == 0:
            return []
        num_tasks = max(1, min(num_tasks, n))
        cost = np.where(x_ids >= 0, prepared.level3_cost[np.maximum(x_ids, 0)], 0)
        cumulative = np.maximum(cost, 1).cumsum()
        total = int(cumulative[-1])
        bounds = [0]
        for k in range(1, num_tasks):
            cut = int(np.searchsorted(cumulative, total * k / num_tasks))
            bounds.append(max(cut, bounds[-1]))
        bounds.append(n)
        return [(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    # ------------------------------------------------------------------

    def prepare_pass(
        self,
        view_store: EquivalenceStore,
        rel12: SubsumptionMatrix[Relation],
        rel21: SubsumptionMatrix[Relation],
    ) -> PreparedPass:
        """Lower one pass's view store + relation matrices to arrays.

        The candidate CSR concatenates the static literal-candidate
        arrays with this pass's store rows (kept in their row dict
        order, so the factor fold visits candidates exactly as
        ``view.equivalents`` yields them).
        """
        n1 = self.n1
        res_counts = np.zeros(n1, dtype=np.int64)
        rows: List[Tuple[int, List[int], List[float]]] = []
        current_left: Optional[Resource] = None
        current_row: Optional[Tuple[int, List[int], List[float]]] = None
        for left, right, probability in view_store.items():
            if left is not current_left:
                current_left = left
                left_id = self.nodes1.get(left)
                current_row = None
                if left_id is not None:
                    current_row = (left_id, [], [])
                    rows.append(current_row)
            if current_row is None:
                continue
            right_id = self.nodes2.get(right)
            if right_id is None:
                continue  # no statements -> the dict path finds nothing
            current_row[1].append(right_id)
            current_row[2].append(probability)
        for left_id, rights, _probs in rows:
            res_counts[left_id] = len(rights)
        res_indptr = np.zeros(n1 + 1, dtype=np.int64)
        np.cumsum(res_counts, out=res_indptr[1:])
        offset = len(self.lit_ids)
        total = offset + int(res_indptr[-1])
        flat_ids = np.empty(total, dtype=np.int64)
        flat_probs = np.empty(total, dtype=np.float64)
        flat_ids[:offset] = self.lit_ids
        flat_probs[:offset] = self.lit_probs
        for left_id, rights, probs in rows:
            start = offset + int(res_indptr[left_id])
            flat_ids[start : start + len(rights)] = rights
            flat_probs[start : start + len(rights)] = probs
        view_starts = np.where(
            self.is_literal1, self.lit_indptr[:-1], offset + res_indptr[:-1]
        )
        view_counts = np.where(self.is_literal1, self.lit_counts, res_counts)

        m12 = self._dense(rel12, self.rel_table1, self.rels2, len(self.rel_table2))
        m21 = self._dense(rel21, self.rel_table2, self.rels1, len(self.rel_table1))

        # Projected level-3 work per left node, for instance chunking:
        # cost(x) = sum over statements (r, y) of sum over candidates y'
        # of |statements(y')|.
        tcounts_flat = self.indptr2[flat_ids + 1] - self.indptr2[flat_ids]
        weight = np.zeros(n1, dtype=np.int64)
        pos, seg = _ragged(view_starts, view_counts)
        if len(pos):
            np.add.at(weight, seg, tcounts_flat[pos])
        cost = np.zeros(n1, dtype=np.int64)
        if len(self.stmt_other1):
            spos, sseg = _ragged(self.indptr1[:-1], self.indptr1[1:] - self.indptr1[:-1])
            np.add.at(cost, sseg, weight[self.stmt_other1[spos]])
        return PreparedPass(view_starts, view_counts, flat_ids, flat_probs, m12, m21, cost)

    @staticmethod
    def _dense(matrix, sub_table, super_index, num_supers):
        dense = np.empty((len(sub_table), num_supers), dtype=np.float64)
        for i, sub in enumerate(sub_table):
            dense[i, :] = matrix.sub_default(sub)
            for sup, score in matrix.supers_of(sub).items():
                j = super_index.get(sup)
                if j is not None:
                    dense[i, j] = score
        return dense

    # ------------------------------------------------------------------

    def score_ids(self, x_ids, prepared: PreparedPass, truncation_threshold: float):
        """Positive-evidence scores for a block of interned instances.

        Returns ``(x_id, x'_id, score)`` arrays with scores ``>=``
        ``truncation_threshold``, in the dict engine's emission order
        (instances in input order, candidates in first-touch order).
        """
        chunks: List[Tuple] = []
        for lo, hi in self._chunk_bounds(x_ids, prepared):
            chunk = self._score_chunk(x_ids[lo:hi], prepared, truncation_threshold)
            if chunk is not None:
                chunks.append(chunk)
        if not chunks:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return (
            np.concatenate([c[0] for c in chunks]),
            np.concatenate([c[1] for c in chunks]),
            np.concatenate([c[2] for c in chunks]),
        )

    def _chunk_bounds(self, x_ids, prepared: PreparedPass):
        """Split a block on instance boundaries by projected level-3 work."""
        if len(x_ids) == 0:
            return []
        cost = np.where(x_ids >= 0, prepared.level3_cost[np.maximum(x_ids, 0)], 0)
        cumulative = np.cumsum(cost)
        total = int(cumulative[-1])
        if total <= CHUNK_BUDGET:
            return [(0, len(x_ids))]
        bounds = [0]
        target = CHUNK_BUDGET
        while target < total:
            cut = int(np.searchsorted(cumulative, target, side="left")) + 1
            if cut <= bounds[-1]:
                cut = bounds[-1] + 1
            if cut >= len(x_ids):
                break
            bounds.append(cut)
            target = int(cumulative[cut - 1]) + CHUNK_BUDGET
        bounds.append(len(x_ids))
        return list(zip(bounds[:-1], bounds[1:]))

    def _score_chunk(self, x_ids, prepared: PreparedPass, truncation_threshold: float):
        ids = x_ids[x_ids >= 0]
        if len(ids) == 0:
            return None
        # level 1: statements r(x, y) of each instance
        pos1, seg1 = _ragged(self.indptr1[ids], self.indptr1[ids + 1] - self.indptr1[ids])
        if len(pos1) == 0:
            return None
        r1 = self.stmt_rel1[pos1]
        y = self.stmt_other1[pos1]
        # level 2: candidates (y', p) of each y
        pos2, seg2 = _ragged(prepared.view_starts[y], prepared.view_counts[y])
        if len(pos2) == 0:
            return None
        y_prime = prepared.flat_ids[pos2]
        prob_y = prepared.flat_probs[pos2]
        r1_2 = r1[seg2]
        slot_2 = seg1[seg2]
        # level 3: statements r'(x', y') of each candidate
        pos3, seg3 = _ragged(
            self.indptr2[y_prime], self.indptr2[y_prime + 1] - self.indptr2[y_prime]
        )
        if len(pos3) == 0:
            return None
        rel2 = self.inv2[self.stmt_rel2[pos3]]
        x_prime = self.stmt_other2[pos3]
        r1_3 = r1_2[seg3]
        p3 = prob_y[seg3]
        slot = slot_2[seg3]
        # the two Eq. 13 factors, with the dict path's > 0 guards
        s21 = prepared.m21[rel2, r1_3]
        s12 = prepared.m12[r1_3, rel2]
        factor = np.where(
            s21 > 0.0, 1.0 - s21 * self.inv_fun1[r1_3] * p3, 1.0
        ) * np.where(s12 > 0.0, 1.0 - s12 * self.inv_fun2[rel2] * p3, 1.0)
        mask = factor < 1.0
        if not mask.any():
            return None
        factor = factor[mask]
        key = slot[mask] * np.int64(self.n2) + x_prime[mask]
        # ordered product fold per (x, x') — stable sort keeps traversal
        # order inside each group, reduceat multiplies left-to-right
        perm = np.argsort(key, kind="stable")
        sorted_key = key[perm]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
        )
        products = np.multiply.reduceat(factor[perm], starts)
        scores = 1.0 - np.maximum(products, _MIN_FACTOR)
        group_keys = sorted_key[starts]
        first_touch = perm[starts]
        emit = first_touch.argsort(kind="stable")
        emit = emit[scores[emit] >= truncation_threshold]
        if len(emit) == 0:
            return None
        emitted_keys = group_keys[emit]
        return ids[emitted_keys // self.n2], emitted_keys % self.n2, scores[emit]

    # ------------------------------------------------------------------

    def entries_for(self, x_out, xp_out, scores):
        """Map compact id arrays back to ``(x, x', score)`` term tuples."""
        table1 = self.table1
        table2 = self.table2
        return [
            (table1[x], table2[xp], score)
            for x, xp, score in zip(x_out.tolist(), xp_out.tolist(), scores.tolist())
        ]

    def score_entries(
        self,
        instances: Sequence[Resource],
        prepared: PreparedPass,
        truncation_threshold: float,
    ) -> List[Tuple[Resource, Resource, float]]:
        """Term-level convenience wrapper over :meth:`score_ids`."""
        return self.entries_for(
            *self.score_ids(self.ids_for(instances), prepared, truncation_threshold)
        )
