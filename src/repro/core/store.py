"""Sparse storage of cross-ontology instance equivalences.

Section 5.2: "our model distinguishes true equivalences
(Pr(x ≡ x') > 0) from false equivalences (Pr(x ≡ x') = 0) and unknown
equivalences [...]  our algorithm does not need to store equivalences
of value 0 at all."  The store therefore keeps only strictly positive
probabilities, truncated at ``θ``, in both directions.

The *maximal assignment* (Section 4.2) maps each instance to the single
equivalent with the highest score; exact ties break deterministically
on the counterpart name, so the assignment never depends on insertion
order (in particular not on the parallel engine's shard-merge order).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..rdf.terms import Resource


class EquivalenceStore:
    """Bidirectional sparse map ``Pr(x ≡ x')`` between two ontologies.

    Parameters
    ----------
    truncation_threshold:
        Probabilities strictly below this are treated as zero and not
        stored (Section 5.2 thresholds at ``θ``).
    """

    def __init__(self, truncation_threshold: float = 0.0) -> None:
        if truncation_threshold < 0 or truncation_threshold >= 1:
            raise ValueError("truncation_threshold must be in [0, 1)")
        self.truncation_threshold = truncation_threshold
        self._forward: Dict[Resource, Dict[Resource, float]] = {}
        self._backward: Dict[Resource, Dict[Resource, float]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def set(self, left: Resource, right: Resource, probability: float) -> None:
        """Record ``Pr(left ≡ right) = probability`` (both directions).

        Values *strictly below* the truncation threshold erase any
        stored entry; a value exactly equal to the threshold is kept
        (the Section 5.2 truncation is ``Pr < θ ⇒ 0``, not ``≤``).
        """
        if probability < 0.0 or probability > 1.0 + 1e-9:
            raise ValueError(f"probability out of range: {probability}")
        probability = min(probability, 1.0)
        if probability < self.truncation_threshold or probability == 0.0:
            self.discard(left, right)
            return
        self._forward.setdefault(left, {})[right] = probability
        self._backward.setdefault(right, {})[left] = probability

    def discard(self, left: Resource, right: Resource) -> None:
        """Remove a stored equivalence if present."""
        row = self._forward.get(left)
        if row and right in row:
            del row[right]
            if not row:
                del self._forward[left]
        row = self._backward.get(right)
        if row and left in row:
            del row[left]
            if not row:
                del self._backward[right]

    def update(self, entries: Iterable[Tuple[Resource, Resource, float]]) -> None:
        """Bulk-:meth:`set` ``(left, right, probability)`` entries in order.

        This is the merge step of the sharded parallel engine
        (:mod:`repro.core.parallel`): shard results are applied in shard
        order, so the stored values — and therefore the maximal
        assignment, whose exact ties additionally break on the
        counterpart name — do not depend on worker scheduling.
        """
        for left, right, probability in entries:
            self.set(left, right, probability)

    def clear(self) -> None:
        """Drop all stored equivalences."""
        self._forward.clear()
        self._backward.clear()

    def clear_left(self, left: Resource) -> None:
        """Drop every stored pair ``(left, ·)`` (both directions).

        This is the row-replacement primitive of the warm-start
        fixpoint: a re-scored instance's row is cleared and refilled,
        while untouched rows keep their previous values.
        """
        row = self._forward.pop(left, None)
        if not row:
            return
        for right in row:
            back = self._backward[right]
            del back[left]
            if not back:
                del self._backward[right]

    def copy(self) -> "EquivalenceStore":
        """An independent copy with the same entries and threshold."""
        duplicate = EquivalenceStore(self.truncation_threshold)
        duplicate._forward = {left: dict(row) for left, row in self._forward.items()}
        duplicate._backward = {right: dict(row) for right, row in self._backward.items()}
        return duplicate

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, left: Resource, right: Resource) -> float:
        """``Pr(left ≡ right)``; 0.0 when unknown (Section 5.2 semantics)."""
        return self._forward.get(left, {}).get(right, 0.0)

    def equals_of(self, left: Resource) -> Mapping[Resource, float]:
        """All ``x'`` with positive ``Pr(left ≡ x')`` (may be empty)."""
        return self._forward.get(left, {})

    def equals_of_right(self, right: Resource) -> Mapping[Resource, float]:
        """All ``x`` with positive ``Pr(x ≡ right)`` (may be empty)."""
        return self._backward.get(right, {})

    def __len__(self) -> int:
        """Number of stored (left, right) pairs."""
        return sum(len(row) for row in self._forward.values())

    def items(self) -> Iterator[Tuple[Resource, Resource, float]]:
        """Iterate all ``(left, right, probability)`` entries."""
        for left, row in self._forward.items():
            for right, probability in row.items():
                yield left, right, probability

    def diff(
        self, other: "EquivalenceStore", tolerance: float = 0.0
    ) -> Iterator[Tuple[Resource, Resource, float, float]]:
        """Pairs whose probability differs by more than ``tolerance``.

        Yields ``(left, right, this_probability, other_probability)``
        over the union of both stores' pairs; absent entries count as
        0.0 (the Section 5.2 semantics), so appearing or disappearing
        pairs are always reported.
        """
        for left, right, probability in self.items():
            other_probability = other.get(left, right)
            if abs(probability - other_probability) > tolerance:
                yield left, right, probability, other_probability
        for left, right, probability in other.items():
            if self.get(left, right) == 0.0 and probability > tolerance:
                yield left, right, 0.0, probability

    def max_difference(self, other: "EquivalenceStore") -> float:
        """Largest absolute probability difference over the pair union.

        0.0 means the two stores are numerically identical — the
        stationarity criterion of warm-start convergence and of
        ``ParisConfig.score_stationarity`` cold runs.
        """
        worst = 0.0
        for _left, _right, probability, other_probability in self.diff(other):
            worst = max(worst, abs(probability - other_probability))
        return worst

    # ------------------------------------------------------------------
    # maximal assignment
    # ------------------------------------------------------------------

    def maximal_assignment(self, reverse: bool = False) -> Dict[Resource, Tuple[Resource, float]]:
        """Best counterpart per instance (Section 4.2).

        Parameters
        ----------
        reverse:
            ``False``: best right-instance for each left-instance.
            ``True``: best left-instance for each right-instance.
        """
        source = self._backward if reverse else self._forward
        assignment: Dict[Resource, Tuple[Resource, float]] = {}
        for entity, row in source.items():
            best: Optional[Tuple[Resource, float]] = None
            for other, probability in row.items():
                # Exact ties break deterministically on the name so the
                # fixpoint cannot oscillate between equally good matches.
                if (
                    best is None
                    or probability > best[1]
                    or (probability == best[1] and other.name < best[0].name)
                ):
                    best = (other, probability)
            if best is not None:
                assignment[entity] = best
        return assignment

    @staticmethod
    def assignment_change(
        old: Mapping[Resource, Tuple[Resource, float]],
        new: Mapping[Resource, Tuple[Resource, float]],
    ) -> float:
        """Fraction of entities whose assigned counterpart changed.

        This is the paper's convergence criterion (Section 6.1: run
        "until less than 1 % of the entities changed their maximal
        assignment").  Entities appearing in either assignment count;
        appearing/disappearing counts as a change.
        """
        keys = set(old) | set(new)
        if not keys:
            return 0.0
        changed = 0
        for key in keys:
            old_match = old.get(key)
            new_match = new.get(key)
            old_target = old_match[0] if old_match else None
            new_target = new_match[0] if new_match else None
            if old_target != new_target:
                changed += 1
        return changed / len(keys)

    def restricted_to_maximal(self) -> "EquivalenceStore":
        """A copy containing only the maximal assignment of each side.

        Section 5.2: "For each computation, our algorithm considers
        only the equalities of the previous maximal assignment and
        ignores all other equalities."  An entry survives if it is the
        best match of its left instance *or* of its right instance, so
        the restricted view stays symmetric.
        """
        restricted = EquivalenceStore(self.truncation_threshold)
        for left, (right, probability) in self.maximal_assignment().items():
            restricted.set(left, right, probability)
        for right, (left, probability) in self.maximal_assignment(reverse=True).items():
            restricted.set(left, right, probability)
        return restricted

    def __repr__(self) -> str:
        return (
            f"EquivalenceStore({len(self)} pairs, "
            f"threshold={self.truncation_threshold})"
        )
