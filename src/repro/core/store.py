"""Sparse storage of cross-ontology instance equivalences.

Section 5.2: "our model distinguishes true equivalences
(Pr(x ≡ x') > 0) from false equivalences (Pr(x ≡ x') = 0) and unknown
equivalences [...]  our algorithm does not need to store equivalences
of value 0 at all."  The store therefore keeps only strictly positive
probabilities, truncated at ``θ``, in both directions.

The *maximal assignment* (Section 4.2) maps each instance to the single
equivalent with the highest score; exact ties break deterministically
on the counterpart name, so the assignment never depends on insertion
order (in particular not on the parallel engine's shard-merge order).

Copy-on-write overlays
----------------------
The warm-start fixpoint (:meth:`repro.core.aligner.ParisAligner.warm_align`)
replaces only the rows of its dirty frontier per pass.  Copying the
whole store to do that costs O(total pairs) per pass — the dominant
cost for multi-million-pair stores absorbing 1 % deltas.
:class:`OverlayStore` is the O(frontier) alternative: a read view over
a frozen base :class:`EquivalenceStore` plus a private dict of
*replaced left rows*.  Invariants:

* the base is never mutated until :meth:`OverlayStore.commit`, so
  concurrent readers of the base (the pass scoring against the frozen
  previous-iteration view) stay consistent;
* a left instance is either *untouched* (all reads fall through to the
  base) or *replaced* (its overlay row is the complete truth — the base
  row for that left is dead, including in the backward direction);
* the backward read (:meth:`OverlayStore.equals_of_right`) merges the
  base's backward row minus replaced lefts with the overlay's backward
  postings, so both directions agree at every point in time;
* :meth:`OverlayStore.commit` folds the replaced rows into the base in
  place — O(touched rows), not O(store) — and returns the base;
* ``pairs_touched`` counts every entry write/clear, the work metric the
  incremental microbenchmark asserts scales with the frontier.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..rdf.terms import Resource


def accepted_probability(probability: float, threshold: float) -> Optional[float]:
    """Range-check and clamp one probability against the Section 5.2
    truncation: values *strictly below* ``threshold`` (and exact zeros)
    erase — ``None`` — while a value exactly at the threshold is kept.
    Shared by the base store and the overlay so both always apply the
    same storing decision."""
    if probability < 0.0 or probability > 1.0 + 1e-9:
        raise ValueError(f"probability out of range: {probability}")
    probability = min(probability, 1.0)
    if probability < threshold or probability == 0.0:
        return None
    return probability


def best_counterpart(row: Mapping[Resource, float]) -> Optional[Tuple[Resource, float]]:
    """Best counterpart of one row (Section 4.2): highest probability,
    exact ties broken deterministically on the counterpart name.  The
    single definition behind :meth:`EquivalenceStore.maximal_assignment`
    and the incremental restricted-view maintenance — they must never
    disagree."""
    best: Optional[Tuple[Resource, float]] = None
    for other, probability in row.items():
        if (
            best is None
            or probability > best[1]
            or (probability == best[1] and other.name < best[0].name)
        ):
            best = (other, probability)
    return best


class EquivalenceStore:
    """Bidirectional sparse map ``Pr(x ≡ x')`` between two ontologies.

    Parameters
    ----------
    truncation_threshold:
        Probabilities strictly below this are treated as zero and not
        stored (Section 5.2 thresholds at ``θ``).
    """

    def __init__(self, truncation_threshold: float = 0.0) -> None:
        if truncation_threshold < 0 or truncation_threshold >= 1:
            raise ValueError("truncation_threshold must be in [0, 1)")
        self.truncation_threshold = truncation_threshold
        self._forward: Dict[Resource, Dict[Resource, float]] = {}
        self._backward: Dict[Resource, Dict[Resource, float]] = {}
        #: Cached pair count, so ``len(store)`` is O(1) on the serving
        #: hot path (every mutation keeps it in sync).
        self._count = 0

    def __setstate__(self, state: dict) -> None:
        # Snapshots pickled before the cached count existed restore
        # without it; recompute instead of breaking len().
        self.__dict__.update(state)
        if "_count" not in state:
            self._count = sum(len(row) for row in self._forward.values())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def set(self, left: Resource, right: Resource, probability: float) -> None:
        """Record ``Pr(left ≡ right) = probability`` (both directions).

        Values *strictly below* the truncation threshold erase any
        stored entry; a value exactly equal to the threshold is kept
        (the Section 5.2 truncation is ``Pr < θ ⇒ 0``, not ``≤``).
        """
        accepted = accepted_probability(probability, self.truncation_threshold)
        if accepted is None:
            self.discard(left, right)
            return
        row = self._forward.setdefault(left, {})
        if right not in row:
            self._count += 1
        row[right] = accepted
        self._backward.setdefault(right, {})[left] = accepted

    def discard(self, left: Resource, right: Resource) -> None:
        """Remove a stored equivalence if present."""
        row = self._forward.get(left)
        if row and right in row:
            del row[right]
            self._count -= 1
            if not row:
                del self._forward[left]
        row = self._backward.get(right)
        if row and left in row:
            del row[left]
            if not row:
                del self._backward[right]

    def update(self, entries: Iterable[Tuple[Resource, Resource, float]]) -> None:
        """Bulk-:meth:`set` ``(left, right, probability)`` entries in order.

        This is the merge step of the sharded parallel engine
        (:mod:`repro.core.parallel`): shard results are applied in shard
        order, so the stored values — and therefore the maximal
        assignment, whose exact ties additionally break on the
        counterpart name — do not depend on worker scheduling.
        """
        for left, right, probability in entries:
            self.set(left, right, probability)

    def clear(self) -> None:
        """Drop all stored equivalences."""
        self._forward.clear()
        self._backward.clear()
        self._count = 0

    def clear_left(self, left: Resource) -> None:
        """Drop every stored pair ``(left, ·)`` (both directions).

        This is the row-replacement primitive of the warm-start
        fixpoint: a re-scored instance's row is cleared and refilled,
        while untouched rows keep their previous values.
        """
        row = self._forward.pop(left, None)
        if not row:
            return
        self._count -= len(row)
        for right in row:
            back = self._backward[right]
            del back[left]
            if not back:
                del self._backward[right]

    def copy(self) -> "EquivalenceStore":
        """An independent copy with the same entries and threshold."""
        duplicate = EquivalenceStore(self.truncation_threshold)
        duplicate._forward = {left: dict(row) for left, row in self._forward.items()}
        duplicate._backward = {right: dict(row) for right, row in self._backward.items()}
        duplicate._count = self._count
        return duplicate

    def overlay(self) -> "OverlayStore":
        """A copy-on-write overlay over this store (see module docstring)."""
        return OverlayStore(self)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, left: Resource, right: Resource) -> float:
        """``Pr(left ≡ right)``; 0.0 when unknown (Section 5.2 semantics)."""
        return self._forward.get(left, {}).get(right, 0.0)

    def equals_of(self, left: Resource) -> Mapping[Resource, float]:
        """All ``x'`` with positive ``Pr(left ≡ x')`` (may be empty)."""
        return self._forward.get(left, {})

    def equals_of_right(self, right: Resource) -> Mapping[Resource, float]:
        """All ``x`` with positive ``Pr(x ≡ right)`` (may be empty)."""
        return self._backward.get(right, {})

    def __len__(self) -> int:
        """Number of stored (left, right) pairs (O(1), cached)."""
        return self._count

    def items(self) -> Iterator[Tuple[Resource, Resource, float]]:
        """Iterate all ``(left, right, probability)`` entries."""
        for left, row in self._forward.items():
            for right, probability in row.items():
                yield left, right, probability

    def backward_items(self) -> Iterator[Tuple[Resource, Resource, float]]:
        """Iterate all entries in *backward* (right-row) dict order.

        The reverse relation/class passes read ``equals_of_right`` rows
        and multiply floats in their iteration order, which is the
        original ``set``-call order — not necessarily the order a
        rebuild from :meth:`items` would produce.  The persistent worker
        pool therefore ships both orderings so a worker-side store can
        fill its forward *and* backward rows exactly as the original.
        """
        for right, row in self._backward.items():
            for left, probability in row.items():
                yield left, right, probability

    def diff(
        self, other: "EquivalenceStore", tolerance: float = 0.0
    ) -> Iterator[Tuple[Resource, Resource, float, float]]:
        """Pairs whose probability differs by more than ``tolerance``.

        Yields ``(left, right, this_probability, other_probability)``
        over the union of both stores' pairs; absent entries count as
        0.0 (the Section 5.2 semantics), so appearing or disappearing
        pairs are always reported.
        """
        for left, right, probability in self.items():
            other_probability = other.get(left, right)
            if abs(probability - other_probability) > tolerance:
                yield left, right, probability, other_probability
        for left, right, probability in other.items():
            if self.get(left, right) == 0.0 and probability > tolerance:
                yield left, right, 0.0, probability

    def max_difference(self, other: "EquivalenceStore") -> float:
        """Largest absolute probability difference over the pair union.

        0.0 means the two stores are numerically identical — the
        stationarity criterion of warm-start convergence and of
        ``ParisConfig.score_stationarity`` cold runs.
        """
        worst = 0.0
        for _left, _right, probability, other_probability in self.diff(other):
            worst = max(worst, abs(probability - other_probability))
        return worst

    # ------------------------------------------------------------------
    # maximal assignment
    # ------------------------------------------------------------------

    def maximal_assignment(self, reverse: bool = False) -> Dict[Resource, Tuple[Resource, float]]:
        """Best counterpart per instance (Section 4.2).

        Parameters
        ----------
        reverse:
            ``False``: best right-instance for each left-instance.
            ``True``: best left-instance for each right-instance.
        """
        source = self._backward if reverse else self._forward
        assignment: Dict[Resource, Tuple[Resource, float]] = {}
        for entity, row in source.items():
            # Exact ties break deterministically on the name so the
            # fixpoint cannot oscillate between equally good matches.
            best = best_counterpart(row)
            if best is not None:
                assignment[entity] = best
        return assignment

    @staticmethod
    def assignment_change(
        old: Mapping[Resource, Tuple[Resource, float]],
        new: Mapping[Resource, Tuple[Resource, float]],
    ) -> float:
        """Fraction of entities whose assigned counterpart changed.

        This is the paper's convergence criterion (Section 6.1: run
        "until less than 1 % of the entities changed their maximal
        assignment").  Entities appearing in either assignment count;
        appearing/disappearing counts as a change.
        """
        keys = set(old) | set(new)
        if not keys:
            return 0.0
        changed = 0
        for key in keys:
            old_match = old.get(key)
            new_match = new.get(key)
            old_target = old_match[0] if old_match else None
            new_target = new_match[0] if new_match else None
            if old_target != new_target:
                changed += 1
        return changed / len(keys)

    def restricted_to_maximal(self) -> "EquivalenceStore":
        """A copy containing only the maximal assignment of each side.

        Section 5.2: "For each computation, our algorithm considers
        only the equalities of the previous maximal assignment and
        ignores all other equalities."  An entry survives if it is the
        best match of its left instance *or* of its right instance, so
        the restricted view stays symmetric.
        """
        restricted = EquivalenceStore(self.truncation_threshold)
        for left, (right, probability) in self.maximal_assignment().items():
            restricted.set(left, right, probability)
        for right, (left, probability) in self.maximal_assignment(reverse=True).items():
            restricted.set(left, right, probability)
        return restricted

    def __repr__(self) -> str:
        return (
            f"EquivalenceStore({len(self)} pairs, "
            f"threshold={self.truncation_threshold})"
        )


class OverlayStore:
    """Copy-on-write view over a frozen :class:`EquivalenceStore`.

    One warm pass's working store: rows of re-scored instances live in
    the overlay, every other read falls through to the (unmutated)
    base.  See the module docstring for the invariants.  The mutation
    surface mirrors the row-replacement subset of the base store
    (``clear_left`` / ``set`` / ``update``); reads mirror the full
    lookup surface the maximal-assignment maintenance needs.
    """

    def __init__(self, base: EquivalenceStore) -> None:
        self.base = base
        #: Replaced forward rows; presence of a key means the base row
        #: for that left is dead, even if the overlay row is empty.
        self._rows: Dict[Resource, Dict[Resource, float]] = {}
        #: Backward postings of the overlay rows only.
        self._backward: Dict[Resource, Dict[Resource, float]] = {}
        #: Entry writes/clears performed through this overlay.
        self.pairs_touched = 0

    @property
    def truncation_threshold(self) -> float:
        return self.base.truncation_threshold

    # -- mutation ------------------------------------------------------

    def _own_row(self, left: Resource) -> Dict[Resource, float]:
        row = self._rows.get(left)
        if row is None:
            row = dict(self.base.equals_of(left))
            self._rows[left] = row
            for right, probability in row.items():
                self._backward.setdefault(right, {})[left] = probability
        return row

    def clear_left(self, left: Resource) -> None:
        """Row-replacement primitive: kill every pair ``(left, ·)``."""
        row = self._rows.get(left)
        if row is None:
            row = self.base.equals_of(left)
        self._rows[left] = {}
        for right in row:
            back = self._backward.get(right)
            if back is not None:
                back.pop(left, None)
        self.pairs_touched += len(row)

    def set(self, left: Resource, right: Resource, probability: float) -> None:
        accepted = accepted_probability(probability, self.truncation_threshold)
        row = self._own_row(left)
        self.pairs_touched += 1
        if accepted is None:
            if row.pop(right, None) is not None:
                back = self._backward.get(right)
                if back is not None:
                    back.pop(left, None)
            return
        row[right] = accepted
        self._backward.setdefault(right, {})[left] = accepted

    def update(self, entries: Iterable[Tuple[Resource, Resource, float]]) -> None:
        for left, right, probability in entries:
            self.set(left, right, probability)

    # -- lookup --------------------------------------------------------

    def get(self, left: Resource, right: Resource) -> float:
        row = self._rows.get(left)
        if row is not None:
            return row.get(right, 0.0)
        return self.base.get(left, right)

    def equals_of(self, left: Resource) -> Mapping[Resource, float]:
        row = self._rows.get(left)
        if row is not None:
            return row
        return self.base.equals_of(left)

    def equals_of_right(self, right: Resource) -> Mapping[Resource, float]:
        """Merged backward row: base entries of untouched lefts plus
        the overlay's postings (allocates O(row), never O(store))."""
        merged = {
            left: probability
            for left, probability in self.base.equals_of_right(right).items()
            if left not in self._rows
        }
        merged.update(self._backward.get(right, {}))
        return merged

    @property
    def touched_lefts(self) -> Iterable[Resource]:
        """Lefts whose rows were replaced through this overlay."""
        return self._rows.keys()

    def row_changes(self) -> Iterator[Tuple[Resource, Resource, float, float]]:
        """``(left, right, old, new)`` over touched rows where old ≠ new."""
        for left, new_row in self._rows.items():
            old_row = self.base.equals_of(left)
            for right in old_row.keys() | new_row.keys():
                old = old_row.get(right, 0.0)
                new = new_row.get(right, 0.0)
                if old != new:
                    yield left, right, old, new

    # -- commit --------------------------------------------------------

    def commit(self) -> EquivalenceStore:
        """Fold the replaced rows into the base, in place, and return it.

        O(touched rows).  After the commit the overlay is spent: its
        rows are re-pointed at the base's, so further mutation must go
        through a fresh overlay.
        """
        base = self.base
        for left, row in self._rows.items():
            base.clear_left(left)
            if not row:
                continue
            # Overlay entries went through the shared storing decision
            # already, so they install directly (count included).
            base._forward.setdefault(left, {}).update(row)
            for right, probability in row.items():
                base._backward.setdefault(right, {})[left] = probability
            base._count += len(row)
        self._rows = {}
        self._backward = {}
        return base

    def __repr__(self) -> str:
        return (
            f"OverlayStore({len(self._rows)} touched rows over "
            f"{self.base!r})"
        )
