"""Blocking index over one ontology's literals.

Literal equivalence probabilities are clamped (Section 5.3), so for a
literal ``y`` of one ontology the set ``{y' : Pr(y ≡ y') > 0}`` in the
other ontology is fixed for the whole run.  This index materializes the
lookup: literals are bucketed by the similarity measure's blocking keys
(see :meth:`repro.literals.base.LiteralSimilarity.keys`), and candidate
sets are memoized because the same literal (a common city name, a
popular release year) is queried many times per iteration.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..literals.base import LiteralSimilarity
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal


class LiteralIndex:
    """Candidate lookup ``literal → {(other_literal, similarity)}``.

    Parameters
    ----------
    ontology:
        The ontology whose literals are indexed (the *target* side of
        lookups).
    similarity:
        The clamped literal-similarity measure.
    """

    def __init__(self, ontology: Ontology, similarity: LiteralSimilarity) -> None:
        self.similarity = similarity
        self._buckets: Dict[str, Set[Literal]] = {}
        for literal in ontology.literals:
            for key in similarity.keys(literal):
                self._buckets.setdefault(key, set()).add(literal)
        self._memo: Dict[Literal, Tuple[Tuple[Literal, float], ...]] = {}

    def candidates(self, literal: Literal) -> Tuple[Tuple[Literal, float], ...]:
        """All indexed literals with positive similarity to ``literal``.

        Results are memoized per query literal.
        """
        cached = self._memo.get(literal)
        if cached is not None:
            return cached
        seen: Set[Literal] = set()
        result: List[Tuple[Literal, float]] = []
        for key in self.similarity.keys(literal):
            for candidate in self._buckets.get(key, ()):
                if candidate in seen:
                    continue
                seen.add(candidate)
                score = self.similarity.similarity(literal, candidate)
                if score > 0.0:
                    result.append((candidate, score))
        frozen = tuple(result)
        self._memo[literal] = frozen
        return frozen

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:
        return f"LiteralIndex({len(self._buckets)} buckets, sim={self.similarity.name})"
