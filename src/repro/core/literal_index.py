"""Blocking index over one ontology's literals.

Literal equivalence probabilities are clamped (Section 5.3), so for a
literal ``y`` of one ontology the set ``{y' : Pr(y ≡ y') > 0}`` in the
other ontology is fixed for the whole run.  This index materializes the
lookup: literals are bucketed by the similarity measure's blocking keys
(see :meth:`repro.literals.base.LiteralSimilarity.keys`), and candidate
sets are memoized because the same literal (a common city name, a
popular release year) is queried many times per iteration.

"Fixed for the whole run" stops being true once deltas arrive
(:mod:`repro.service`): :meth:`LiteralIndex.add` / :meth:`discard`
update the postings in place and report which *query* literals saw
their candidate sets change, which is what the warm-start fixpoint
needs to dirty the right instances.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..literals.base import LiteralSimilarity
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal


class LiteralIndex:
    """Candidate lookup ``literal → {(other_literal, similarity)}``.

    Parameters
    ----------
    ontology:
        The ontology whose literals are indexed (the *target* side of
        lookups).
    similarity:
        The clamped literal-similarity measure.
    """

    def __init__(self, ontology: Ontology, similarity: LiteralSimilarity) -> None:
        self.similarity = similarity
        self._buckets: Dict[str, Set[Literal]] = {}
        for literal in ontology.literals:
            for key in similarity.keys(literal):
                self._buckets.setdefault(key, set()).add(literal)
        self._memo: Dict[Literal, Tuple[Tuple[Literal, float], ...]] = {}

    def candidates(self, literal: Literal) -> Tuple[Tuple[Literal, float], ...]:
        """All indexed literals with positive similarity to ``literal``.

        Results are memoized per query literal.
        """
        cached = self._memo.get(literal)
        if cached is not None:
            return cached
        seen: Set[Literal] = set()
        result: List[Tuple[Literal, float]] = []
        for key in self.similarity.keys(literal):
            for candidate in self._buckets.get(key, ()):
                if candidate in seen:
                    continue
                seen.add(candidate)
                score = self.similarity.similarity(literal, candidate)
                if score > 0.0:
                    result.append((candidate, score))
        frozen = tuple(result)
        self._memo[literal] = frozen
        return frozen

    def add(self, literal: Literal) -> bool:
        """Index a newly seen literal (delta ingestion).

        The memo is dropped wholesale: any memoized query sharing a
        blocking key with ``literal`` would be stale, and re-memoizing
        is cheap relative to a warm pass.
        """
        added = False
        for key in self.similarity.keys(literal):
            bucket = self._buckets.setdefault(key, set())
            if literal not in bucket:
                bucket.add(literal)
                added = True
        if added:
            self._memo.clear()
        return added

    def discard(self, literal: Literal) -> bool:
        """Drop a literal that left the ontology (delta ingestion)."""
        removed = False
        for key in self.similarity.keys(literal):
            bucket = self._buckets.get(key)
            if bucket and literal in bucket:
                bucket.remove(literal)
                if not bucket:
                    del self._buckets[key]
                removed = True
        if removed:
            self._memo.clear()
        return removed

    def bucket_members(self, key: str) -> Set[Literal]:
        """Indexed literals under one blocking key (empty set if none).

        The service uses this on the *opposite* side's index to find
        which query literals a changed literal can affect: two literals
        interact only if their key sets intersect.
        """
        return self._buckets.get(key, set())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:
        return f"LiteralIndex({len(self._buckets)} buckets, sim={self.similarity.name})"
