"""Alignment diagnostics: match explanations and error forensics.

These tools automate the manual analyses of Section 6 of the paper —
"why did PARIS match these two?" (:func:`explain_match`) and "what do
the remaining errors look like?" (:func:`classify_errors`).
"""

from .convergence import (
    ConvergencePoint,
    convergence_series,
    detect_oscillation,
    render_convergence,
)
from .errors import (
    ErrorCase,
    ErrorReport,
    FalseNegativeKind,
    FalsePositiveKind,
    classify_errors,
)
from .explanation import (
    EvidenceItem,
    MatchExplanation,
    explain_match,
    render_explanation,
)

__all__ = [
    "ConvergencePoint",
    "convergence_series",
    "detect_oscillation",
    "render_convergence",
    "explain_match",
    "render_explanation",
    "MatchExplanation",
    "EvidenceItem",
    "classify_errors",
    "ErrorReport",
    "ErrorCase",
    "FalsePositiveKind",
    "FalseNegativeKind",
]
