"""Convergence diagnostics for alignment runs.

The paper notes (Section 5.1) that no theoretical convergence condition
is known for the Eq. 12/13 iteration; in practice the maximal
assignments settle after a few iterations, sometimes into a short
cycle.  :func:`convergence_series` extracts the per-iteration signals
from a result's snapshots, and :func:`detect_oscillation` finds the
entities trapped in assignment cycles — the candidates the paper's
suggested dampening factor would freeze.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.result import AlignmentResult
from ..rdf.terms import Resource


@dataclass(frozen=True)
class ConvergencePoint:
    """One iteration's convergence signals."""

    iteration: int
    change_fraction: Optional[float]
    num_equivalences: int
    #: Total probability mass of the maximal assignment (rises while
    #: scores are still hardening even when targets are stable).
    assignment_mass: float
    duration_seconds: float


def convergence_series(result: AlignmentResult) -> List[ConvergencePoint]:
    """Extract per-iteration convergence signals from the snapshots."""
    points = []
    for snapshot in result.iterations:
        mass = sum(probability for _t, probability in snapshot.assignment12.values())
        points.append(
            ConvergencePoint(
                iteration=snapshot.index,
                change_fraction=snapshot.change_fraction,
                num_equivalences=snapshot.num_equivalences,
                assignment_mass=mass,
                duration_seconds=snapshot.duration_seconds,
            )
        )
    return points


def detect_oscillation(result: AlignmentResult) -> Dict[Resource, List[Optional[str]]]:
    """Entities whose maximal assignment flips between the last
    iterations.

    Returns a map from each oscillating left-instance to its assignment
    trajectory (counterpart names, ``None`` for unassigned) over the
    recorded iterations.  Empty when the run settled.
    """
    if len(result.iterations) < 3:
        return {}
    # Reconstruct each snapshot's assignment once up front: the
    # ``assignment12`` property replays the snapshot's delta chain per
    # access, so reading it inside the per-entity loop would be
    # quadratic in the number of matched instances.
    assignments = [snapshot.assignment12 for snapshot in result.iterations]
    last, previous, before = assignments[-1], assignments[-2], assignments[-3]
    oscillating: Dict[Resource, List[Optional[str]]] = {}
    for entity in set(last) | set(previous) | set(before):
        trajectory = [assignment.get(entity) for assignment in assignments]
        names = [entry[0].name if entry else None for entry in trajectory]
        last_name, prev_name, before_name = names[-1], names[-2], names[-3]
        # a 2-cycle: A, B, A with A != B
        if last_name == before_name and last_name != prev_name:
            oscillating[entity] = names
    return oscillating


def render_convergence(points: List[ConvergencePoint]) -> str:
    """Text table of the convergence series."""
    from ..evaluation.report import render_table

    rows = []
    for point in points:
        rows.append([
            point.iteration,
            "-" if point.change_fraction is None
            else f"{point.change_fraction:.1%}",
            point.num_equivalences,
            f"{point.assignment_mass:.1f}",
            f"{point.duration_seconds:.2f}s",
        ])
    return render_table(
        ["iter", "change", "#equiv", "assignment mass", "time"], rows
    )
