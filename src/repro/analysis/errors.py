"""Error forensics for alignments against a gold standard.

Section 6.4 of the paper analyses its remaining errors by hand and
finds three patterns: (1) gold-standard / source errors, (2) *near
duplicates* — "instances that were not equivalent, but very closely
related" (the feature version of a TV series, with the same cast and
crew), and (3) *label noise* that "the very naive string comparison"
cannot bridge ("Sugata Sanshirô" vs "Sanshiro Sugata").

:func:`classify_errors` automates that analysis:

* false positives become ``NEAR_DUPLICATE`` (the wrong match shares a
  large fraction of the gold counterpart's neighbourhood),
  ``HOMONYM`` (shares a literal value with the gold counterpart, e.g. a
  name) or ``OTHER``;
* false negatives become ``NO_SHARED_LITERAL`` (nothing the literal
  measure accepts — label noise or dropped facts), ``LOST_TO_RIVAL``
  (some other instance scored higher) or ``BELOW_THRESHOLD``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.result import AlignmentResult
from ..evaluation.gold import GoldStandard
from ..literals.base import LiteralSimilarity
from ..literals.identity import IdentitySimilarity
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Resource


class FalsePositiveKind(enum.Enum):
    """Why a produced match is wrong."""

    #: The wrong counterpart shares most of the gold counterpart's
    #: neighbourhood — the paper's "very closely related" instances.
    NEAR_DUPLICATE = "near-duplicate"
    #: The wrong counterpart shares a literal value with the left
    #: instance (same name / title) but little structure.
    HOMONYM = "homonym"
    #: Anything else.
    OTHER = "other"


class FalseNegativeKind(enum.Enum):
    """Why a gold pair was missed."""

    #: The pair shares no literal the similarity accepts — the aligner
    #: never saw first-iteration evidence (label noise, dropped facts).
    NO_SHARED_LITERAL = "no-shared-literal"
    #: The left instance was matched, but to something else.
    LOST_TO_RIVAL = "lost-to-rival"
    #: The pair had a positive score but no assignment survived
    #: truncation.
    BELOW_THRESHOLD = "below-threshold"


@dataclass
class ErrorCase:
    """One classified error with its participants."""

    left: Resource
    produced: Optional[Resource]
    expected: Optional[Resource]
    kind: object
    detail: str = ""


@dataclass
class ErrorReport:
    """Classified false positives and false negatives."""

    false_positives: List[ErrorCase] = field(default_factory=list)
    false_negatives: List[ErrorCase] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """Error-kind histogram."""
        histogram: Dict[str, int] = {}
        for case in self.false_positives + self.false_negatives:
            key = case.kind.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def summary(self) -> str:
        """One-line-per-kind text summary."""
        lines = [
            f"false positives: {len(self.false_positives)}, "
            f"false negatives: {len(self.false_negatives)}"
        ]
        for kind, count in sorted(self.counts().items()):
            lines.append(f"  {kind}: {count}")
        return "\n".join(lines)


def _literal_values(ontology: Ontology, instance: Resource) -> Set[str]:
    values = set()
    for _relation, obj in ontology.statements_about(instance):
        if isinstance(obj, Literal):
            values.add(obj.value)
    return values


def _resource_neighbours(ontology: Ontology, instance: Resource) -> Set[Resource]:
    neighbours = set()
    for _relation, obj in ontology.statements_about(instance):
        if isinstance(obj, Resource):
            neighbours.add(obj)
    return neighbours


def _shares_accepted_literal(
    ontology1: Ontology,
    ontology2: Ontology,
    left: Resource,
    right: Resource,
    similarity: LiteralSimilarity,
) -> bool:
    left_values = _literal_values(ontology1, left)
    right_values = _literal_values(ontology2, right)
    for left_value in left_values:
        for right_value in right_values:
            if similarity.similarity(Literal(left_value), Literal(right_value)) > 0:
                return True
    return False


def classify_errors(
    ontology1: Ontology,
    ontology2: Ontology,
    result: AlignmentResult,
    gold: GoldStandard,
    similarity: Optional[LiteralSimilarity] = None,
    near_duplicate_overlap: float = 0.5,
) -> ErrorReport:
    """Classify every instance-alignment error against the gold standard.

    Parameters
    ----------
    near_duplicate_overlap:
        Minimum Jaccard overlap between the wrong counterpart's and the
        gold counterpart's resource neighbourhoods for the error to
        count as a near duplicate.
    """
    similarity = similarity or IdentitySimilarity()
    right_instances = {r.name: r for r in ontology2.instances}
    left_instances = {l.name: l for l in ontology1.instances}
    gold_by_left: Dict[str, str] = {}
    for left_name, right_name in gold.instance_pairs:
        gold_by_left[left_name] = right_name

    report = ErrorReport()
    for left_name, expected_name in gold_by_left.items():
        left = left_instances.get(left_name)
        if left is None:
            continue
        expected = right_instances.get(expected_name)
        produced_entry = result.assignment12.get(left)
        produced = produced_entry[0] if produced_entry else None
        if produced is not None and produced.name == expected_name:
            continue  # correct
        # ---- false positive side (a wrong assignment was produced)
        if produced is not None:
            kind: FalsePositiveKind
            detail = ""
            if expected is not None:
                produced_neighbours = _resource_neighbours(ontology2, produced)
                expected_neighbours = _resource_neighbours(ontology2, expected)
                union = produced_neighbours | expected_neighbours
                overlap = (
                    len(produced_neighbours & expected_neighbours) / len(union)
                    if union
                    else 0.0
                )
            else:
                overlap = 0.0
            if overlap >= near_duplicate_overlap:
                kind = FalsePositiveKind.NEAR_DUPLICATE
                detail = f"neighbour overlap {overlap:.2f}"
            elif _shares_accepted_literal(ontology1, ontology2, left, produced, similarity):
                kind = FalsePositiveKind.HOMONYM
                detail = "shares a literal value"
            else:
                kind = FalsePositiveKind.OTHER
            report.false_positives.append(
                ErrorCase(left=left, produced=produced, expected=expected,
                          kind=kind, detail=detail)
            )
        # ---- false negative side (the gold pair was not produced)
        if expected is None:
            continue
        if produced is not None:
            kind_fn = FalseNegativeKind.LOST_TO_RIVAL
            detail = f"matched {produced} instead"
        elif not _shares_accepted_literal(ontology1, ontology2, left, expected, similarity):
            kind_fn = FalseNegativeKind.NO_SHARED_LITERAL
            detail = "no literal evidence the similarity accepts"
        else:
            kind_fn = FalseNegativeKind.BELOW_THRESHOLD
            detail = "evidence existed but no assignment survived"
        report.false_negatives.append(
            ErrorCase(left=left, produced=produced, expected=expected,
                      kind=kind_fn, detail=detail)
        )
    return report
