"""Evidence breakdown for instance matches.

The probability ``Pr(x ≡ x')`` of Eq. 13 is a noisy-or over statement
pairs; this module re-derives the individual factors so a user can ask
*why* PARIS matched (or scored) two instances:

>>> explanation = explain_match(onto1, onto2, result, x, x_prime)
>>> print(render_explanation(explanation))          # doctest: +SKIP

Each :class:`EvidenceItem` is one statement pair ``r(x, y)`` /
``r'(x', y')`` with the quantities that enter its factor: the
equivalence ``Pr(y ≡ y')``, the inverse functionalities, and the two
relation-inclusion scores.  The items multiply back (up to the clamping
of extreme values) to the reported probability, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import ParisConfig
from ..core.functionality import FunctionalityOracle
from ..core.literal_index import LiteralIndex
from ..core.result import AlignmentResult
from ..core.view import EquivalenceView
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Node, Relation, Resource


@dataclass(frozen=True)
class EvidenceItem:
    """One statement pair supporting ``x ≡ x'`` (Eq. 13 factor)."""

    #: Relation of the left statement ``r(x, y)``.
    relation1: Relation
    #: The shared neighbour on the left side.
    y: Node
    #: Relation of the right statement ``r'(x', y')``.
    relation2: Relation
    #: The shared neighbour on the right side.
    y_prime: Node
    #: ``Pr(y ≡ y')`` — clamped literal similarity or stored equivalence.
    prob_y: float
    #: ``fun⁻¹(r)`` in the left ontology.
    inverse_fun1: float
    #: ``fun⁻¹(r')`` in the right ontology.
    inverse_fun2: float
    #: ``Pr(r' ⊆ r)`` and ``Pr(r ⊆ r')`` from the final matrices.
    score21: float
    score12: float

    @property
    def factor(self) -> float:
        """The Eq. 13 survival factor of this statement pair."""
        factor = 1.0
        if self.score21 > 0.0:
            factor *= 1.0 - self.score21 * self.inverse_fun1 * self.prob_y
        if self.score12 > 0.0:
            factor *= 1.0 - self.score12 * self.inverse_fun2 * self.prob_y
        return factor

    @property
    def strength(self) -> float:
        """1 − factor: this pair's standalone contribution."""
        return 1.0 - self.factor


@dataclass
class MatchExplanation:
    """All evidence for one candidate pair plus the combined score."""

    left: Resource
    right: Resource
    #: Probability stored in the result (0.0 if below threshold).
    reported_probability: float
    #: Probability recombined from the evidence items.
    recombined_probability: float
    items: List[EvidenceItem]

    def top_items(self, limit: int = 5) -> List[EvidenceItem]:
        """Strongest evidence first."""
        return sorted(self.items, key=lambda item: -item.strength)[:limit]


def explain_match(
    ontology1: Ontology,
    ontology2: Ontology,
    result: AlignmentResult,
    left: Resource,
    right: Resource,
    config: Optional[ParisConfig] = None,
) -> MatchExplanation:
    """Re-derive the Eq. 13 evidence for ``left ≡ right``.

    Uses the final state of ``result`` (instance equivalences and
    relation matrices), so the recombined probability corresponds to
    one more half-iteration from the converged state — close to the
    reported score unless the run was stopped far from the fixpoint.
    """
    config = config or ParisConfig()
    fun1 = FunctionalityOracle(ontology1, config.functionality)
    fun2 = FunctionalityOracle(ontology2, config.functionality)
    similarity = config.literal_similarity
    view = EquivalenceView(
        result.instances,
        LiteralIndex(ontology2, similarity),
        LiteralIndex(ontology1, similarity),
    )
    items: List[EvidenceItem] = []
    for relation1, y in ontology1.statements_about(left):
        for y_prime, prob_y in view.equivalents(y):
            for relation2_inverse, x_prime in ontology2.statements_about(y_prime):
                if x_prime != right:
                    continue
                relation2 = relation2_inverse.inverse
                score21 = result.relations21.get(relation2, relation1)
                score12 = result.relations12.get(relation1, relation2)
                if score21 <= 0.0 and score12 <= 0.0:
                    continue
                items.append(
                    EvidenceItem(
                        relation1=relation1,
                        y=y,
                        relation2=relation2,
                        y_prime=y_prime,
                        prob_y=prob_y,
                        inverse_fun1=fun1.inverse_fun(relation1),
                        inverse_fun2=fun2.inverse_fun(relation2),
                        score21=score21,
                        score12=score12,
                    )
                )
    product = 1.0
    for item in items:
        product *= item.factor
    return MatchExplanation(
        left=left,
        right=right,
        reported_probability=result.instances.get(left, right),
        recombined_probability=1.0 - product,
        items=items,
    )


def render_explanation(explanation: MatchExplanation, limit: int = 8) -> str:
    """Human-readable rendering of a match explanation."""
    lines = [
        f"{explanation.left} ≡ {explanation.right}",
        f"  reported probability:   {explanation.reported_probability:.4f}",
        f"  recombined from items:  {explanation.recombined_probability:.4f}",
        f"  evidence items: {len(explanation.items)}",
    ]
    for item in explanation.top_items(limit):
        y_text = f'"{item.y}"' if isinstance(item.y, Literal) else str(item.y)
        y_prime_text = (
            f'"{item.y_prime}"' if isinstance(item.y_prime, Literal) else str(item.y_prime)
        )
        lines.append(
            f"    [{item.strength:.3f}] {item.relation1}({explanation.left}, {y_text})"
            f"  ~  {item.relation2}({explanation.right}, {y_prime_text})"
            f"  Pr(y≡y')={item.prob_y:.2f}"
            f" fun⁻¹={item.inverse_fun1:.2f}/{item.inverse_fun2:.2f}"
            f" rel={item.score21:.2f}/{item.score12:.2f}"
        )
    return "\n".join(lines)
