"""Evaluation substrate: gold standards, metrics, and table renderers.

The generators in :mod:`repro.datasets` emit exact
:class:`GoldStandard` objects; the metrics reproduce the paper's
protocol (Section 6.1) and the renderers its table layouts.
"""

from .figures import ascii_chart, figure1_chart, figure2_chart
from .gold import GoldStandard
from .metrics import (
    PRF,
    ThresholdPoint,
    class_threshold_sweep,
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
)
from .report import (
    Table1Row,
    render_iteration_table,
    render_relation_alignments,
    render_table,
    render_table1,
    render_threshold_sweep,
)

__all__ = [
    "GoldStandard",
    "ascii_chart",
    "figure1_chart",
    "figure2_chart",
    "PRF",
    "ThresholdPoint",
    "evaluate_instances",
    "evaluate_relations",
    "evaluate_classes",
    "class_threshold_sweep",
    "Table1Row",
    "render_table",
    "render_table1",
    "render_iteration_table",
    "render_relation_alignments",
    "render_threshold_sweep",
]
