"""Text rendering of the paper's figures.

Figures 1 and 2 are line charts (precision / class count vs score
threshold).  :func:`ascii_chart` renders such a series as a terminal
chart so bench artifacts show the curve's shape at a glance::

    1.000 |                    *   *   *
    0.959 |        *   *   *
          |    *
    0.846 |*
          +-----------------------------
           0.1                       0.9
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def ascii_chart(
    points: Sequence[Tuple[float, float]],
    height: int = 10,
    label: str = "",
) -> str:
    """Render ``(x, y)`` points as a fixed-height ASCII chart.

    Points are placed column by column in input order; the y-axis is
    scaled to the data range (flat series render as a single row).
    """
    if not points:
        return "(no data)"
    ys = [y for _x, y in points]
    y_min, y_max = min(ys), max(ys)
    span = y_max - y_min
    rows: List[List[str]] = [
        [" "] * (4 * len(points)) for _ in range(height)
    ]
    for column, (_x, y) in enumerate(points):
        if span == 0:
            row = height - 1
        else:
            row = int(round((y_max - y) / span * (height - 1)))
        rows[row][4 * column + 1] = "*"
    lines = []
    if label:
        lines.append(label)
    for index, row in enumerate(rows):
        if span == 0:
            axis_value = y_max
        else:
            axis_value = y_max - span * index / (height - 1)
        lines.append(f"{axis_value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * (4 * len(points)))
    x_labels = " " * 10
    for column, (x, _y) in enumerate(points):
        text = f"{x:g}"
        x_labels += text.ljust(4)[:4]
    lines.append(x_labels)
    return "\n".join(lines)


def figure1_chart(points) -> str:
    """Figure-1 style chart: precision vs threshold."""
    return ascii_chart(
        [(p.threshold, p.precision) for p in points],
        label="Precision of class alignment vs probability threshold",
    )


def figure2_chart(points) -> str:
    """Figure-2 style chart: matched-class count vs threshold."""
    return ascii_chart(
        [(p.threshold, float(p.num_classes)) for p in points],
        label="Number of classes with an assignment above the threshold",
    )
