"""Gold standards for alignment evaluation.

The paper evaluates three kinds of output (Section 6.1):

* **instance equalities** against a gold list of equivalent pairs
  (OAEI gold standard; shared Wikipedia identifiers for YAGO/DBpedia;
  the YAGO→IMDb mapping for the movie experiment),
* **relation alignments** by manual inspection in both directions,
* **class alignments** by manual inspection of sampled assignments.

Our dataset generators *know* the hidden world both ontologies were
derived from, so all three gold standards are exact rather than
sampled: instance pairs by construction, relation pairs from the
generator's projection tables (closed under inversion), and class
inclusions from world-level class extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..rdf.terms import Relation, Resource


def _invert_name(name: str) -> str:
    """``r`` ↔ ``r^-1`` on relation name strings."""
    suffix = Relation.INVERSE_SUFFIX
    if name.endswith(suffix):
        return name[: -len(suffix)]
    return name + suffix


@dataclass
class GoldStandard:
    """Ground truth for one benchmark pair.

    All members use plain string names (resource names, relation names
    with an optional ``^-1`` suffix) so gold files can be serialized
    and diffed easily.
    """

    #: Equivalent instance pairs ``(left_name, right_name)``.
    instance_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    #: Correct relation correspondences ``(left_name, right_name)``,
    #: read as "left relation matches right relation".  Closed under
    #: inversion at query time: ``(r, r')`` validates ``(r⁻, r'⁻)`` too.
    relation_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    #: Correct class inclusions left-class ⊆ right-class.
    class_inclusions_12: Set[Tuple[str, str]] = field(default_factory=set)
    #: Correct class inclusions right-class ⊆ left-class.
    class_inclusions_21: Set[Tuple[str, str]] = field(default_factory=set)

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def has_instance_pair(self, left: Resource, right: Resource) -> bool:
        """Whether ``left ≡ right`` is in the gold standard."""
        return (left.name, right.name) in self.instance_pairs

    @property
    def num_instances(self) -> int:
        """Size of the instance gold standard (the "Gold" column of Table 1)."""
        return len(self.instance_pairs)

    def right_of(self, left: Resource) -> Set[str]:
        """Gold counterparts of a left instance (normally 0 or 1)."""
        return {r for l, r in self.instance_pairs if l == left.name}

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------

    def has_relation_pair(self, left: Relation, right: Relation) -> bool:
        """Whether the relation correspondence is correct.

        The pair is validated up to consistent inversion: if the gold
        standard lists ``(actedIn, starring^-1)`` then
        ``(actedIn^-1, starring)`` is equally correct.
        """
        left_name, right_name = str(left), str(right)
        if (left_name, right_name) in self.relation_pairs:
            return True
        return (_invert_name(left_name), _invert_name(right_name)) in self.relation_pairs

    @property
    def num_relations(self) -> int:
        """Number of gold relation correspondences, counting both
        directions of each underlying pair (Table 1 accumulates
        "classes and relations for both directions")."""
        closed = set(self.relation_pairs)
        closed |= {( _invert_name(l), _invert_name(r)) for l, r in self.relation_pairs}
        return len(closed)

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------

    def has_class_inclusion(
        self, sub: Resource, sup: Resource, reverse: bool = False
    ) -> bool:
        """Whether ``sub ⊆ sup`` is correct (left ⊆ right unless reversed)."""
        inclusions = self.class_inclusions_21 if reverse else self.class_inclusions_12
        return (sub.name, sup.name) in inclusions

    @property
    def num_class_equivalences(self) -> int:
        """Number of class pairs that are mutual inclusions (equivalent
        classes, the "Gold" class column of Table 1)."""
        reversed_21 = {(sup, sub) for sub, sup in self.class_inclusions_21}
        return len(self.class_inclusions_12 & reversed_21)

    # ------------------------------------------------------------------
    # construction helpers for generators
    # ------------------------------------------------------------------

    def add_instances(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Add instance pairs."""
        self.instance_pairs.update(pairs)

    def add_relations(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Add relation correspondences."""
        self.relation_pairs.update(pairs)

    @staticmethod
    def class_inclusions_from_extents(
        left_extents: Dict[str, FrozenSet[str]],
        right_extents: Dict[str, FrozenSet[str]],
    ) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str]]]:
        """Derive gold class inclusions from world-level class extents.

        ``c ⊆ c'`` is correct iff every world entity in ``c``'s extent
        also lies in ``c'``'s extent (and ``c`` is non-empty).  Both
        directions are returned.
        """
        inclusions_12: Set[Tuple[str, str]] = set()
        inclusions_21: Set[Tuple[str, str]] = set()
        for left_class, left_extent in left_extents.items():
            if not left_extent:
                continue
            for right_class, right_extent in right_extents.items():
                if left_extent <= right_extent:
                    inclusions_12.add((left_class, right_class))
        for right_class, right_extent in right_extents.items():
            if not right_extent:
                continue
            for left_class, left_extent in left_extents.items():
                if right_extent <= left_extent:
                    inclusions_21.add((right_class, left_class))
        return inclusions_12, inclusions_21
