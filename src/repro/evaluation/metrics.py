"""Precision / recall / F-measure over alignments (Section 6.1).

The paper's protocol:

* **Instances** — "we considered only the assignment with the maximal
  score", compared against the gold standard.  Precision is computed
  over produced assignments whose left entity occurs in the gold
  standard (supporting entities like addresses are aligned but not
  evaluated); recall over all gold pairs.
* **Relations** — manual evaluation of the maximally assigned relation,
  in each direction separately.  Our generators give exact gold, so
  "manual" becomes exact.
* **Classes** — manual evaluation of sampled assignments above a score
  threshold; Figures 1 and 2 sweep that threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.matrix import SubsumptionMatrix
from ..core.result import Assignment
from ..rdf.terms import Relation, Resource
from .gold import GoldStandard


@dataclass(frozen=True)
class PRF:
    """Precision, recall and F-measure with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """``tp / (tp + fp)``; 1.0 when nothing was produced."""
        produced = self.true_positives + self.false_positives
        return self.true_positives / produced if produced else 1.0

    @property
    def recall(self) -> float:
        """``tp / (tp + fn)``; 1.0 when the gold standard is empty."""
        expected = self.true_positives + self.false_negatives
        return self.true_positives / expected if expected else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        total = self.precision + self.recall
        return 2 * self.precision * self.recall / total if total else 0.0

    def as_percentages(self) -> str:
        """Render like the paper's tables: ``95% 88% 91%``."""
        return (
            f"{self.precision * 100:.0f}% {self.recall * 100:.0f}% {self.f1 * 100:.0f}%"
        )

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def evaluate_instances(assignment: Assignment, gold: GoldStandard) -> PRF:
    """Score a maximal instance assignment against the gold standard.

    Only assignments whose left entity is part of the gold standard's
    domain are judged (the OAEI protocol); every gold pair without a
    correct produced assignment counts as a false negative.
    """
    gold_left = {left for left, _right in gold.instance_pairs}
    true_positives = 0
    false_positives = 0
    for left, (right, _probability) in assignment.items():
        if left.name not in gold_left:
            continue
        if (left.name, right.name) in gold.instance_pairs:
            true_positives += 1
        else:
            false_positives += 1
    false_negatives = gold.num_instances - true_positives
    return PRF(true_positives, false_positives, false_negatives)


def evaluate_relations(
    pairs: Sequence[Tuple[Relation, Relation, float]],
    gold: GoldStandard,
    reverse: bool = False,
) -> PRF:
    """Score maximally-assigned relation pairs of one direction.

    Precision: fraction of produced pairs that are correct (the paper's
    manual evaluation, made exact by the generator gold).  Recall:
    fraction of *relations with a gold counterpart* whose maximal
    assignment is correct.  Recall is per-relation rather than per-pair
    because each relation gets exactly one maximal assignment while the
    gold may list several acceptable targets (``hasChild`` matches both
    ``parent⁻`` and ``child``).

    Parameters
    ----------
    pairs:
        Output of :meth:`AlignmentResult.relation_pairs` — ``(sub,
        super, score)`` with ``sub`` from the left ontology, or from
        the right one when ``reverse`` is set.
    reverse:
        Set when scoring the right ⊆ left direction; gold pairs are
        stored left-to-right and are swapped for the lookup.
    """
    from .gold import _invert_name

    def is_gold(sub: Relation, sup: Relation) -> bool:
        if reverse:
            return gold.has_relation_pair(sup, sub)
        return gold.has_relation_pair(sub, sup)

    true_positives = 0
    false_positives = 0
    correct_subs = set()
    for sub, sup, _score in pairs:
        if is_gold(sub, sup):
            true_positives += 1
            correct_subs.add(str(sub))
        else:
            false_positives += 1
    # Distinct relations (of the evaluated side) that gold knows about.
    gold_side = {r for _l, r in gold.relation_pairs} if reverse else {
        l for l, _r in gold.relation_pairs
    }
    gold_side |= {_invert_name(name) for name in gold_side}
    false_negatives = len(gold_side - correct_subs)
    return PRF(true_positives, false_positives, false_negatives)


def evaluate_classes(
    pairs: Sequence[Tuple[Resource, Resource, float]],
    gold: GoldStandard,
    reverse: bool = False,
) -> PRF:
    """Score class-inclusion pairs of one direction (precision-oriented).

    Recall for class alignment is not well-defined in the paper
    ("Evaluating whether a class is always assigned to its most
    specific counterpart would require exhaustive annotation"); the
    returned false-negative count is relative to the gold inclusions,
    which over-counts heavily, so reports typically use only the
    precision and the pair count.
    """
    inclusions = gold.class_inclusions_21 if reverse else gold.class_inclusions_12
    true_positives = 0
    false_positives = 0
    for sub, sup, _score in pairs:
        if (sub.name, sup.name) in inclusions:
            true_positives += 1
        else:
            false_positives += 1
    false_negatives = max(0, len(inclusions) - true_positives)
    return PRF(true_positives, false_positives, false_negatives)


@dataclass(frozen=True)
class ThresholdPoint:
    """One point of the Figure-1/Figure-2 sweeps."""

    threshold: float
    #: Precision of class inclusions scoring at least ``threshold``.
    precision: float
    #: Number of sub-classes with at least one assignment ≥ ``threshold``
    #: (the Figure-2 series).
    num_classes: int
    #: Number of inclusion pairs at or above the threshold.
    num_pairs: int


def class_threshold_sweep(
    matrix: SubsumptionMatrix[Resource],
    gold: GoldStandard,
    reverse: bool = False,
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    exclude: Optional[Iterable[str]] = None,
) -> List[ThresholdPoint]:
    """Precision and matched-class counts as the threshold varies.

    Reproduces Figures 1 and 2.  ``exclude`` drops high-level classes
    by name (the paper excludes 19 classes like ``yagoGeoEntity``
    before sampling).
    """
    excluded = set(exclude or ())
    inclusions = gold.class_inclusions_21 if reverse else gold.class_inclusions_12
    points = []
    for threshold in thresholds:
        true_positives = 0
        produced = 0
        for sub, sup, _score in matrix.pairs_above(threshold):
            if sub.name in excluded:
                continue
            produced += 1
            if (sub.name, sup.name) in inclusions:
                true_positives += 1
        precision = true_positives / produced if produced else 1.0
        points.append(
            ThresholdPoint(
                threshold=threshold,
                precision=precision,
                num_classes=matrix.subs_with_match_above(threshold),
                num_pairs=produced,
            )
        )
    return points
