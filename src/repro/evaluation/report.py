"""Text rendering of the paper's tables.

Each renderer takes evaluation results and prints rows in the layout of
the corresponding table of the paper, so bench output can be compared
side by side with the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.result import AlignmentResult
from ..rdf.terms import Relation
from .gold import GoldStandard
from .metrics import (
    PRF,
    ThresholdPoint,
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
)


def _pct(value: Optional[float]) -> str:
    return f"{value * 100:.0f}%" if value is not None else "-"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with aligned columns."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(headers[i].ljust(widths[i]) for i in range(len(headers)))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


@dataclass
class Table1Row:
    """One system's results on one OAEI dataset (Table 1 layout)."""

    dataset: str
    system: str
    gold_instances: int
    instances: Optional[PRF]
    gold_classes: int
    classes: Optional[PRF]
    gold_relations: int
    relations: Optional[PRF]
    #: For comparators with published-but-partial numbers.
    reported: Optional[Tuple[Optional[float], Optional[float], Optional[float]]] = None

    def cells(self) -> List[str]:
        if self.instances is not None:
            instance_cells = [
                _pct(self.instances.precision),
                _pct(self.instances.recall),
                _pct(self.instances.f1),
            ]
        elif self.reported is not None:
            instance_cells = [_pct(v) for v in self.reported]
        else:
            instance_cells = ["-", "-", "-"]
        class_cells = (
            [_pct(self.classes.precision), _pct(self.classes.recall), _pct(self.classes.f1)]
            if self.classes is not None
            else ["-", "-", "-"]
        )
        relation_cells = (
            [
                _pct(self.relations.precision),
                _pct(self.relations.recall),
                _pct(self.relations.f1),
            ]
            if self.relations is not None
            else ["-", "-", "-"]
        )
        return (
            [self.dataset, self.system, str(self.gold_instances)]
            + instance_cells
            + [str(self.gold_classes)]
            + class_cells
            + [str(self.gold_relations)]
            + relation_cells
        )


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the Table-1 layout (instances / classes / relations)."""
    headers = [
        "Dataset", "System",
        "GoldI", "PrecI", "RecI", "F-I",
        "GoldC", "PrecC", "RecC", "F-C",
        "GoldR", "PrecR", "RecR", "F-R",
    ]
    return render_table(headers, [row.cells() for row in rows])


def render_iteration_table(
    result: AlignmentResult,
    gold: GoldStandard,
    class_threshold: float = 0.4,
) -> str:
    """Render a Table-3/Table-5 style per-iteration report.

    Per iteration: change rate, instance P/R/F, and the number and
    precision of maximally-assigned relation inclusions in both
    directions.  Class columns appear on the last row only (classes are
    computed after the fixpoint, as in the paper).
    """
    headers = [
        "It", "Change", "PrecI", "RecI", "F-I",
        "Rel12", "PrecR12", "Rel21", "PrecR21",
        "Cls12", "PrecC12", "Cls21", "PrecC21",
    ]
    rows = []
    last_index = result.iterations[-1].index if result.iterations else 0
    for snapshot in result.iterations:
        instances = evaluate_instances(snapshot.assignment12, gold)
        pairs12 = _maximal_relation_pairs(snapshot.relations12)
        pairs21 = _maximal_relation_pairs(snapshot.relations21)
        relations12 = evaluate_relations(pairs12, gold)
        relations21 = evaluate_relations(pairs21, gold, reverse=True)
        row = [
            snapshot.index,
            "-" if snapshot.change_fraction is None else _pct(snapshot.change_fraction),
            _pct(instances.precision),
            _pct(instances.recall),
            _pct(instances.f1),
            len(pairs12),
            _pct(relations12.precision),
            len(pairs21),
            _pct(relations21.precision),
        ]
        if snapshot.index == last_index:
            classes12 = result.class_pairs(class_threshold)
            classes21 = result.class_pairs(class_threshold, reverse=True)
            eval12 = evaluate_classes(classes12, gold)
            eval21 = evaluate_classes(classes21, gold, reverse=True)
            row += [
                len(classes12), _pct(eval12.precision),
                len(classes21), _pct(eval21.precision),
            ]
        else:
            row += ["-", "-", "-", "-"]
        rows.append(row)
    return render_table(headers, rows)


def _maximal_relation_pairs(matrix) -> List[Tuple[Relation, Relation, float]]:
    pairs = []
    for sub in {sub for sub, _sup, _score in matrix.items()}:
        best = matrix.best_super(sub)
        if best is not None:
            pairs.append((sub, best[0], best[1]))
    pairs.sort(key=lambda entry: -entry[2])
    return pairs


def render_relation_alignments(
    result: AlignmentResult,
    threshold: float = 0.1,
    reverse: bool = False,
    limit: int = 25,
    forward_only: bool = True,
) -> str:
    """Render a Table-4 style listing of relation inclusions."""
    matrix = result.relations21 if reverse else result.relations12
    rows = []
    for sub, sup, score in sorted(matrix.items(), key=lambda t: -t[2]):
        if score < threshold:
            continue
        if forward_only and sub.inverted:
            continue
        rows.append([str(sub), "⊆", str(sup), f"{score:.2f}"])
        if len(rows) >= limit:
            break
    return render_table(["relation", "", "super-relation", "score"], rows)


def render_threshold_sweep(points: Sequence[ThresholdPoint]) -> str:
    """Render the Figure-1/Figure-2 series as a table."""
    rows = [
        [f"{p.threshold:.1f}", f"{p.precision:.3f}", p.num_classes, p.num_pairs]
        for p in points
    ]
    return render_table(["threshold", "precision", "#classes", "#pairs"], rows)
