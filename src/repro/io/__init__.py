"""Persistence of alignment results and owl:sameAs link export."""

from .alignment_io import (
    OWL_SAMEAS_URI,
    load_result,
    render_assignment_rows,
    save_result,
    write_sameas_links,
)

__all__ = [
    "save_result",
    "load_result",
    "render_assignment_rows",
    "write_sameas_links",
    "OWL_SAMEAS_URI",
]
