"""Serialization of alignment results.

An :class:`~repro.core.result.AlignmentResult` persists as a directory
of TSV files — one per alignment kind — plus a small metadata header:

* ``instances.tsv``   — ``left  right  probability`` (all stored pairs)
* ``assignment.tsv``  — the maximal assignment, left → right
* ``relations12.tsv`` / ``relations21.tsv`` — relation inclusions
* ``classes12.tsv``  / ``classes21.tsv``    — class inclusions
* ``meta.tsv``        — ontology names, iteration count, convergence

The instance equalities can additionally be exported as
``owl:sameAs`` links in N-Triples (:func:`write_sameas_links`), the
interchange format of the Linked Open Data world the paper targets.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..core.matrix import SubsumptionMatrix
from ..core.result import AlignmentResult, Assignment
from ..core.store import EquivalenceStore
from ..rdf.terms import Relation, Resource

#: Conventional URI of the owl:sameAs property.
OWL_SAMEAS_URI = "http://www.w3.org/2002/07/owl#sameAs"


def render_assignment_rows(rows: List[Tuple[str, str, float]]) -> str:
    """Render ``(left, right, probability)`` rows as sorted TSV text.

    The one TSV shape used everywhere results are exchanged: the
    ``save_result`` files below and the alignment service's
    ``GET /alignment?format=tsv`` response.
    """
    return "".join(
        f"{left}\t{right}\t{probability:.6f}\n" for left, right, probability in sorted(rows)
    )


def _write_rows(path: Path, rows: List[Tuple[str, str, float]]) -> None:
    path.write_text(render_assignment_rows(rows), encoding="utf-8")


def _read_rows(path: Path) -> List[Tuple[str, str, float]]:
    rows = []
    if not path.exists():
        return rows
    with path.open("r", encoding="utf-8") as stream:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 3:
                raise ValueError(
                    f"{path.name}:{line_number}: expected 3 fields, got {len(fields)}"
                )
            rows.append((fields[0], fields[1], float(fields[2])))
    return rows


def save_result(result: AlignmentResult, directory: Union[str, Path]) -> Path:
    """Persist an alignment result; returns the directory written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _write_rows(
        directory / "instances.tsv",
        [(l.name, r.name, p) for l, r, p in result.instances.items()],
    )
    _write_rows(
        directory / "assignment.tsv",
        [(l.name, r.name, p) for l, (r, p) in result.assignment12.items()],
    )
    _write_rows(
        directory / "relations12.tsv",
        [(str(a), str(b), p) for a, b, p in result.relations12.items()],
    )
    _write_rows(
        directory / "relations21.tsv",
        [(str(a), str(b), p) for a, b, p in result.relations21.items()],
    )
    _write_rows(
        directory / "classes12.tsv",
        [(a.name, b.name, p) for a, b, p in result.classes12.items()],
    )
    _write_rows(
        directory / "classes21.tsv",
        [(a.name, b.name, p) for a, b, p in result.classes21.items()],
    )
    with (directory / "meta.tsv").open("w", encoding="utf-8") as stream:
        stream.write(f"left\t{result.left_name}\n")
        stream.write(f"right\t{result.right_name}\n")
        stream.write(f"iterations\t{result.num_iterations}\n")
        stream.write(f"converged\t{int(result.converged)}\n")
    return directory


def load_result(directory: Union[str, Path]) -> AlignmentResult:
    """Load an alignment result saved by :func:`save_result`.

    Iteration snapshots are not persisted; the loaded result carries
    the final state only.
    """
    directory = Path(directory)
    meta: Dict[str, str] = {}
    with (directory / "meta.tsv").open("r", encoding="utf-8") as stream:
        for line in stream:
            key, _, value = line.rstrip("\n").partition("\t")
            meta[key] = value
    instances = EquivalenceStore()
    for left, right, probability in _read_rows(directory / "instances.tsv"):
        instances.set(Resource(left), Resource(right), probability)
    relations12: SubsumptionMatrix[Relation] = SubsumptionMatrix()
    for left, right, probability in _read_rows(directory / "relations12.tsv"):
        relations12.set(Relation.parse(left), Relation.parse(right), probability)
    relations21: SubsumptionMatrix[Relation] = SubsumptionMatrix()
    for left, right, probability in _read_rows(directory / "relations21.tsv"):
        relations21.set(Relation.parse(left), Relation.parse(right), probability)
    classes12: SubsumptionMatrix[Resource] = SubsumptionMatrix()
    for left, right, probability in _read_rows(directory / "classes12.tsv"):
        classes12.set(Resource(left), Resource(right), probability)
    classes21: SubsumptionMatrix[Resource] = SubsumptionMatrix()
    for left, right, probability in _read_rows(directory / "classes21.tsv"):
        classes21.set(Resource(left), Resource(right), probability)
    return AlignmentResult(
        left_name=meta.get("left", "left"),
        right_name=meta.get("right", "right"),
        instances=instances,
        assignment12=instances.maximal_assignment(),
        assignment21=instances.maximal_assignment(reverse=True),
        relations12=relations12,
        relations21=relations21,
        classes12=classes12,
        classes21=classes21,
        converged=bool(int(meta.get("converged", "0"))),
        iterations=[],
    )


def write_sameas_links(
    assignment: Assignment,
    target: Union[str, Path],
    threshold: float = 0.0,
) -> int:
    """Export a maximal assignment as ``owl:sameAs`` N-Triples links.

    Returns the number of links written.  This is the LOD-cloud
    interchange format: each line asserts
    ``<left> owl:sameAs <right> .``
    """
    path = Path(target)
    count = 0
    with path.open("w", encoding="utf-8") as stream:
        for left, (right, probability) in sorted(
            assignment.items(), key=lambda item: item[0].name
        ):
            if probability < threshold:
                continue
            stream.write(f"<{left.name}> <{OWL_SAMEAS_URI}> <{right.name}> .\n")
            count += 1
    return count
