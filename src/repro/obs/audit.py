"""Order-insensitive alignment digests — the fleet correctness signal.

Everything this repo guarantees hangs on one invariant: warm,
incremental and replica state must equal a cold PARIS realign within
1e-9 (the fixpoint semantics of Section 4).  This module turns that
contract into a number that can be compared across processes: a 64-bit
**commutative digest** of the maximal assignment, folded as the XOR of
one well-mixed hash per ``(left, right, quantized score)`` pair.

XOR makes the fold order-insensitive and invertible: removing a pair
XORs the same hash back out, so the engine maintains the digest in
O(changes) from the warm loop's existing net change log
(:meth:`repro.core.result.AlignmentResult.net_assignment_changes`)
instead of re-walking the assignment.  Scores are quantized to the
1e-9 contract before hashing; the replication protocol ships the
primary's own scores (and warm application is bit-deterministic across
batch chopping — see ``tests/test_audit.py``), so two nodes at the
same WAL offset must produce the *identical* digest, and any
difference is real divergence, not float noise.

Digests are keyed by WAL offset: :class:`DigestMaintainer` keeps a
bounded history of ``(offset, digest)`` checkpoints so
``GET /digest?offset=`` can answer for recent offsets after the head
moved on, which is what lets ``repro doctor`` compare a fleet whose
nodes were observed at slightly different instants.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.result import Assignment, AssignmentDelta, iter_pair_changes
from ..rdf.terms import Resource
from .metrics import REGISTRY

__all__ = [
    "SCORE_QUANTUM",
    "pair_hash",
    "digest_assignment",
    "format_digest",
    "parse_digest",
    "DigestMaintainer",
    "AUDIT_CHECKS",
    "AUDIT_MISMATCH",
    "DIGEST_UPDATES",
    "DIGEST_OFFSET",
]

#: Scores are quantized to this grid before hashing — the same 1e-9
#: tolerance the fixpoint contract promises.  Replicas apply the
#: primary's own shipped scores, so equal state hashes equally.
SCORE_QUANTUM = 1e-9

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: How many ``(wal_offset, digest)`` checkpoints each maintainer keeps
#: so ``GET /digest?offset=`` can answer for recently-passed offsets.
DIGEST_HISTORY = 256

AUDIT_CHECKS = REGISTRY.counter(
    "repro_audit_checks_total",
    "Correctness audit checks performed, by kind "
    "(sample, digest, bootstrap, replay)",
    ("kind",),
)
AUDIT_MISMATCH = REGISTRY.counter(
    "repro_audit_mismatch_total",
    "Correctness audit checks that found real divergence, by kind",
    ("kind",),
)
DIGEST_UPDATES = REGISTRY.counter(
    "repro_digest_updates_total",
    "Incremental pair updates folded into the state digest",
)
DIGEST_OFFSET = REGISTRY.gauge(
    "repro_digest_offset",
    "WAL offset the incremental state digest is current as of",
)


def _mix64(value: int) -> int:
    """splitmix64 finalizer: full-avalanche mixing so the XOR fold of
    many pair hashes stays collision-resistant even for similar names."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def quantize_score(probability: float) -> int:
    """The integer grid cell of a score at the 1e-9 contract tolerance."""
    return round(probability / SCORE_QUANTUM)


def pair_hash(left: str, right: str, probability: float) -> int:
    """64-bit hash of one alignment pair ``(left, right, score)``.

    FNV-1a over the two names and the quantized score, then a
    splitmix64 finalizer.  Deterministic across processes and Python
    versions (no ``hash()`` randomization), which is what lets two
    nodes compare digests at all.
    """
    acc = _FNV_OFFSET
    for chunk in (left.encode("utf-8"), b"\x00", right.encode("utf-8")):
        for byte in chunk:
            acc = ((acc ^ byte) * _FNV_PRIME) & _MASK64
    quantum = quantize_score(probability) & _MASK64
    for shift in (0, 8, 16, 24, 32, 40, 48, 56):
        acc = ((acc ^ ((quantum >> shift) & 0xFF)) * _FNV_PRIME) & _MASK64
    return _mix64(acc)


def digest_assignment(assignment: Assignment) -> int:
    """Full recompute: fold the whole maximal assignment into one
    64-bit digest.  The self-verification path for the incremental
    maintenance — the two must always agree."""
    digest = 0
    for left, (right, probability) in assignment.items():
        digest ^= pair_hash(left.name, right.name, probability)
    return digest


def format_digest(digest: int) -> str:
    """Digests cross HTTP as fixed-width hex — 64-bit ints exceed JSON
    number precision in common clients."""
    return f"{digest & _MASK64:016x}"


def parse_digest(text: str) -> int:
    return int(text, 16)


def range_digest(
    assignment: Assignment, lo: Optional[str] = None, hi: Optional[str] = None
) -> Dict[str, object]:
    """Digest of the sub-assignment whose *left* entity name falls in
    ``[lo, hi]`` (inclusive, lexicographic; ``None`` = unbounded).

    Returns the digest plus the range's pair count, name bounds and
    median left name — everything ``repro doctor`` needs to binary
    search a fleet digest split down to the first divergent pair.
    """
    digest = 0
    names: List[str] = []
    for left, (right, probability) in assignment.items():
        name = left.name
        if lo is not None and name < lo:
            continue
        if hi is not None and name > hi:
            continue
        digest ^= pair_hash(name, right.name, probability)
        insort(names, name)
    payload: Dict[str, object] = {
        "digest": format_digest(digest),
        "count": len(names),
    }
    if names:
        payload["min"] = names[0]
        payload["max"] = names[-1]
        # Lower median: the halves [lo, mid] and (mid, hi] are then both
        # strictly smaller than the range, so the doctor's binary search
        # always terminates (upper median would make [lo, mid] == the
        # whole range when two names remain).
        payload["mid"] = names[(len(names) - 1) // 2]
    return payload


class DigestMaintainer:
    """Incremental digest over one engine's maximal assignment.

    Owned by the engine, updated under its lock from the warm loop's
    net change log: each changed entity XORs its old pair hash out and
    its new one in — O(changes) per delta, no matter how large the
    assignment is.  Also remembers, per entity, the last WAL offset
    that touched it (``last_touched``), which is how an audit mismatch
    report recovers the provenance trace ids of the deltas that wrote
    the bad pair.
    """

    def __init__(
        self,
        assignment: Assignment,
        wal_offset: int = 0,
        history: int = DIGEST_HISTORY,
    ) -> None:
        self._lock = threading.Lock()
        self.digest = digest_assignment(assignment)
        self.wal_offset = wal_offset
        self._checkpoints: Deque[Tuple[int, int]] = deque(maxlen=history)
        self._checkpoints.append((wal_offset, self.digest))
        #: entity → last WAL offset whose delta changed its pair.
        self.last_touched: Dict[Resource, int] = {}
        DIGEST_OFFSET.set(wal_offset)

    def apply(
        self,
        changes12: AssignmentDelta,
        previous12: Assignment,
        wal_offset: int,
    ) -> int:
        """Fold one delta's net assignment changes into the digest.

        ``previous12`` is the assignment *before* the changes were
        applied (the engine hands over its retired dict), so the old
        pair hash of every changed entity can be XORed back out.
        """
        with self._lock:
            digest = self.digest
            for entity, old, match in iter_pair_changes(changes12, previous12):
                if old is not None:
                    digest ^= pair_hash(entity.name, old[0].name, old[1])
                if match is not None:
                    digest ^= pair_hash(entity.name, match[0].name, match[1])
                self.last_touched[entity] = wal_offset
            self.digest = digest
            self.wal_offset = wal_offset
            self._checkpoints.append((wal_offset, digest))
            DIGEST_UPDATES.inc(len(changes12))
            DIGEST_OFFSET.set(wal_offset)
            return digest

    def advance(self, wal_offset: int) -> None:
        """A no-op batch still moved the WAL cursor: checkpoint the
        unchanged digest at the new offset so offset-keyed lookups and
        fleet comparison stay aligned."""
        with self._lock:
            self.wal_offset = wal_offset
            self._checkpoints.append((wal_offset, self.digest))
            DIGEST_OFFSET.set(wal_offset)

    def snapshot(self) -> Tuple[int, int]:
        """The current ``(wal_offset, digest)`` pair, atomically."""
        with self._lock:
            return self.wal_offset, self.digest

    def at_offset(self, wal_offset: int) -> Optional[int]:
        """The digest as of ``wal_offset``, if still in the bounded
        checkpoint history; ``None`` once it aged out (callers answer
        409, and ``repro doctor`` re-quiesces)."""
        with self._lock:
            checkpoints = list(self._checkpoints)
        offsets = [offset for offset, _ in checkpoints]
        index = bisect_left(offsets, wal_offset)
        if index < len(offsets) and offsets[index] == wal_offset:
            return checkpoints[index][1]
        return None

    def offsets_touching(self, entities: Iterable[Resource]) -> List[int]:
        """Distinct last-touch WAL offsets for ``entities``, sorted —
        the offsets whose provenance records explain a bad pair."""
        with self._lock:
            found = {
                self.last_touched[entity]
                for entity in entities
                if entity in self.last_touched
            }
        return sorted(found)
