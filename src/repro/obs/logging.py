"""Structured logging for the serving stack.

One process-wide ``repro`` logger hierarchy, configured exactly once by
:func:`setup_logging` (the CLI calls it from ``main()`` with
``--log-level`` / ``--log-format``).  Subsystems grab a child logger via
:func:`get_logger` and log *events with fields*, not prose::

    log = get_logger("repro.wal")
    log.info("segment rotated", segment=name, records=count)

Two formats:

* ``text`` (default) — ``2026-08-07T12:00:00.123Z INFO repro.wal
  segment rotated segment=wal-000002.ndjson records=5000`` — grep-able,
  human-first.
* ``json`` — one JSON object per line (``ts``, ``level``, ``logger``,
  ``event``, plus every field).  In this mode **nothing** in the stack
  writes bare text to stderr: every former ``print(..., file=sys.stderr)``
  in server/cli/replica/router goes through here (ISSUE 7 satellite).

Before ``setup_logging`` runs, the ``repro`` logger has no handlers and
``propagate`` stays True, so library use (tests importing the engine)
inherits whatever the host application configured — and stays silent
under pytest by default, matching the previous no-print behaviour of
the core modules.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: Fields the stdlib LogRecord carries that are *not* user event fields.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

LOG_FORMATS = ("text", "json")
LOG_LEVELS = ("debug", "info", "warning", "error")


def _utc_ts(record: logging.LogRecord) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
    return f"{base}.{int(record.msecs):03d}Z"


def _event_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class TextFormatter(logging.Formatter):
    """``TS LEVEL logger event k=v k=v`` — values repr'd only when they
    contain spaces, so the common case stays clean."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            _utc_ts(record),
            record.levelname,
            record.name,
            record.getMessage(),
        ]
        for key, value in sorted(_event_fields(record).items()):
            text = str(value)
            if " " in text or '"' in text or text == "":
                text = json.dumps(text)
            parts.append(f"{key}={text}")
        line = " ".join(parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per line; non-serializable field values fall
    back to ``str`` so a log call can never raise."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": _utc_ts(record),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in sorted(_event_fields(record).items()):
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


def get_logger(name: str = "repro") -> logging.Logger:
    """The named logger, guaranteed under the ``repro`` hierarchy so it
    inherits the handler installed by :func:`setup_logging`.

    Plain :class:`logging.Logger` — structured fields ride the standard
    ``extra`` mechanism: ``log.info("event", extra={"k": v})`` or, for
    the subsystems here, via the kwargs-forwarding helpers below.
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """``log_event(log, logging.INFO, "segment rotated", records=5)`` —
    kwargs become structured fields on the record."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra=fields)


class EventLogger:
    """Thin kwargs→fields wrapper over a stdlib logger, so call sites
    read ``log.info("wal synced", offset=n)`` instead of juggling
    ``extra=`` dicts."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def raw(self) -> logging.Logger:
        return self._logger

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 - stdlib name
        return self._logger.isEnabledFor(level)

    def debug(self, event: str, **fields: object) -> None:
        log_event(self._logger, logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: object) -> None:
        log_event(self._logger, logging.INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        log_event(self._logger, logging.WARNING, event, **fields)

    def error(self, event: str, **fields: object) -> None:
        log_event(self._logger, logging.ERROR, event, **fields)

    def exception(self, event: str, **fields: object) -> None:
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(event, extra=fields, exc_info=True)


def get_event_logger(name: str = "repro") -> EventLogger:
    return EventLogger(get_logger(name))


class _LiveStderrHandler(logging.StreamHandler):
    """A StreamHandler that resolves ``sys.stderr`` at *emit* time.

    Binding the stream at construction would capture whatever stderr
    was then — a pytest capture buffer, a pre-daemonization fd — and
    keep writing to it after it was closed or swapped.
    """

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self) -> IO[str]:
        return sys.stderr

    @stream.setter
    def stream(self, value: IO[str]) -> None:
        pass  # StreamHandler.__init__/setStream assign; always live


def setup_logging(
    level: str = "info",
    log_format: str = "text",
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger: one stderr StreamHandler
    with the chosen formatter, ``propagate`` off.  Idempotent — calling
    again replaces the handler (tests flip format/level freely)."""
    if log_format not in LOG_FORMATS:
        raise ValueError(f"log_format must be one of {LOG_FORMATS}, got {log_format!r}")
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
        try:
            handler.close()
        except (ValueError, OSError):  # pragma: no cover - stream already gone
            pass
    handler = (
        logging.StreamHandler(stream) if stream is not None else _LiveStderrHandler()
    )
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
