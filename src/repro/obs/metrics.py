"""Process-wide metrics: counters, gauges, log-scale histograms.

Stdlib-only reimplementation of the Prometheus client model, sized for
this repo's serving stack (primary, replicas, router — see
:mod:`repro.service`):

* A :class:`MetricsRegistry` holds metric *families*; each family has a
  name, a help string, a fixed tuple of label names, and one *child*
  (the actual number) per distinct label-value combination.
* Families are **get-or-create**: asking the registry for an existing
  name returns the existing family (with a type/label check), so every
  subsystem can declare the metrics it touches at import time without
  coordinating ownership.  This mirrors the process-global registry of
  the official clients — and means two engines in one test process
  share counters, which is exactly what "process-wide" promises.
* :meth:`MetricsRegistry.render` emits the Prometheus text exposition
  format (``text/plain; version=0.0.4``): ``# HELP`` / ``# TYPE``
  comments, escaped label values, children sorted by label values so
  the output is deterministic, and for histograms the cumulative
  ``_bucket`` / ``_sum`` / ``_count`` series.  The HTTP front-ends
  serve it as ``GET /metrics``.

Everything is thread-safe: one lock per family serializes child
creation and updates (handler threads, the batcher flush loop, the
replica tail thread and worker-pool feeders all write concurrently).

Histograms use fixed **log-scale latency buckets**
(:data:`LATENCY_BUCKETS`, ~1 ms to ~2 min in half-decade steps) unless
a caller passes its own; bucket bounds are validated strictly
increasing at construction, and counts are kept per-bucket and summed
cumulatively at render time so ``observe`` is O(1) plus one bisect.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Fixed log-scale duration buckets (seconds): 1-2.5-5 per decade from
#: 1 ms to 100 s.  Wide enough for a cold align, fine enough for a
#: cached ``GET /pair``.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[str, ...]


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote and newline must be escaped, everything else is raw."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """``# HELP`` lines escape backslash and newline (not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0`` (the
    common case for counters), floats via ``repr`` round-tripping."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(value)


class _Family:
    """Shared machinery of one metric family (name, labels, children)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, object] = {}

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}"
            )
        # Values keyed in *declared label order*, not call order — the
        # exposition prints labels in declaration order, so two call
        # sites naming the labels differently still hit one child.
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_text(self, values: LabelValues) -> str:
        if not self.labelnames:
            return ""
        pairs = ",".join(
            f'{name}="{escape_label_value(value)}"'
            for name, value in zip(self.labelnames, values)
        )
        return "{" + pairs + "}"

    def samples(self) -> Iterable[Tuple[str, str, float]]:
        """``(suffix, labels-text, value)`` rows, sorted by labels."""
        raise NotImplementedError

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels_text, value in self.samples():
            lines.append(f"{self.name}{suffix}{labels_text} {format_value(value)}")
        return lines


class Counter(_Family):
    """Monotonically increasing count (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def samples(self) -> Iterable[Tuple[str, str, float]]:
        with self._lock:
            children = sorted(self._children.items())
        for values, count in children:
            yield "", self._labels_text(values), float(count)


class Gauge(_Family):
    """A value that can go up and down — or be computed at scrape time
    via :meth:`set_callback` (offsets, queue depths, lags)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            current = self._children.get(key, 0.0)
            if callable(current):
                raise ValueError(f"{self.name}: gauge child is callback-backed")
            self._children[key] = float(current) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_callback(self, fn: Callable[[], float], **labels: object) -> None:
        """Compute this child at scrape time.  Re-registering replaces
        the previous callback (a restarted subsystem wins)."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = fn

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            current = self._children.get(key, 0.0)
        return float(current() if callable(current) else current)

    def samples(self) -> Iterable[Tuple[str, str, float]]:
        with self._lock:
            children = sorted(self._children.items())
        for values, current in children:
            if callable(current):
                try:
                    current = float(current())
                except Exception:  # noqa: BLE001 - a dead callback must
                    continue  # not take the whole scrape down
            yield "", self._labels_text(values), float(current)


class _HistogramChild:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets  # per-bucket, not cumulative
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Distribution over fixed buckets (cumulative at render time)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets) + 1)
            child.bucket_counts[index] += 1
            child.total += value
            child.count += 1

    def snapshot(self, **labels: object) -> Tuple[List[int], float, int]:
        """Cumulative bucket counts (incl. +Inf), sum, count."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return [0] * (len(self.buckets) + 1), 0.0, 0
            raw = list(child.bucket_counts)
            total, count = child.total, child.count
        cumulative: List[int] = []
        running = 0
        for bucket_count in raw:
            running += bucket_count
            cumulative.append(running)
        return cumulative, total, count

    def samples(self) -> Iterable[Tuple[str, str, float]]:
        with self._lock:
            keys = sorted(self._children)
        for values in keys:
            labels = dict(zip(self.labelnames, values))
            cumulative, total, count = self.snapshot(**labels)
            for bound, running in zip((*self.buckets, float("inf")), cumulative):
                le = format_value(bound)
                if self.labelnames:
                    base = self._labels_text(values)
                    bucket_labels = base[:-1] + f',le="{le}"}}'
                else:
                    bucket_labels = f'{{le="{le}"}}'
                yield "_bucket", bucket_labels, float(running)
            yield "_sum", self._labels_text(values), total
            yield "_count", self._labels_text(values), float(count)


class MetricsRegistry:
    """Get-or-create registry of metric families (module docstring)."""

    #: Content type of :meth:`render` output.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if type(family) is not cls or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def names(self) -> List[str]:
        """All registered family names, sorted — the documentation
        coverage test walks this to keep the metrics table honest."""
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """The full exposition: families in name order, one trailing
        newline — what ``GET /metrics`` serves."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide default registry every subsystem feeds; the HTTP
#: servers expose it as ``GET /metrics``.  Tests that need isolation
#: construct their own :class:`MetricsRegistry`.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
