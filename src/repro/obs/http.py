"""Shared HTTP observability: access log, request metrics, ``/metrics``.

:class:`ObservedHandlerMixin` hooks the three places
``BaseHTTPRequestHandler`` gives us without copying its dispatch loop:

* ``parse_request`` — stamps the start time *after* the request line is
  read, so keep-alive idle time between requests is not billed to the
  next request;
* ``send_response`` / ``send_header`` — capture the status code and the
  ``Content-Length`` the handler sends, without touching the write path;
* ``handle_one_request`` — after the real handler returns, emits one
  access-log line (method, path, status, bytes, duration, request id,
  plus ``source``/``seq`` query params when present — the
  idempotent-delta ingest identity) and feeds the request metrics.

``parse_request`` also resolves the request's trace context (see
:mod:`repro.obs.provenance`): the client's ``X-Request-Id`` or W3C
``traceparent`` trace-id, else a generated id.  ``send_response``
echoes it as ``X-Request-Id`` on every response from every role, and
the access log carries it, so one id follows a request through router,
primary, and replicas.

Both the alignment server and the read router mix this in, so the
access log and the ``repro_requests_total`` /
``repro_request_duration_seconds`` / ``repro_response_bytes_total``
series have one definition.  Paths are normalized to a fixed route set
(:func:`route_label`) before becoming label values — `/pair/<l>/<r>`
has unbounded raw paths but exactly one ``route="/pair"`` series —
keeping metric cardinality bounded no matter what clients request.

``serve_metrics`` renders the process :data:`~repro.obs.metrics.REGISTRY`
as the Prometheus text format; each role's handler routes
``GET /metrics`` to it.
"""

from __future__ import annotations

import time
import urllib.parse
from typing import Optional

from .logging import get_logger
from .metrics import REGISTRY
from .provenance import extract_trace_id, new_trace_id

REQUESTS_TOTAL = REGISTRY.counter(
    "repro_requests_total",
    "HTTP requests served, by method, normalized route, and status.",
    labelnames=("method", "route", "status"),
)
REQUEST_SECONDS = REGISTRY.histogram(
    "repro_request_duration_seconds",
    "HTTP request service time (request line read to response flushed).",
    labelnames=("method", "route"),
)
RESPONSE_BYTES = REGISTRY.counter(
    "repro_response_bytes_total",
    "Response body bytes sent (from Content-Length), by route.",
    labelnames=("method", "route"),
)

#: First-segment prefixes that map to themselves; anything else is
#: ``other`` so hostile or typo'd paths cannot mint new series.
_KNOWN_ROUTES = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/wal",
        "/snapshot",
        "/pair",
        "/alignment",
        "/delta",
        "/provenance",
        "/watch",
        "/subscribe",
        "/unsubscribe",
        "/subscriptions",
    }
)

_access_log = get_logger("repro.access")


def route_label(path: str) -> str:
    """Normalize a request path to a bounded route label."""
    head = path.split("?", 1)[0]
    first = "/" + head.split("/", 2)[1] if head.startswith("/") and len(head) > 1 else head
    return first if first in _KNOWN_ROUTES else "other"


class ObservedHandlerMixin:
    """Access log + request metrics for ``BaseHTTPRequestHandler``s."""

    _obs_started: Optional[float] = None
    _obs_status: Optional[int] = None
    _obs_bytes: Optional[int] = None
    #: Request id for the in-flight request: the client's
    #: ``X-Request-Id`` (or ``traceparent`` trace-id), else generated.
    #: Echoed on every response and written to the access log; ``POST
    #: /delta`` threads it into the delta's provenance as the trace id.
    request_id: Optional[str] = None
    request_id_generated: bool = True

    def parse_request(self) -> bool:  # noqa: D102 - hook, see module doc
        self._obs_started = time.perf_counter()
        self._obs_status = None
        self._obs_bytes = None
        self.request_id = None
        self.request_id_generated = True
        ok = super().parse_request()
        if ok:
            try:
                self.request_id, generated = extract_trace_id(self.headers)
                self.request_id_generated = generated
            except Exception:  # noqa: BLE001 - ids must never kill a request
                self.request_id = new_trace_id()
        return ok

    def send_response(self, code, message=None):  # noqa: D102
        self._obs_status = int(code)
        result = super().send_response(code, message)
        # Echo the request id on *every* response — success, error
        # (send_error routes through here), or 304 — so clients and the
        # router can correlate.  Handlers must not set it themselves.
        if self.request_id is not None:
            super().send_header("X-Request-Id", self.request_id)
        return result

    def send_header(self, keyword, value):  # noqa: D102
        if keyword.lower() == "content-length":
            try:
                self._obs_bytes = int(value)
            except (TypeError, ValueError):
                pass
        return super().send_header(keyword, value)

    def handle_one_request(self) -> None:  # noqa: D102
        super().handle_one_request()
        started = self._obs_started
        status = self._obs_status
        if started is None or status is None or not getattr(self, "command", None):
            return  # connection closed / unparseable request line
        self._obs_started = None
        duration = time.perf_counter() - started
        path = getattr(self, "path", "") or ""
        route = route_label(path)
        method = self.command
        body_bytes = self._obs_bytes or 0
        REQUESTS_TOTAL.inc(method=method, route=route, status=status)
        REQUEST_SECONDS.observe(duration, method=method, route=route)
        if body_bytes:
            RESPONSE_BYTES.inc(body_bytes, method=method, route=route)
        fields = {
            "method": method,
            "path": path.split("?", 1)[0],
            "status": status,
            "bytes": body_bytes,
            "duration_ms": round(duration * 1e3, 3),
        }
        if self.request_id is not None:
            fields["request_id"] = self.request_id
        if "?" in path:
            query = urllib.parse.parse_qs(path.split("?", 1)[1])
            for key in ("source", "seq"):
                if key in query:
                    fields[key] = query[key][0]
        _access_log.info("request", extra=fields)

    def serve_metrics(self) -> None:
        """Respond to ``GET /metrics`` with the process registry."""
        body = REGISTRY.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", REGISTRY.CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
