"""Span timers: lightweight tracing of the fixpoint engine's stages.

``with span("pass.instance", frontier=1234):`` times a block, and three
things happen when it closes:

1. the duration lands in the ``repro_span_duration_seconds{span=...}``
   histogram (process registry, so ``GET /metrics`` shows stage-level
   latency distributions);
2. a DEBUG line goes to the ``repro.trace`` logger with the span name,
   duration, and every annotation — this is the "one span line per
   fixpoint pass with frontier size and duration" contract;
3. the finished :class:`Span` attaches to its parent, building a tree.

Nesting is tracked with a **thread-local stack** — each worker/handler
thread has its own active-span chain, so the batcher flush thread's
spans never interleave into an aligner tree built on the request
thread.  The engine wraps a whole ``align()`` / ``warm_align()`` in a
root span via :func:`root_span` and keeps the finished tree; `/stats`
serializes it (:meth:`Span.to_dict`) as ``last_align_profile``.

Overhead discipline: spans wrap *stages* (a pass, a kernel build, a
WAL fsync), never per-instance work, so a cold align adds a few dozen
``perf_counter`` calls — far inside the >30 % bench-track gate.
Annotations discovered mid-stage (a warm pass learns its frontier size
after expansion) are added with :meth:`Span.annotate`.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .logging import get_logger
from .metrics import REGISTRY

#: Every span's duration feeds this one histogram, labelled by span name
#: (names are a small fixed set — pass/kernel/pool/wal/batcher stages —
#: so cardinality stays bounded).
SPAN_SECONDS = REGISTRY.histogram(
    "repro_span_duration_seconds",
    "Duration of traced stages (fixpoint passes, kernel builds, WAL syncs).",
    labelnames=("span",),
)

_log = get_logger("repro.trace")

_state = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


class Span:
    """One timed stage: name, wall duration, annotations, children."""

    __slots__ = ("name", "fields", "children", "duration", "_started")

    def __init__(self, name: str, fields: Dict[str, Any]) -> None:
        self.name = name
        self.fields = fields
        self.children: List[Span] = []
        self.duration: Optional[float] = None
        self._started = time.perf_counter()

    def annotate(self, **fields: Any) -> None:
        """Attach fields learned mid-stage (e.g. warm frontier size)."""
        self.fields.update(fields)

    def finish(self) -> float:
        self.duration = time.perf_counter() - self._started
        return self.duration

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready tree — the `/stats` ``last_align_profile`` shape."""
        node: Dict[str, Any] = {
            "span": self.name,
            "duration_s": round(self.duration, 6) if self.duration is not None else None,
        }
        if self.fields:
            node.update(self.fields)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    # Readable in pytest failures / debug dumps.
    def __repr__(self) -> str:  # pragma: no cover - repr only
        return f"Span({self.name!r}, duration={self.duration}, fields={self.fields})"


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, if any — used by deep
    call sites (kernel, pool) to annotate without plumbing handles."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **fields: Any) -> Iterator[Span]:
    """Time a stage; attach to the enclosing span on this thread."""
    node = Span(name, dict(fields))
    stack = _stack()
    parent = stack[-1] if stack else None
    stack.append(node)
    try:
        yield node
    finally:
        stack.pop()
        duration = node.finish()
        if parent is not None:
            parent.children.append(node)
        SPAN_SECONDS.observe(duration, span=name)
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                name,
                extra={"duration_ms": round(duration * 1e3, 3), **node.fields},
            )


@contextmanager
def root_span(name: str, **fields: Any) -> Iterator[Span]:
    """Like :func:`span`, but starts a fresh tree even if this thread
    already has active spans (an align triggered from inside a traced
    batcher flush still yields a self-contained profile)."""
    previous = getattr(_state, "stack", None)
    _state.stack = []
    try:
        with span(name, **fields) as node:
            yield node
    finally:
        _state.stack = previous if previous is not None else []
