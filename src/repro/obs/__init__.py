"""Observability for the PARIS serving stack (ISSUE 7 / PR 7).

Three stdlib-only pieces, threaded through core, service, stream, and
replica:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (thread-safe Counter/Gauge/Histogram, log-scale latency buckets,
  Prometheus text exposition) served as ``GET /metrics`` by every role.
* :mod:`repro.obs.logging` — structured logging (``--log-format
  json|text``, ``--log-level``) for every message the stack used to
  ``print`` to stderr, plus the per-request access log.
* :mod:`repro.obs.trace` — span timers over the fixpoint engine's
  stages; the last align's span tree is served in ``/stats`` as
  ``last_align_profile``.
* :mod:`repro.obs.audit` — the order-insensitive, offset-keyed state
  digest behind ``GET /digest`` / ``GET /fleet`` and the continuous
  correctness auditing of PR 10 (imported directly, not re-exported
  here: it depends on :mod:`repro.core.result` and must stay a leaf).

ROADMAP.md's "Observability" section lists the exported metric names
and the logging contract.
"""

from .logging import (
    EventLogger,
    get_event_logger,
    get_logger,
    setup_logging,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .provenance import (
    ProvenanceRing,
    extract_trace_id,
    new_trace_id,
    sanitize_trace_id,
    set_active_ring,
)
from .trace import Span, current_span, root_span, span

__all__ = [
    "Counter",
    "EventLogger",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "ProvenanceRing",
    "REGISTRY",
    "Span",
    "current_span",
    "extract_trace_id",
    "get_event_logger",
    "get_logger",
    "get_registry",
    "new_trace_id",
    "root_span",
    "sanitize_trace_id",
    "set_active_ring",
    "setup_logging",
    "span",
]
