"""Per-delta provenance: trace contexts, stage timelines, freshness.

PR 7 gave every *process* metrics and span traces; this module gives
every *delta* a cross-process story.  A delta entering the write path
(``POST /delta``, an NDJSON tailer, a spool directory) is assigned a
**trace context** — the client's ``X-Request-Id``, the trace-id field
of a W3C ``traceparent``, or a synthesized id — and every stage of the
pipeline stamps a wall-clock timestamp against it:

``ingest``
    the delta was received and validated (batcher entry),
``enqueue``
    it was admitted past dedup/admission control and appended to the
    WAL buffer,
``durable``
    its WAL offset was covered by an ``fsync`` (the durability point),
``applied``
    the primary engine published its scores,
``replica_applied``
    a replica's engine applied the shipped record,
``notified``
    subscribers (long-poll watchers / webhooks) were woken for it.

Stamps live in a bounded in-memory :class:`ProvenanceRing` (one per
engine; the newest ring feeds the scrape-time freshness gauges) and —
for the stamps known at append time — in the WAL record itself
(``prov`` field, schema v2; see :mod:`repro.service.stream.wal`), so a
replica can reconstruct the primary-side timeline from the shipped
log.  Wall clocks (``time.time``) are used throughout because the
timeline crosses processes; cross-host skew is clamped at zero when
deriving durations.

Derived telemetry:

* ``repro_delta_stage_seconds{stage=...}`` — histogram over the four
  pipeline legs (``ingest_to_durable``, ``durable_to_applied``,
  ``applied_to_replica``, ``applied_to_notified``).  Observed exactly
  once per delta per leg, and only for *live* traffic: WAL replay
  after a restart re-registers timelines for debugging but does not
  re-observe (restart must not double-count histograms).
* ``repro_freshness_seconds{stage=...}`` — scrape-time gauges: seconds
  since each stage last fired on this role (−1 until it has).

The ``GET /provenance?trace=`` / ``?offset=`` endpoints (primary and
replica) and the ``repro trace`` CLI read the ring back out.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from bisect import bisect_right
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from .metrics import REGISTRY

#: Stage names in pipeline order (also the order ``repro trace`` prints).
STAGES: Tuple[str, ...] = (
    "ingest",
    "enqueue",
    "durable",
    "applied",
    "replica_applied",
    "notified",
)

#: Histogram legs derived from consecutive stage stamps.
STAGE_LEGS: Tuple[str, ...] = (
    "ingest_to_durable",
    "durable_to_applied",
    "applied_to_replica",
    "applied_to_notified",
)

DELTA_STAGE_SECONDS = REGISTRY.histogram(
    "repro_delta_stage_seconds",
    "Per-delta latency of each write-pipeline leg "
    "(ingest->durable->applied->replica/notified), from provenance stamps",
    labelnames=("stage",),
)

FRESHNESS_SECONDS = REGISTRY.gauge(
    "repro_freshness_seconds",
    "Seconds since a delta last reached each pipeline stage on this "
    "role (-1 until the stage has fired); computed at scrape time",
    labelnames=("stage",),
)

#: Longest client-supplied request id accepted verbatim.
MAX_TRACE_ID_LEN = 128

_TRACEPARENT_RE = re.compile(
    r"^[0-9a-f]{2}-([0-9a-f]{32})-[0-9a-f]{16}-[0-9a-f]{2}$"
)


def new_trace_id() -> str:
    """A synthesized trace id (32 lowercase hex chars, uuid4)."""
    return uuid.uuid4().hex


def sanitize_trace_id(raw: object) -> Optional[str]:
    """A client-supplied request id, cleaned — or ``None`` if unusable.

    Accepts any printable, whitespace-free string up to
    :data:`MAX_TRACE_ID_LEN` chars; anything else (empty, control
    characters, oversized) is rejected so log lines and label values
    stay well-formed.
    """
    if not isinstance(raw, str):
        return None
    cleaned = raw.strip()
    if not cleaned or len(cleaned) > MAX_TRACE_ID_LEN:
        return None
    for ch in cleaned:
        if not ch.isprintable() or ch.isspace():
            return None
    return cleaned


def extract_trace_id(headers) -> Tuple[str, bool]:
    """The trace id for an incoming HTTP request: ``(id, generated)``.

    Precedence: a usable ``X-Request-Id`` wins; else the trace-id field
    of a well-formed W3C ``traceparent``; else a synthesized id
    (``generated=True``).  ``headers`` is any mapping with ``.get``
    (e.g. ``http.client.HTTPMessage``).
    """
    rid = sanitize_trace_id(headers.get("X-Request-Id"))
    if rid is not None:
        return rid, False
    traceparent = headers.get("traceparent")
    if isinstance(traceparent, str):
        match = _TRACEPARENT_RE.match(traceparent.strip().lower())
        if match is not None and match.group(1) != "0" * 32:
            return match.group(1), False
    return new_trace_id(), True


class _Entry:
    """One delta's timeline (ring-internal)."""

    __slots__ = (
        "trace",
        "offset",
        "source",
        "seq",
        "stamps",
        "merged_traces",
        "live",
        "replayed",
        "remote",
    )

    def __init__(
        self,
        trace: str,
        offset: Optional[int],
        source: str,
        seq: Optional[int],
        live: bool,
        replayed: bool,
        remote: bool,
    ) -> None:
        self.trace = trace
        self.offset = offset
        self.source = source
        self.seq = seq
        self.stamps: Dict[str, float] = {}
        self.merged_traces: Tuple[str, ...] = ()
        self.live = live
        self.replayed = replayed
        self.remote = remote


class ProvenanceRing:
    """Bounded, thread-safe store of recent delta timelines.

    One ring per engine (``AlignmentService.provenance``); a replica
    node keeps a single ring across engine swaps so re-bootstrap does
    not lose history.  Entries are indexed by trace id and — when the
    delta went through the WAL — by offset; the oldest entry is evicted
    past ``capacity``.  Stamping by offset (``stamp_upto``) sweeps each
    entry at most once per stage via per-stage high-water marks, so the
    hot path stays O(new entries), not O(ring).

    Entries come in three flavours:

    * **live local** (``admit``): real traffic on the primary — stamps
      drive the stage histograms;
    * **replayed local** (``register_record(live=False)``): WAL replay
      after restart — timelines are reconstructed (``replayed`` flag)
      but never observed into histograms;
    * **remote** (``register_record(remote=True)``): a replica's view
      of a shipped record — primary-side stamps come from the record's
      ``prov`` field, the local apply stamps ``replica_applied``.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("provenance ring capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._order: Deque[_Entry] = deque()
        self._by_trace: Dict[str, _Entry] = {}
        self._by_offset: Dict[int, _Entry] = {}
        self._offsets: List[int] = []  # sorted; admission order == offset order
        self._high_water: Dict[str, int] = {}
        self._last_ts: Dict[str, float] = {}

    # -- admission ------------------------------------------------------

    def admit(
        self,
        trace: str,
        *,
        source: str = "http",
        seq: Optional[int] = None,
        offset: Optional[int] = None,
        ingest_ts: Optional[float] = None,
        enqueue_ts: Optional[float] = None,
        live: bool = True,
    ) -> None:
        """Record a freshly ingested delta (primary write path)."""
        with self._lock:
            entry = _Entry(
                trace, offset, source, seq, live=live, replayed=False, remote=False
            )
            if ingest_ts is not None:
                entry.stamps["ingest"] = ingest_ts
                self._note_last("ingest", ingest_ts)
            if enqueue_ts is not None:
                entry.stamps["enqueue"] = enqueue_ts
                self._note_last("enqueue", enqueue_ts)
            self._index(entry)

    def register_record(
        self, record, *, live: bool = False, remote: bool = False
    ) -> None:
        """Reconstruct an entry from a WAL record's ``prov`` stamps.

        Used by WAL replay on the primary (``live=False`` — debugging
        timeline only, no histogram observations) and by the replica
        apply loop (``remote=True`` — the subsequent engine apply stamps
        ``replica_applied``).  Records without provenance (schema v1)
        still get an entry so ``GET /provenance?offset=`` works; their
        trace is synthesized.
        """
        prov = getattr(record, "prov", None) or {}
        trace = sanitize_trace_id(prov.get("trace")) or new_trace_id()
        with self._lock:
            if record.offset in self._by_offset:
                return  # already registered (idempotent redelivery)
            entry = _Entry(
                trace,
                record.offset,
                record.source,
                record.seq,
                live=live,
                replayed=not remote,
                remote=remote,
            )
            for stage, key in (
                ("ingest", "ingest_ts"),
                ("enqueue", "enqueue_ts"),
                ("durable", "durable_ts"),
                ("applied", "applied_ts"),
            ):
                value = prov.get(key)
                if isinstance(value, (int, float)):
                    entry.stamps[stage] = float(value)
            # Anything read back from the log is durable by definition;
            # advance the durable high-water so a later fsync of *new*
            # appends does not mis-stamp these with its own clock.
            high = self._high_water.get("durable", 0)
            if record.offset > high:
                self._high_water["durable"] = record.offset
            self._index(entry)

    def _index(self, entry: _Entry) -> None:
        self._order.append(entry)
        self._by_trace[entry.trace] = entry
        if entry.offset is not None:
            self._by_offset[entry.offset] = entry
            self._offsets.append(entry.offset)
        while len(self._order) > self._capacity:
            evicted = self._order.popleft()
            if self._by_trace.get(evicted.trace) is evicted:
                del self._by_trace[evicted.trace]
            if evicted.offset is not None:
                if self._by_offset.get(evicted.offset) is evicted:
                    del self._by_offset[evicted.offset]
                if self._offsets and self._offsets[0] == evicted.offset:
                    self._offsets.pop(0)

    # -- stamping -------------------------------------------------------

    def stamp_upto(self, stage: str, offset: Optional[int], ts: Optional[float] = None) -> None:
        """Stamp ``stage`` on every entry at or below ``offset`` that
        lacks it (fsync covers a prefix; apply publishes a prefix)."""
        if offset is None or offset <= 0:
            return
        now = time.time() if ts is None else ts
        with self._lock:
            for entry in self._sweep(stage, offset):
                self._stamp(entry, stage, now)

    def stamp_applied_upto(self, offset: Optional[int], ts: Optional[float] = None) -> None:
        """An engine published scores up to ``offset``: local entries
        get ``applied``, remote (replica-registered) entries get
        ``replica_applied`` — one call, routed per entry."""
        if offset is None or offset <= 0:
            return
        now = time.time() if ts is None else ts
        with self._lock:
            for entry in self._sweep("applied", offset):
                self._stamp(entry, "replica_applied" if entry.remote else "applied", now)

    def stamp_traces(self, stage: str, traces: Iterable[str], ts: Optional[float] = None) -> None:
        """Stamp by trace id — the WAL-less batcher path, where entries
        have no offset to sweep by."""
        now = time.time() if ts is None else ts
        with self._lock:
            for trace in traces:
                entry = self._by_trace.get(trace)
                if entry is not None:
                    self._stamp(entry, stage, now)

    def note_merge(self, traces: Iterable[str]) -> None:
        """The batcher coalesced these traces into one warm pass."""
        merged = tuple(traces)
        if len(merged) < 2:
            return
        with self._lock:
            for trace in merged:
                entry = self._by_trace.get(trace)
                if entry is not None:
                    entry.merged_traces = merged

    def _sweep(self, hw_stage: str, offset: int) -> List[_Entry]:
        """Entries in ``(high_water[hw_stage], offset]`` (lock held)."""
        high = self._high_water.get(hw_stage, 0)
        if offset <= high:
            return []
        lo = bisect_right(self._offsets, high)
        hi = bisect_right(self._offsets, offset)
        self._high_water[hw_stage] = offset
        return [self._by_offset[off] for off in self._offsets[lo:hi]]

    def _stamp(self, entry: _Entry, stage: str, ts: float) -> None:
        """Record one stamp + derived histogram leg (lock held)."""
        if stage in entry.stamps:
            return
        entry.stamps[stage] = ts
        self._note_last(stage, ts)
        if not entry.live:
            return  # replayed timeline: reconstruct, don't re-observe
        stamps = entry.stamps
        if stage == "durable" and "ingest" in stamps:
            DELTA_STAGE_SECONDS.observe(
                max(0.0, ts - stamps["ingest"]), stage="ingest_to_durable"
            )
        elif stage == "applied" and "durable" in stamps:
            DELTA_STAGE_SECONDS.observe(
                max(0.0, ts - stamps["durable"]), stage="durable_to_applied"
            )
        elif stage == "replica_applied":
            # Best-available primary reference; clamped for clock skew.
            for ref in ("applied", "durable", "enqueue", "ingest"):
                if ref in stamps:
                    DELTA_STAGE_SECONDS.observe(
                        max(0.0, ts - stamps[ref]), stage="applied_to_replica"
                    )
                    break
        elif stage == "notified":
            ref = stamps.get("replica_applied", stamps.get("applied"))
            if ref is not None:
                DELTA_STAGE_SECONDS.observe(
                    max(0.0, ts - ref), stage="applied_to_notified"
                )

    def _note_last(self, stage: str, ts: float) -> None:
        if ts > self._last_ts.get(stage, float("-inf")):
            self._last_ts[stage] = ts

    # -- read side ------------------------------------------------------

    def lookup_trace(self, trace: str) -> Optional[dict]:
        with self._lock:
            entry = self._by_trace.get(trace)
            return None if entry is None else self._payload(entry)

    def lookup_offset(self, offset: int) -> Optional[dict]:
        with self._lock:
            entry = self._by_offset.get(offset)
            return None if entry is None else self._payload(entry)

    def offset_stamps(self, offset: int) -> Dict[str, float]:
        """``{durable_ts, applied_ts}`` (as known) for a WAL offset —
        what ``GET /wal`` folds into shipped records so replicas see
        the primary-side stamps the on-disk record cannot contain."""
        with self._lock:
            entry = self._by_offset.get(offset)
            if entry is None:
                return {}
            out: Dict[str, float] = {}
            if "durable" in entry.stamps:
                out["durable_ts"] = entry.stamps["durable"]
            if "applied" in entry.stamps:
                out["applied_ts"] = entry.stamps["applied"]
            return out

    def _payload(self, entry: _Entry) -> dict:
        timeline = {
            stage: entry.stamps[stage] for stage in STAGES if stage in entry.stamps
        }
        return {
            "found": True,
            "trace": entry.trace,
            "offset": entry.offset,
            "source": entry.source,
            "seq": entry.seq,
            "timeline": timeline,
            "merged_traces": list(entry.merged_traces),
            "replayed": entry.replayed,
        }

    def last_ts(self, stage: str) -> Optional[float]:
        with self._lock:
            return self._last_ts.get(stage)

    def age(self, stage: str) -> float:
        """Seconds since ``stage`` last fired, or −1 if it never has."""
        last = self.last_ts(stage)
        if last is None:
            return -1.0
        return max(0.0, time.time() - last)

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)


# The freshness gauges resolve through a module-level "active ring"
# pointer rather than per-ring callbacks: engines are rebuilt on
# replica re-bootstrap and tests spin up many, and the newest engine's
# ring is the one whose freshness this process should report
# (consistent with the replica gauges' newest-wins callbacks).
_ACTIVE_RING: Optional[ProvenanceRing] = None
_ACTIVE_LOCK = threading.Lock()


def set_active_ring(ring: ProvenanceRing) -> None:
    """Point the scrape-time freshness gauges at ``ring``."""
    global _ACTIVE_RING
    with _ACTIVE_LOCK:
        _ACTIVE_RING = ring


def _freshness(stage: str) -> float:
    ring = _ACTIVE_RING
    return -1.0 if ring is None else ring.age(stage)


for _stage in STAGES:
    FRESHNESS_SECONDS.set_callback(
        (lambda stage=_stage: _freshness(stage)), stage=_stage
    )
del _stage
