"""Synthetic YAGO/IMDb-style pair (Table 5 and the Section 6.4 baseline).

The paper's second large-scale experiment aligns YAGO with an RDF
rendering of the IMDb plain-text dumps.  Its characteristic phenomena,
all rebuilt here:

* **Population mismatch** — IMDb holds the whole movie world including
  legions of obscure actors; YAGO holds famous people of every
  occupation, "many of whom appeared in some movie or documentary on
  IMDb".  Famous non-movie people appear in IMDb *only* through
  documentary appearances, which is what later corrupts the
  IMDb ⊆ YAGO class direction ("People from Central Java ⊆ actor").
* **Near-duplicate titles** — feature versions and shortened cuts with
  the same cast and crew (*King of the Royal Mounted* vs *The Yukon
  Patrol*; *Out 1* vs *Out 1: Spectre*).  IMDb contains both variants;
  YAGO only the original; PARIS sometimes aligns the wrong one.
* **Label noise** — word-order swaps ("Sugata Sanshirô" vs "Sanshiro
  Sugata") and typos that defeat naive string comparison; the
  rdfs:label baseline of Section 6.4 loses exactly this recall while
  PARIS recovers it through ``actedIn`` structure.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple

from .names import CITY_NAMES, OCCUPATIONS, date_iso, movie_title, unique_person_names
from .noise import NoiseModel, swap_word_order, typo
from .world import AttributeSpec, BenchmarkPair, LinkSpec, Projection, World, derive_pair

#: Occupations whose members are automatically movie people.
_MOVIE_OCCUPATIONS = ("actor", "director", "writer")


def _stable_fraction(uid: str, salt: str) -> float:
    return (zlib.crc32(f"{uid}|{salt}".encode()) & 0xFFFFFFFF) / 2**32


def _stable_id(uid: str, salt: int) -> str:
    return f"e{zlib.crc32(f'{uid}|{salt}'.encode()) & 0xFFFFFF:06x}"


def build_movie_world(
    rng: random.Random,
    num_persons: int = 1200,
    num_movies: int = 600,
    famous_rate: float = 0.45,
    variant_rate: float = 0.04,
    documentary_rate: float = 0.12,
) -> World:
    """Build the hidden movie world.

    Parameters
    ----------
    num_persons:
        Total population; a ``famous_rate`` fraction is famous (in
        YAGO), the rest are obscure movie workers (IMDb only).
    num_movies:
        Feature films & series; documentaries are added on top.
    variant_rate:
        Fraction of movies that get a near-duplicate variant (same
        cast/crew, different title) present only in IMDb.
    documentary_rate:
        Fraction of famous non-movie people who appear in a
        documentary, entering IMDb's orbit.
    """
    world = World()
    num_cities = len(CITY_NAMES)
    for i, city in enumerate(CITY_NAMES):
        world.add(f"city{i}", "city", name=city)

    names = unique_person_names(rng, num_persons)
    movie_people: List[str] = []
    famous_non_movie: List[str] = []
    for i in range(num_persons):
        uid = f"person{i}"
        famous = rng.random() < famous_rate
        if famous:
            # Famous people skew toward movie professions (those are
            # the ones both KBs know), but a large minority are famous
            # for something else entirely — they enter IMDb only via
            # documentaries.
            roll = rng.random()
            if roll < 0.4:
                occupation = "actor"
            elif roll < 0.6:
                occupation = rng.choice(("director", "writer"))
            else:
                occupation = rng.choice(
                    [o for o in OCCUPATIONS if o not in _MOVIE_OCCUPATIONS]
                )
        else:
            occupation = rng.choice(("actor", "actor", "actor", "director", "writer"))
        tags = {occupation}
        if famous:
            tags.add("famous")
        if occupation in _MOVIE_OCCUPATIONS:
            tags.add("movie-person")
            movie_people.append(uid)
        elif famous:
            famous_non_movie.append(uid)
        birth_city = f"city{rng.randrange(num_cities)}"
        tags.add(f"from:{birth_city}")
        world.add(
            uid, "person", tags=tags,
            name=names[i], birthDate=date_iso(rng, 1900, 1985),
        )
        world.link(uid, "bornIn", birth_city)
        if rng.random() < 0.25:
            world.get(uid).attributes["deathDate"] = date_iso(rng, 1986, 2010)

    actors = [u for u in movie_people if "actor" in world.get(u).tags]
    directors = [u for u in movie_people if "director" in world.get(u).tags]
    writers = [u for u in movie_people if "writer" in world.get(u).tags]
    titles: List[str] = []
    movie_index = 0
    for i in range(num_movies):
        uid = f"movie{movie_index}"
        movie_index += 1
        kind_tag = "tvSeries" if rng.random() < 0.15 else "film"
        title = movie_title(rng)
        titles.append(title)
        world.add(
            uid, "work", tags={kind_tag, "movie"},
            name=title, released=str(rng.randint(1930, 2010)),
        )
        cast = rng.sample(actors, k=min(len(actors), rng.randint(2, 6)))
        for actor in cast:
            world.link(actor, "actedIn", uid)
        if directors:
            world.link(rng.choice(directors), "directed", uid)
        if writers and rng.random() < 0.8:
            world.link(rng.choice(writers), "wrote", uid)
        # Near-duplicate variant: same cast and crew, different title,
        # present only in IMDb (tag "variant").
        if rng.random() < variant_rate:
            variant_uid = f"movie{movie_index}"
            movie_index += 1
            variant_title = (
                f"{title}: Redux" if rng.random() < 0.5 else swap_word_order(title, rng)
            )
            world.add(
                variant_uid, "work", tags={kind_tag, "movie", "variant"},
                name=variant_title,
                released=world.get(uid).attributes["released"],
            )
            for actor in cast:
                world.link(actor, "actedIn", variant_uid)
            # copy the original's crew links onto the variant
            for person in directors + writers:
                for relation, target in world.get(person).links:
                    if target == uid and relation in ("directed", "wrote"):
                        world.link(person, relation, variant_uid)

    # Documentaries pull famous non-movie people into IMDb.
    num_documentaries = max(1, int(len(famous_non_movie) * documentary_rate / 3))
    for i in range(num_documentaries):
        uid = f"doc{i}"
        world.add(
            uid, "work", tags={"documentary", "movie"},
            name=f"The {movie_title(rng)} Story",
            released=str(rng.randint(1980, 2010)),
        )
        subjects = rng.sample(
            famous_non_movie, k=min(len(famous_non_movie), rng.randint(2, 4))
        )
        for person in subjects:
            world.link(person, "appearedIn", uid)
            world.get(person).tags.add("documentary-subject")
        if directors:
            world.link(rng.choice(directors), "directed", uid)
    return world


#: Correct relation correspondences (yago-side name, imdb-side name).
IMDB_RELATION_GOLD = [
    ("rdfs:label", "imdb:label"),
    ("y:actedIn", "imdb:actedIn"),
    ("y:directed", "imdb:director^-1"),
    ("y:wrote", "imdb:writer^-1"),
    ("y:wasBornOnDate", "imdb:bornOn"),
    ("y:diedOnDate", "imdb:diedOn"),
    ("y:wasCreatedOnDate", "imdb:releasedIn"),
    ("y:appearedIn", "imdb:actedIn"),
]

#: High-level classes excluded from class sampling.
IMDB_EXCLUDED_CLASSES = frozenset({"y:person", "y:movie", "imdb:Person", "imdb:Title"})


def _yago_classes_of(entity) -> List[str]:
    if entity.kind == "person":
        occupation = next((t for t in entity.tags if t in OCCUPATIONS), None)
        birth = next((t for t in entity.tags if t.startswith("from:")), None)
        classes = []
        if occupation:
            classes.append(f"y:{occupation}")
        if birth:
            classes.append(f"y:peopleFrom_{birth.split(':', 1)[1]}")
        return classes or ["y:person"]
    if entity.kind == "work":
        if "documentary" in entity.tags:
            return ["y:documentary"]
        if "tvSeries" in entity.tags:
            return ["y:tvSeries"]
        return ["y:film"]
    return ["y:city"]


def _yago_subclass_edges() -> List[Tuple[str, str]]:
    edges = [(f"y:{occ}", "y:person") for occ in OCCUPATIONS]
    edges += [(f"y:peopleFrom_city{i}", "y:person") for i in range(len(CITY_NAMES))]
    edges += [
        ("y:film", "y:movie"),
        ("y:tvSeries", "y:movie"),
        ("y:documentary", "y:movie"),
    ]
    return edges


def _imdb_classes_of(entity) -> List[str]:
    if entity.kind == "person":
        classes = []
        if any(rel in ("actedIn", "appearedIn") for rel, _t in entity.links):
            classes.append("imdb:Actor")
        if any(rel == "directed" for rel, _t in entity.links):
            classes.append("imdb:Director")
        if any(rel == "wrote" for rel, _t in entity.links):
            classes.append("imdb:Writer")
        return classes or ["imdb:Person"]
    if entity.kind == "work":
        if "documentary" in entity.tags:
            return ["imdb:Documentary"]
        if "tvSeries" in entity.tags:
            return ["imdb:TvSeries"]
        return ["imdb:Film"]
    return []


_IMDB_SUBCLASS_EDGES = [
    ("imdb:Actor", "imdb:Person"),
    ("imdb:Director", "imdb:Person"),
    ("imdb:Writer", "imdb:Person"),
    ("imdb:Film", "imdb:Title"),
    ("imdb:TvSeries", "imdb:Title"),
    ("imdb:Documentary", "imdb:Title"),
]


def yago_imdb_pair(
    num_persons: int = 1200,
    num_movies: int = 600,
    seed: int = 1937,
    yago_movie_coverage: float = 0.55,
    label_swap_noise: float = 0.08,
    label_typo_noise: float = 0.02,
    drop_fact_imdb: float = 0.06,
    drop_fact_yago: float = 0.10,
) -> BenchmarkPair:
    """Build the YAGO/IMDb-like benchmark pair (Table 5).

    YAGO contains famous people (of all occupations) and a fraction of
    the movies; IMDb contains every movie person and all movies
    (including near-duplicate variants) but knows famous non-movie
    people only through documentaries.
    """
    rng = random.Random(seed)
    world = build_movie_world(rng, num_persons=num_persons, num_movies=num_movies)

    def include_yago(entity) -> bool:
        if entity.kind == "person":
            return "famous" in entity.tags
        if entity.kind == "work":
            if "variant" in entity.tags:
                return False
            return _stable_fraction(entity.uid, "ymov") < yago_movie_coverage
        return True  # cities

    def include_imdb(entity) -> bool:
        if entity.kind == "person":
            return "movie-person" in entity.tags or "documentary-subject" in entity.tags
        if entity.kind == "work":
            return True
        return False  # IMDb has no city entities

    yago_noise = NoiseModel(random.Random(seed + 1), drop_fact=drop_fact_yago)

    def imdb_label_noise(value: str, noise: NoiseModel) -> str:
        roll = noise.rng.random()
        if roll < label_swap_noise:
            return swap_word_order(value, noise.rng)
        if roll < label_swap_noise + label_typo_noise:
            return typo(value, noise.rng)
        return value

    imdb_noise = NoiseModel(random.Random(seed + 2), drop_fact=drop_fact_imdb)
    projection_yago = Projection(
        name="yago",
        rename=lambda uid: f"y:{_stable_id(uid, 3)}",
        attribute_specs={
            "name": AttributeSpec("rdfs:label"),
            "birthDate": AttributeSpec("y:wasBornOnDate"),
            "deathDate": AttributeSpec("y:diedOnDate"),
            "released": AttributeSpec("y:wasCreatedOnDate"),
        },
        link_specs={
            "actedIn": [LinkSpec("y:actedIn")],
            "appearedIn": [LinkSpec("y:appearedIn")],
            "directed": [LinkSpec("y:directed")],
            "wrote": [LinkSpec("y:wrote")],
            "bornIn": [LinkSpec("y:wasBornIn")],
        },
        classes_of=_yago_classes_of,
        subclass_edges=_yago_subclass_edges(),
        class_tags={},
        include=include_yago,
        noise=yago_noise,
    )
    projection_imdb = Projection(
        name="imdb",
        rename=lambda uid: f"imdb:{_stable_id(uid, 4)}",
        attribute_specs={
            "name": AttributeSpec("imdb:label", noise=imdb_label_noise),
            "birthDate": AttributeSpec("imdb:bornOn"),
            "deathDate": AttributeSpec("imdb:diedOn"),
            "released": AttributeSpec("imdb:releasedIn"),
        },
        link_specs={
            "actedIn": [LinkSpec("imdb:actedIn")],
            "appearedIn": [LinkSpec("imdb:actedIn")],  # documentaries are casts too
            "directed": [LinkSpec("imdb:director", inverted=True)],
            "wrote": [LinkSpec("imdb:writer", inverted=True)],
        },
        classes_of=_imdb_classes_of,
        subclass_edges=_IMDB_SUBCLASS_EDGES,
        class_tags={},
        include=include_imdb,
        noise=imdb_noise,
    )
    return derive_pair(
        "yago-imdb", world, projection_yago, projection_imdb, IMDB_RELATION_GOLD
    )
