"""Synthetic stand-ins for the OAEI 2010 person and restaurant benchmarks.

Table 1 of the paper reports near-perfect alignment on the OAEI 2010
*person* dataset (gold: 500 instance pairs, 4 classes, 20 relations)
and strong results on the *restaurant* dataset (gold: 112 instances,
4 classes, 12 relations; PARIS: 95 % precision / 88 % recall).  The
original dumps cannot be shipped, so these generators rebuild the same
structural challenge from a hidden world (see DESIGN.md §1):

* two ontologies with **disjoint** instance/class/relation vocabularies
  (the paper artificially renames them too, Section 6.2),
* the person world is clean — PARIS should reach ~100 % P/R/F and
  converge in about 2 iterations,
* the restaurant world carries formatting noise (phone separators,
  name casing) plus a smaller dose of content noise (digit typos, word
  swaps) and chain restaurants sharing names — this is what caps recall
  below precision, and what makes the Section 6.3 negative-evidence
  ablation behave as reported.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Set

from .names import (
    CITY_NAMES,
    COUNTRY_NAMES,
    CUISINES,
    date_iso,
    phone_number,
    restaurant_name,
    street_address,
    unique_person_names,
)
from .noise import NoiseModel
from .world import AttributeSpec, BenchmarkPair, LinkSpec, Projection, World, derive_pair


def _no_noise(rng: random.Random) -> NoiseModel:
    return NoiseModel(rng)


def _stable_id(uid: str, salt: int) -> str:
    """Deterministic opaque identifier (``hash()`` is randomized per
    process, which would make benchmarks irreproducible)."""
    return f"e{zlib.crc32(f'{uid}|{salt}'.encode()) & 0xFFFFFF:06x}"


# ----------------------------------------------------------------------
# person benchmark
# ----------------------------------------------------------------------


def _build_person_world(rng: random.Random, num_persons: int) -> World:
    world = World()
    num_states = min(12, len(COUNTRY_NAMES))
    num_cities = min(40, len(CITY_NAMES))
    for i in range(num_states):
        world.add(f"state{i}", "state", stateName=COUNTRY_NAMES[i])
    for i in range(num_cities):
        world.add(f"city{i}", "city", cityName=CITY_NAMES[i])
        world.link(f"city{i}", "inState", f"state{i % num_states}")
    names = unique_person_names(rng, num_persons)
    used_ssn: Set[str] = set()
    used_phone: Set[str] = set()
    used_street: Set[str] = set()
    for i in range(num_persons):
        ssn = None
        while ssn is None or ssn in used_ssn:
            ssn = f"{rng.randint(100, 999)}-{rng.randint(10, 99)}-{rng.randint(1000, 9999)}"
        used_ssn.add(ssn)
        phone = None
        while phone is None or phone in used_phone:
            phone = phone_number(rng)
        used_phone.add(phone)
        given, surname = names[i].split(" ", 1)
        world.add(
            f"person{i}",
            "person",
            givenName=given,
            surname=surname,
            phone=phone,
            ssn=ssn,
            birthDate=date_iso(rng, 1930, 1999),
        )
        street = None
        while street is None or street in used_street:
            street = street_address(rng)
        used_street.add(street)
        world.add(f"addr{i}", "address", street=street)
        world.link(f"person{i}", "livesAt", f"addr{i}")
        world.link(f"addr{i}", "inCity", f"city{rng.randrange(num_cities)}")
    return world


#: True relation correspondences of the person benchmark (left, right).
_PERSON_RELATION_GOLD = [
    ("p1:first_name", "p2:givenName"),
    ("p1:last_name", "p2:familyName"),
    ("p1:phone", "p2:telephone"),
    ("p1:soc_sec_id", "p2:socialSecurityNumber"),
    ("p1:date_of_birth", "p2:born"),
    ("p1:has_address", "p2:address"),
    ("p1:street", "p2:streetLine"),
    ("p1:is_in_city", "p2:cityOf"),
    ("p1:city_name", "p2:cityLabel"),
    ("p1:is_in_state", "p2:stateOf"),
]


#: Noise functions applied per world attribute when a person projection
#: has a non-trivial noise model (the real OAEI person2 ontology is a
#: corrupted copy; the clean default reproduces the paper's 100 % row).
_PERSON_ATTRIBUTE_NOISE = {
    "phone": lambda value, noise: noise.maybe_phone(value),
    "givenName": lambda value, noise: noise.maybe_name(value),
    "surname": lambda value, noise: noise.maybe_name(value),
    "street": lambda value, noise: noise.maybe_name(value),
    "birthDate": lambda value, noise: noise.maybe_date(value),
}


def person_benchmark(
    num_persons: int = 500,
    seed: int = 42,
    format_noise: float = 0.0,
    content_noise: float = 0.0,
    drop_fact: float = 0.0,
) -> BenchmarkPair:
    """The OAEI-2010-person-like benchmark (Table 1, first block).

    Parameters
    ----------
    num_persons:
        Number of gold person pairs (paper: 500).
    seed:
        Seed for the world and both projections.
    format_noise, content_noise, drop_fact:
        Corruption of the second ontology (all default 0: the paper's
        person dataset is clean enough for 100 % scores; positive
        values emulate the harder OAEI person2-style corrupted copy).
    """
    rng = random.Random(seed)
    world = _build_person_world(rng, num_persons)

    classes1 = {"person": "p1:Person", "address": "p1:Address",
                "city": "p1:City", "state": "p1:State"}
    classes2 = {"person": "p2:Human", "address": "p2:Location",
                "city": "p2:Municipality", "state": "p2:Region"}

    def projection(
        side: str,
        classes: Dict[str, str],
        attribute_names: Dict[str, str],
        link_names: Dict[str, str],
        noise: NoiseModel,
        salt: int,
    ) -> Projection:
        noisy = (
            noise.format_noise > 0 or noise.content_noise > 0
        )
        return Projection(
            name=side,
            rename=lambda uid: f"{side}:{_stable_id(uid, salt)}",
            attribute_specs={
                attr: AttributeSpec(
                    relation=rel,
                    noise=_PERSON_ATTRIBUTE_NOISE.get(attr) if noisy else None,
                )
                for attr, rel in attribute_names.items()
            },
            link_specs={link: [LinkSpec(relation=rel)] for link, rel in link_names.items()},
            classes_of=lambda entity: [classes[entity.kind]],
            subclass_edges=[],
            class_tags={name: kind for kind, name in classes.items()},
            include=lambda entity: True,
            noise=noise,
        )

    projection1 = projection(
        "p1",
        classes1,
        {
            "givenName": "p1:first_name",
            "surname": "p1:last_name",
            "phone": "p1:phone",
            "ssn": "p1:soc_sec_id",
            "birthDate": "p1:date_of_birth",
            "street": "p1:street",
            "cityName": "p1:city_name",
        },
        {
            "livesAt": "p1:has_address",
            "inCity": "p1:is_in_city",
            "inState": "p1:is_in_state",
        },
        _no_noise(random.Random(seed + 1)),
        salt=101,
    )
    projection2 = projection(
        "p2",
        classes2,
        {
            "givenName": "p2:givenName",
            "surname": "p2:familyName",
            "phone": "p2:telephone",
            "ssn": "p2:socialSecurityNumber",
            "birthDate": "p2:born",
            "street": "p2:streetLine",
            "cityName": "p2:cityLabel",
        },
        {
            "livesAt": "p2:address",
            "inCity": "p2:cityOf",
            "inState": "p2:stateOf",
        },
        NoiseModel(
            random.Random(seed + 2),
            format_noise=format_noise,
            content_noise=content_noise,
            drop_fact=drop_fact,
        ),
        salt=202,
    )
    pair = derive_pair("person", world, projection1, projection2, _PERSON_RELATION_GOLD)
    _restrict_instance_gold(pair, world, kind="person")
    return pair


# ----------------------------------------------------------------------
# restaurant benchmark
# ----------------------------------------------------------------------


def _build_restaurant_world(
    rng: random.Random, num_shared: int, num_solo1: int, num_solo2: int
) -> World:
    world = World()
    num_cities = min(30, len(CITY_NAMES))
    for i in range(num_cities):
        world.add(f"city{i}", "city", cityName=CITY_NAMES[i])
    for i, cuisine in enumerate(CUISINES):
        world.add(f"cat{i}", "category", categoryName=cuisine)
    total = num_shared + num_solo1 + num_solo2
    used_names: Dict[str, int] = {}
    used_phones: Set[str] = set()
    chain_every = 45  # periodically reuse an earlier name (chain branches)
    names: List[str] = []
    for i in range(total):
        if i and i % chain_every == 0 and names:
            name = rng.choice(names)  # a chain branch: duplicate name
        else:
            name = restaurant_name(rng)
            attempts = 0
            while name in used_names and attempts < 10:
                name = restaurant_name(rng)
                attempts += 1
        used_names[name] = used_names.get(name, 0) + 1
        names.append(name)
        phone = None
        while phone is None or phone in used_phones:
            phone = phone_number(rng)
        used_phones.add(phone)
        world.add(f"rest{i}", "restaurant", name=name, phone=phone)
        world.add(f"raddr{i}", "address", street=street_address(rng))
        world.link(f"rest{i}", "locatedAt", f"raddr{i}")
        world.link(f"raddr{i}", "inCity", f"city{rng.randrange(num_cities)}")
        world.link(f"rest{i}", "serves", f"cat{rng.randrange(len(CUISINES))}")
    return world


#: True relation correspondences of the restaurant benchmark.
_RESTAURANT_RELATION_GOLD = [
    ("r1:name", "r2:title"),
    ("r1:phone", "r2:phoneNumber"),
    ("r1:has_address", "r2:location"),
    ("r1:street", "r2:streetAddress"),
    ("r1:is_in_city", "r2:city"),
    ("r1:has_category", "r2:servesCuisine"),
]


def restaurant_benchmark(
    num_shared: int = 112,
    num_solo1: int = 6,
    num_solo2: int = 60,
    seed: int = 7,
    format_noise: float = 0.30,
    content_noise: float = 0.12,
    drop_fact: float = 0.04,
) -> BenchmarkPair:
    """The OAEI-2010-restaurant-like benchmark (Table 1, second block).

    The left ontology carries canonical values; the right one is
    corrupted with mostly-formatting noise.  Defaults are chosen so
    that, under the paper's strict literal identity, PARIS lands in the
    Table-1 neighbourhood: precision in the mid-90s, recall in the
    high-80s, convergence in ~3 iterations.

    Parameters
    ----------
    num_shared:
        Number of gold restaurant pairs (paper: 112).
    num_solo1, num_solo2:
        Restaurants exclusive to one side (the OAEI second ontology is
        much larger than the first).
    format_noise, content_noise, drop_fact:
        Noise dials of the right ontology (see
        :class:`~repro.datasets.noise.NoiseModel`).
    """
    rng = random.Random(seed)
    world = _build_restaurant_world(rng, num_shared, num_solo1, num_solo2)
    shared = {f"rest{i}" for i in range(num_shared)}
    solo1 = {f"rest{num_shared + i}" for i in range(num_solo1)}
    solo2 = {f"rest{num_shared + num_solo1 + i}" for i in range(num_solo2)}

    def include1(entity) -> bool:
        if entity.kind == "restaurant":
            return entity.uid in shared or entity.uid in solo1
        if entity.kind == "address":
            rest_uid = "rest" + entity.uid[5:]
            return rest_uid in shared or rest_uid in solo1
        return True

    def include2(entity) -> bool:
        if entity.kind == "restaurant":
            return entity.uid in shared or entity.uid in solo2
        if entity.kind == "address":
            rest_uid = "rest" + entity.uid[5:]
            return rest_uid in shared or rest_uid in solo2
        return True

    classes1 = {"restaurant": "r1:Restaurant", "address": "r1:Address",
                "city": "r1:City", "category": "r1:Category"}
    classes2 = {"restaurant": "r2:Eatery", "address": "r2:Place",
                "city": "r2:Town", "category": "r2:Cuisine"}

    projection1 = Projection(
        name="r1",
        rename=lambda uid: f"r1:{_stable_id(uid, 11)}",
        attribute_specs={
            "name": AttributeSpec("r1:name"),
            "phone": AttributeSpec("r1:phone"),
            "street": AttributeSpec("r1:street"),
        },
        link_specs={
            "locatedAt": [LinkSpec("r1:has_address")],
            "inCity": [LinkSpec("r1:is_in_city")],
            "serves": [LinkSpec("r1:has_category")],
        },
        classes_of=lambda entity: [classes1[entity.kind]],
        subclass_edges=[],
        class_tags={name: kind for kind, name in classes1.items()},
        include=include1,
        noise=_no_noise(random.Random(seed + 1)),
    )
    noise2 = NoiseModel(
        random.Random(seed + 2),
        format_noise=format_noise,
        content_noise=content_noise,
        drop_fact=drop_fact,
    )
    projection2 = Projection(
        name="r2",
        rename=lambda uid: f"r2:{_stable_id(uid, 22)}",
        attribute_specs={
            "name": AttributeSpec("r2:title", noise=lambda v, n: n.maybe_name(v)),
            "phone": AttributeSpec("r2:phoneNumber", noise=lambda v, n: n.maybe_phone(v)),
            "street": AttributeSpec("r2:streetAddress", noise=lambda v, n: n.maybe_name(v)),
        },
        link_specs={
            "locatedAt": [LinkSpec("r2:location")],
            "inCity": [LinkSpec("r2:city")],
            "serves": [LinkSpec("r2:servesCuisine")],
        },
        classes_of=lambda entity: [classes2[entity.kind]],
        subclass_edges=[],
        class_tags={name: kind for kind, name in classes2.items()},
        include=include2,
        noise=noise2,
    )
    pair = derive_pair(
        "restaurant", world, projection1, projection2, _RESTAURANT_RELATION_GOLD
    )
    _restrict_instance_gold(pair, world, kind="restaurant")
    return pair


def _restrict_instance_gold(pair: BenchmarkPair, world: World, kind: str) -> None:
    """Keep only instances of ``kind`` in the gold standard.

    The OAEI gold standards list only the benchmark's primary entities
    (persons, restaurants); supporting entities (addresses, cities) are
    aligned by PARIS but not evaluated, and our metrics follow the same
    protocol.
    """
    primary = {
        pair.mapping1[e.uid]
        for e in world.entities()
        if e.kind == kind and e.uid in pair.mapping1
    }
    pair.gold.instance_pairs = {
        (left, right) for left, right in pair.gold.instance_pairs if left in primary
    }
