"""Noise models for the synthetic benchmark generators.

The OAEI restaurant dataset's difficulty (and the failure mode of
negative evidence under strict literal identity, Section 6.3) comes
from *formatting* noise: "a phone number 213/467-1108 instead of
213-467-1108".  The YAGO/IMDb experiment additionally exhibits *content*
noise: word-order swaps ("Sugata Sanshirô" vs "Sanshiro Sugata"),
typos, and dropped facts.  This module implements both families, all
driven by a caller-provided ``random.Random`` so every dataset is
reproducible from its seed.
"""

from __future__ import annotations

import random


#: Separators used to re-format phone numbers without changing digits.
_PHONE_SEPARATOR_VARIANTS = ("/", ".", " ", "")


def reformat_phone(phone: str, rng: random.Random) -> str:
    """Change a phone number's punctuation but not its digits.

    The result differs lexically but normalizes to the same string —
    exactly the noise the Section 6.3 normalized measure repairs.
    """
    separator = rng.choice(_PHONE_SEPARATOR_VARIANTS)
    parts = phone.split("-")
    if separator == "/" and len(parts) == 3:
        return f"{parts[0]}/{parts[1]}-{parts[2]}"
    return separator.join(parts)


def corrupt_digit(text: str, rng: random.Random) -> str:
    """Replace one digit with a different one (content noise —
    unrecoverable by normalization)."""
    positions = [i for i, ch in enumerate(text) if ch.isdigit()]
    if not positions:
        return text
    position = rng.choice(positions)
    old = text[position]
    new = rng.choice([d for d in "0123456789" if d != old])
    return text[:position] + new + text[position + 1 :]


def typo(text: str, rng: random.Random) -> str:
    """Introduce one random character-level typo (swap, drop or double)."""
    if len(text) < 3:
        return text
    position = rng.randrange(1, len(text) - 1)
    kind = rng.choice(("swap", "drop", "double"))
    if kind == "swap":
        chars = list(text)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    if kind == "drop":
        return text[:position] + text[position + 1 :]
    return text[:position] + text[position] + text[position:]


def recase_and_punctuate(text: str, rng: random.Random) -> str:
    """Formatting-only name noise: case changes and punctuation drift.

    Normalization-equivalent to the original (lowercase + alphanumeric
    forms match).
    """
    choice = rng.choice(("upper", "lower", "amp", "dots"))
    if choice == "upper":
        return text.upper()
    if choice == "lower":
        return text.lower()
    if choice == "amp" and " and " in text:
        return text.replace(" and ", " & ")
    return text.replace(" ", ". ", 1) if " " in text else text


def swap_word_order(text: str, rng: random.Random) -> str:
    """Swap the first two words ("Sugata Sanshiro" → "Sanshiro Sugata").

    This is *content* noise for the strict measure and still a mismatch
    after normalization (character order differs).
    """
    words = text.split(" ")
    if len(words) < 2:
        return text
    words[0], words[1] = words[1], words[0]
    return " ".join(words)


def reformat_date(date_iso: str, rng: random.Random) -> str:
    """Render an ISO date in a different layout (slash or year-only)."""
    year, month, day = date_iso.split("-")
    choice = rng.choice(("slash", "year"))
    if choice == "slash":
        return f"{int(month)}/{int(day)}/{year}"
    return year


class NoiseModel:
    """A bundle of per-field corruption probabilities.

    Each ``maybe_*`` method flips a coin and corrupts the value or
    returns it unchanged.  Formatting noise and content noise have
    separate dials so benchmarks can reproduce the paper's two regimes.

    Parameters
    ----------
    rng:
        Seeded random source (shared with the generator).
    format_noise:
        Probability of formatting-only corruption per value.
    content_noise:
        Probability of content corruption (digit change, word swap,
        typo) per value.
    drop_fact:
        Probability that a derived ontology omits a fact entirely.
    """

    def __init__(
        self,
        rng: random.Random,
        format_noise: float = 0.0,
        content_noise: float = 0.0,
        drop_fact: float = 0.0,
    ) -> None:
        for name, value in (
            ("format_noise", format_noise),
            ("content_noise", content_noise),
            ("drop_fact", drop_fact),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        self.rng = rng
        self.format_noise = format_noise
        self.content_noise = content_noise
        self.drop_fact = drop_fact

    def keep_fact(self) -> bool:
        """Whether a fact survives the fact-dropping coin."""
        return self.rng.random() >= self.drop_fact

    def maybe_phone(self, phone: str) -> str:
        """Apply phone noise: reformat (format) or corrupt a digit (content)."""
        roll = self.rng.random()
        if roll < self.content_noise:
            return corrupt_digit(phone, self.rng)
        if roll < self.content_noise + self.format_noise:
            return reformat_phone(phone, self.rng)
        return phone

    def maybe_name(self, name: str) -> str:
        """Apply name noise: recase/punctuate (format) or swap/typo (content)."""
        roll = self.rng.random()
        if roll < self.content_noise:
            corruption = swap_word_order if self.rng.random() < 0.5 else typo
            return corruption(name, self.rng)
        if roll < self.content_noise + self.format_noise:
            return recase_and_punctuate(name, self.rng)
        return name

    def maybe_date(self, date: str) -> str:
        """Apply date noise: alternative layout (format only)."""
        if self.rng.random() < self.format_noise:
            return reformat_date(date, self.rng)
        return date
