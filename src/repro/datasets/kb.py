"""Synthetic YAGO/DBpedia-style knowledge-base pair (Tables 2–4, Figs 1–2).

The paper's large-scale experiment aligns YAGO (2.8 M instances, 292 k
fine-grained classes, 67 relations) with DBpedia (2.4 M instances, 318
hand-built classes, 1 109 relations).  We reproduce the *structure* of
that challenge at laptop scale (see DESIGN.md §1):

* one hidden encyclopedic world (people, places, organizations,
  creative works) projected into two KBs with **independently designed**
  vocabularies;
* relation heterogeneity exactly as reported in Table 4 — inverses
  (``actedIn`` vs ``starring⁻``), relation splitting by target type
  (``created`` vs ``author``/``writer``/``artist``), symmetric
  relations emitted in random directions (``isMarriedTo``/``spouse``),
  granularity mixing (DBpedia's ``birthPlace`` sometimes holds the
  country instead of the city, which is what makes PARIS discover the
  weak-but-real ``isCitizenOf ⊆ birthPlace`` alignment);
* class heterogeneity: a deep occupation-by-country taxonomy on the
  YAGO side (hundreds of small leaf classes) against a shallow
  hand-modelled hierarchy on the DBpedia side;
* selection bias: each KB covers an overlapping-but-different subset of
  the world (YAGO selects pages with many categories, DBpedia pages
  with infoboxes), so a large minority of instances have no
  counterpart;
* noise: label formatting drift, date layout drift, homonyms, shared
  titles between films and songs (the paper's motivating case for
  negative evidence), and per-fact dropping.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Tuple

from .names import (
    AWARD_NAMES,
    CITY_NAMES,
    COUNTRY_NAMES,
    OCCUPATIONS,
    date_iso,
    movie_title,
    unique_person_names,
    university_name,
)
from .noise import NoiseModel
from .world import AttributeSpec, BenchmarkPair, LinkSpec, Projection, World, derive_pair

#: Work subkinds with their share of the creative-work population.
_WORK_KINDS = (("book", 0.4), ("film", 0.35), ("song", 0.25))


def _stable_fraction(uid: str, salt: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) per (uid, salt)."""
    return (zlib.crc32(f"{uid}|{salt}".encode()) & 0xFFFFFFFF) / 2**32


def _stable_id(uid: str, salt: int) -> str:
    return f"e{zlib.crc32(f'{uid}|{salt}'.encode()) & 0xFFFFFF:06x}"


def build_encyclopedic_world(
    rng: random.Random,
    num_persons: int = 1500,
    num_works: int = 800,
    homonym_rate: float = 0.03,
    shared_title_rate: float = 0.08,
) -> World:
    """Build the hidden world behind the YAGO/DBpedia-like pair.

    Parameters
    ----------
    num_persons, num_works:
        Population sizes (people dominate, as in the real KBs).
    homonym_rate:
        Fraction of persons deliberately given an existing person's
        name (precision hazard).
    shared_title_rate:
        Fraction of works deliberately given an existing work's title —
        typically a film and a song sharing a name, the paper's
        "movies and songs that share one value (the title)".
    """
    world = World()
    num_countries = len(COUNTRY_NAMES)
    for i, country in enumerate(COUNTRY_NAMES):
        world.add(f"country{i}", "country", tags={"place"}, name=country)
    num_cities = len(CITY_NAMES)
    city_country: Dict[str, str] = {}
    for i, city in enumerate(CITY_NAMES):
        uid = f"city{i}"
        world.add(uid, "city", tags={"place"}, name=city)
        country_uid = f"country{rng.randrange(num_countries)}"
        world.link(uid, "locatedIn", country_uid)
        city_country[uid] = country_uid
    num_universities = 30
    for i in range(num_universities):
        uid = f"uni{i}"
        world.add(uid, "university", tags={"organization"}, name=university_name(rng))
        world.link(uid, "locatedIn", f"city{rng.randrange(num_cities)}")
    for i, award in enumerate(AWARD_NAMES):
        world.add(f"award{i}", "award", name=award)

    names = unique_person_names(rng, num_persons)
    person_country: Dict[str, str] = {}
    for i in range(num_persons):
        uid = f"person{i}"
        name = names[i]
        if i and rng.random() < homonym_rate:
            name = world.get(f"person{rng.randrange(i)}").attributes["name"]
        occupation = rng.choice(OCCUPATIONS)
        birth_city = f"city{rng.randrange(num_cities)}"
        # Citizenship correlates with the birthplace's country (80 %),
        # which is what gives isCitizenOf ⊆ birthPlace its weak score.
        if rng.random() < 0.8:
            citizenship = city_country[birth_city]
        else:
            citizenship = f"country{rng.randrange(num_countries)}"
        person_country[uid] = citizenship
        world.add(
            uid,
            "person",
            tags={occupation, f"citizen:{citizenship}"},
            name=name,
            birthDate=date_iso(rng, 1900, 1990),
        )
        world.link(uid, "bornIn", birth_city)
        world.link(uid, "bornInCountry", city_country[birth_city])
        world.link(uid, "citizenOf", citizenship)
        if rng.random() < 0.3:
            world.link(uid, "diedIn", f"city{rng.randrange(num_cities)}")
        if rng.random() < 0.4:
            world.link(uid, "graduatedFrom", f"uni{rng.randrange(num_universities)}")
        if rng.random() < 0.15:
            world.link(uid, "wonPrize", f"award{rng.randrange(len(AWARD_NAMES))}")
        if i and rng.random() < 0.25:
            partner = f"person{rng.randrange(i)}"
            world.link(uid, "marriedTo", partner)
        if i and rng.random() < 0.3:
            child = f"person{rng.randrange(i)}"
            if child != uid:
                world.link(uid, "hasChild", child)

    creators = [f"person{i}" for i in range(num_persons)]
    titles: List[str] = []
    for i in range(num_works):
        uid = f"work{i}"
        roll = rng.random()
        cumulative = 0.0
        kind = "book"
        for work_kind, share in _WORK_KINDS:
            cumulative += share
            if roll < cumulative:
                kind = work_kind
                break
        if titles and rng.random() < shared_title_rate:
            title = rng.choice(titles)  # film/song title collision
        else:
            title = movie_title(rng)
        titles.append(title)
        world.add(
            uid,
            "work",
            tags={kind},
            name=title,
            published=str(rng.randint(1930, 2010)),
        )
        creator = rng.choice(creators)
        world.link(creator, "created", uid)
        if kind == "film":
            for _ in range(rng.randint(2, 5)):
                actor = rng.choice(creators)
                world.link(actor, "actedIn", uid)
    return world


#: Correct relation correspondences between the two projections.
KB_RELATION_GOLD = [
    ("rdfs:label", "dbp:name"),
    ("y:wasBornIn", "dbp:birthPlace"),
    ("y:diedIn", "dbp:deathPlace"),
    ("y:isCitizenOf", "dbp:nationality"),
    ("y:isMarriedTo", "dbp:spouse"),
    ("y:isMarriedTo", "dbp:spouse^-1"),
    ("y:hasChild", "dbp:parent^-1"),
    ("y:hasChild", "dbp:child"),
    ("y:graduatedFrom", "dbp:almaMater"),
    ("y:hasWonPrize", "dbp:award"),
    ("y:isLocatedIn", "dbp:locatedIn"),
    ("y:created", "dbp:author^-1"),
    ("y:created", "dbp:writer^-1"),
    ("y:created", "dbp:artist^-1"),
    ("y:actedIn", "dbp:starring^-1"),
    ("y:wasBornOnDate", "dbp:birthDate"),
    ("y:wasCreatedOnDate", "dbp:releaseDate"),
]

#: Weak-but-real correspondences (counted correct in the paper's manual
#: evaluation of Table 4 even though semantically approximate).
KB_RELATION_GOLD_APPROXIMATE = [
    ("y:isCitizenOf", "dbp:birthPlace"),
]


def _yago_classes_of(entity, person_country: Dict[str, str]) -> List[str]:
    """YAGO-style fine-grained leaf classes (occupation × country)."""
    if entity.kind == "person":
        occupation = next((t for t in entity.tags if t in OCCUPATIONS), None)
        country = person_country.get(entity.uid, "")
        country_label = country.replace("country", "c")
        if occupation:
            return [f"y:{occupation}From_{country_label}"]
        return ["y:person"]
    if entity.kind == "work":
        for kind in ("book", "film", "song"):
            if kind in entity.tags:
                return [f"y:{kind}"]
        return ["y:creativeWork"]
    mapping = {
        "city": "y:city",
        "country": "y:country",
        "university": "y:university",
        "award": "y:award",
    }
    return [mapping.get(entity.kind, "y:entity")]


def _yago_subclass_edges(person_country: Dict[str, str]) -> List[Tuple[str, str]]:
    edges: List[Tuple[str, str]] = []
    countries = sorted({c.replace("country", "c") for c in person_country.values()})
    for occupation in OCCUPATIONS:
        edges.append((f"y:{occupation}", "y:person"))
        for country_label in countries:
            edges.append((f"y:{occupation}From_{country_label}", f"y:{occupation}"))
    for kind in ("book", "film", "song"):
        edges.append((f"y:{kind}", "y:creativeWork"))
    edges.extend(
        [
            ("y:person", "y:entity"),
            ("y:creativeWork", "y:entity"),
            ("y:city", "y:location"),
            ("y:country", "y:location"),
            ("y:location", "y:entity"),
            ("y:university", "y:entity"),
            ("y:award", "y:entity"),
        ]
    )
    return edges


#: Occupation → DBpedia-style class.
_DBP_OCCUPATION_CLASS = {
    "singer": "dbp:MusicalArtist",
    "composer": "dbp:MusicalArtist",
    "actor": "dbp:Actor",
    "director": "dbp:Actor",
    "writer": "dbp:Writer",
    "journalist": "dbp:Writer",
    "physicist": "dbp:Scientist",
    "chemist": "dbp:Scientist",
    "biologist": "dbp:Scientist",
    "economist": "dbp:Scientist",
    "footballer": "dbp:SoccerPlayer",
    "politician": "dbp:Politician",
    "painter": "dbp:Artist",
    "architect": "dbp:Artist",
    "philosopher": "dbp:Writer",
}


def _dbp_classes_of(entity) -> List[str]:
    """DBpedia-style shallow hand-modelled classes."""
    if entity.kind == "person":
        occupation = next((t for t in entity.tags if t in OCCUPATIONS), None)
        cls = _DBP_OCCUPATION_CLASS.get(occupation or "")
        return [cls] if cls else ["dbp:Person"]
    if entity.kind == "work":
        mapping = {"book": "dbp:Book", "film": "dbp:Film", "song": "dbp:Song"}
        for kind, cls in mapping.items():
            if kind in entity.tags:
                return [cls]
        return ["dbp:Work"]
    mapping = {
        "city": "dbp:City",
        "country": "dbp:Country",
        "university": "dbp:University",
        "award": "dbp:Award",
    }
    return [mapping.get(entity.kind, "dbp:Thing")]


_DBP_SUBCLASS_EDGES = [
    ("dbp:MusicalArtist", "dbp:Artist"),
    ("dbp:Actor", "dbp:Artist"),
    ("dbp:Writer", "dbp:Artist"),
    ("dbp:Artist", "dbp:Person"),
    ("dbp:Scientist", "dbp:Person"),
    ("dbp:SoccerPlayer", "dbp:Athlete"),
    ("dbp:Athlete", "dbp:Person"),
    ("dbp:Politician", "dbp:Person"),
    ("dbp:Person", "dbp:Thing"),
    ("dbp:Book", "dbp:Work"),
    ("dbp:Film", "dbp:Work"),
    ("dbp:Song", "dbp:Work"),
    ("dbp:Work", "dbp:Thing"),
    ("dbp:City", "dbp:Place"),
    ("dbp:Country", "dbp:Place"),
    ("dbp:Place", "dbp:Thing"),
    ("dbp:University", "dbp:Organisation"),
    ("dbp:Organisation", "dbp:Thing"),
    ("dbp:Award", "dbp:Thing"),
]

#: High-level classes excluded from class-precision sampling, mirroring
#: the paper's exclusion of 19 top classes like ``yagoGeoEntity``.
KB_EXCLUDED_CLASSES = frozenset(
    {"y:entity", "y:person", "y:creativeWork", "y:location", "dbp:Thing",
     "dbp:Person", "dbp:Work", "dbp:Place", "dbp:Artist"}
)


def yago_dbpedia_pair(
    num_persons: int = 1500,
    num_works: int = 800,
    seed: int = 2011,
    yago_coverage: float = 0.75,
    dbpedia_coverage: float = 0.65,
    drop_fact_yago: float = 0.12,
    drop_fact_dbpedia: float = 0.20,
    label_format_noise: float = 0.10,
    label_content_noise: float = 0.04,
) -> BenchmarkPair:
    """Build the YAGO/DBpedia-like benchmark pair.

    Coverage parameters control selection bias (which world entities
    each KB includes); with the defaults, the two KBs share roughly
    half of their instances, like the real pair (1.4 M shared out of
    2.4–2.8 M each).
    """
    rng = random.Random(seed)
    world = build_encyclopedic_world(rng, num_persons=num_persons, num_works=num_works)
    person_country = {
        e.uid: next(
            (t.split(":", 1)[1] for t in e.tags if t.startswith("citizen:")), ""
        )
        for e in world.entities()
        if e.kind == "person"
    }

    def include_yago(entity) -> bool:
        # YAGO keeps category-rich pages: bias toward persons/works.
        if entity.kind in ("country", "city", "university", "award"):
            return True
        return _stable_fraction(entity.uid, "yago") < yago_coverage

    def include_dbpedia(entity) -> bool:
        if entity.kind in ("country", "city", "university", "award"):
            return True
        return _stable_fraction(entity.uid, "dbp") < dbpedia_coverage

    yago_noise = NoiseModel(random.Random(seed + 1), drop_fact=drop_fact_yago)
    dbp_noise = NoiseModel(
        random.Random(seed + 2),
        format_noise=label_format_noise,
        content_noise=label_content_noise,
        drop_fact=drop_fact_dbpedia,
    )
    projection_yago = Projection(
        name="yago",
        rename=lambda uid: f"y:{_stable_id(uid, 1)}",
        attribute_specs={
            "name": AttributeSpec("rdfs:label"),
            "birthDate": AttributeSpec("y:wasBornOnDate"),
            "published": AttributeSpec("y:wasCreatedOnDate"),
        },
        link_specs={
            "bornIn": [LinkSpec("y:wasBornIn")],
            "diedIn": [LinkSpec("y:diedIn")],
            "citizenOf": [LinkSpec("y:isCitizenOf")],
            "graduatedFrom": [LinkSpec("y:graduatedFrom")],
            "wonPrize": [LinkSpec("y:hasWonPrize")],
            "marriedTo": [LinkSpec("y:isMarriedTo")],
            "hasChild": [LinkSpec("y:hasChild")],
            "created": [LinkSpec("y:created")],
            "actedIn": [LinkSpec("y:actedIn")],
            "locatedIn": [LinkSpec("y:isLocatedIn")],
        },
        classes_of=lambda entity: _yago_classes_of(entity, person_country),
        subclass_edges=_yago_subclass_edges(person_country),
        class_tags={},
        include=include_yago,
        noise=yago_noise,
    )
    projection_dbpedia = Projection(
        name="dbpedia",
        rename=lambda uid: f"dbp:{_stable_id(uid, 2)}",
        attribute_specs={
            "name": AttributeSpec("dbp:name", noise=lambda v, n: n.maybe_name(v)),
            "birthDate": AttributeSpec("dbp:birthDate", noise=lambda v, n: n.maybe_date(v)),
            "published": AttributeSpec("dbp:releaseDate"),
        },
        link_specs={
            # Granularity mixing: birthPlace is usually the city but
            # sometimes the country (30 %), as in real DBpedia.
            "bornIn": [LinkSpec("dbp:birthPlace", keep_probability=0.7)],
            "bornInCountry": [LinkSpec("dbp:birthPlace", keep_probability=0.3)],
            "diedIn": [LinkSpec("dbp:deathPlace")],
            "citizenOf": [LinkSpec("dbp:nationality")],
            "graduatedFrom": [LinkSpec("dbp:almaMater")],
            "wonPrize": [LinkSpec("dbp:award")],
            # Symmetric relation emitted in a random direction.
            "marriedTo": [
                LinkSpec("dbp:spouse", keep_probability=0.5),
                LinkSpec("dbp:spouse", inverted=True, keep_probability=0.5),
            ],
            # DBpedia models parenthood from the child's side (mostly).
            "hasChild": [
                LinkSpec("dbp:parent", inverted=True, keep_probability=0.6),
                LinkSpec("dbp:child", keep_probability=0.3),
            ],
            # Relation splitting by target type, all inverted.
            "created": [
                LinkSpec("dbp:author", inverted=True, only_target_tag="book"),
                LinkSpec("dbp:writer", inverted=True, only_target_tag="film"),
                LinkSpec("dbp:artist", inverted=True, only_target_tag="song"),
            ],
            "actedIn": [LinkSpec("dbp:starring", inverted=True)],
            "locatedIn": [LinkSpec("dbp:locatedIn")],
        },
        classes_of=_dbp_classes_of,
        subclass_edges=_DBP_SUBCLASS_EDGES,
        class_tags={},
        include=include_dbpedia,
        noise=dbp_noise,
    )
    gold_relations = KB_RELATION_GOLD + KB_RELATION_GOLD_APPROXIMATE
    return derive_pair(
        "yago-dbpedia", world, projection_yago, projection_dbpedia, gold_relations
    )
