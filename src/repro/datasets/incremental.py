"""Delta workloads for the incremental alignment service.

The service benchmarks and warm-start equality tests need a knowledge
base whose *structure matches the incremental use case*: a stream of
self-contained additions (new entities with their facts, à la fresh
Wikipedia articles) landing on a large stable corpus.  The **family
fixture** below builds exactly that — many small, mutually disconnected
entity clusters ("families": two persons and their city), every cluster
isomorphic to every other, with cluster-unique literals:

* *disconnected* means a delta's influence is contained: a cold realign
  recomputes every cluster, the warm-start fixpoint only the touched
  ones — which is what the latency microbenchmark measures;
* *isomorphic and uniform* means adding clusters preserves every
  relation's functionality and Eq. 12 ratios exactly (same rationals),
  keeping the untouched clusters' scores numerically stable — which is
  what makes cold-vs-warm equality assertable at 1e-9;
* *unique literals* anchor each entity to exactly one counterpart, so
  the fixpoint has a single attractor and reaches exact stationarity
  in a handful of passes.

Both sides use independently named vocabularies (as everywhere else in
:mod:`repro.datasets`), so the aligner still has real relation
alignment work to do.
"""

from __future__ import annotations

from typing import List, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Relation, Resource
from ..rdf.triples import Triple
from ..rdf.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF

#: (left relation, right relation) vocabulary used by the fixture.
FAMILY_RELATIONS = (
    ("name", "label"),
    ("bornIn", "birthPlace"),
    ("birthYear", "yearBorn"),
    ("marriedTo", "spouse"),
    ("cityName", "cityLabel"),
)

#: (left class, right class) vocabulary for the optional taxonomy.
FAMILY_CLASSES = (
    ("Human", "Person"),
    ("Town", "Municipality"),
)

#: (left root, right root) each side's classes are subsumed under.
FAMILY_ROOTS = ("LivingEntity", "Thing")


def _family_triples(index: int, side: int, with_classes: bool = False) -> List[Triple]:
    """The facts of family ``index`` on one side (0 = left, 1 = right).

    Every family has the same shape: two persons with unique names and
    a shared birth year, married to each other, born in the family's
    own city, which carries a unique city name.  With ``with_classes``
    the persons and the city are also typed (``rdf:type`` statements
    feed only the Eq. 17 class pass, never Eq. 13, so the instance
    scores are untouched).
    """
    prefix = "p" if side == 0 else "q"
    name_rel, place_rel, year_rel, spouse_rel, city_rel = (
        Relation(pair[side]) for pair in FAMILY_RELATIONS
    )
    person_a = Resource(f"{prefix}{index}a")
    person_b = Resource(f"{prefix}{index}b")
    city = Resource(f"{prefix}city{index}")
    year = Literal(str(1200 + index))
    triples = [
        Triple(person_a, name_rel, Literal(f"Person {index} Alpha")),
        Triple(person_b, name_rel, Literal(f"Person {index} Beta")),
        Triple(person_a, year_rel, year),
        Triple(person_b, year_rel, year),
        Triple(person_a, place_rel, city),
        Triple(person_b, place_rel, city),
        Triple(person_a, spouse_rel, person_b),
        Triple(city, city_rel, Literal(f"City of Family {index}")),
    ]
    if with_classes:
        person_cls, city_cls = (Resource(pair[side]) for pair in FAMILY_CLASSES)
        triples.extend(
            [
                Triple(person_a, RDF_TYPE, person_cls),
                Triple(person_b, RDF_TYPE, person_cls),
                Triple(city, RDF_TYPE, city_cls),
            ]
        )
    return triples


def family_schema(side: int) -> List[Triple]:
    """One side's subclass edges (both classes under the side's root)."""
    root = Resource(FAMILY_ROOTS[side])
    return [
        Triple(Resource(pair[side]), RDFS_SUBCLASSOF, root)
        for pair in FAMILY_CLASSES
    ]


def family_triples(indexes, side: int, with_classes: bool = False) -> List[Triple]:
    """Concatenated family facts for one side, in family order."""
    triples: List[Triple] = []
    for index in indexes:
        triples.extend(_family_triples(index, side, with_classes=with_classes))
    return triples


def family_pair(
    num_families: int = 100, with_classes: bool = False
) -> Tuple[Ontology, Ontology]:
    """Build the two-sided family fixture with ``num_families`` clusters.

    Deterministic by construction (no randomness): the same call always
    produces ontologies with identical insertion orders, which is what
    lets tests rebuild "base + delta" corpora bit-compatibly with a
    served base that absorbed the delta live.  ``with_classes`` adds
    each side's two-class taxonomy (plus a root) and types every
    person/city, giving the Eq. 17 class pass real work.
    """
    left = Ontology("families-left")
    right = Ontology("families-right")
    if with_classes:
        for triple in family_schema(0):
            left.add_triple(triple)
        for triple in family_schema(1):
            right.add_triple(triple)
    for index in range(num_families):
        for triple in _family_triples(index, 0, with_classes=with_classes):
            left.add_triple(triple)
        for triple in _family_triples(index, 1, with_classes=with_classes):
            right.add_triple(triple)
    return left, right


def family_addition(
    start: int, count: int, with_classes: bool = False
) -> Tuple[List[Triple], List[Triple]]:
    """Delta triples adding families ``start .. start+count-1`` to both sides."""
    indexes = range(start, start + count)
    return (
        family_triples(indexes, 0, with_classes=with_classes),
        family_triples(indexes, 1, with_classes=with_classes),
    )


def family_removal(indexes) -> Tuple[List[Triple], List[Triple]]:
    """Delta triples retracting the marriage facts of some families.

    Removing the ``marriedTo``/``spouse`` link (a non-anchor fact)
    weakens the in-family evidence without making any match ambiguous,
    so the fixpoint still has a unique attractor after the removal.
    """
    left: List[Triple] = []
    right: List[Triple] = []
    for index in indexes:
        left.append(
            Triple(Resource(f"p{index}a"), Relation("marriedTo"), Resource(f"p{index}b"))
        )
        right.append(
            Triple(Resource(f"q{index}a"), Relation("spouse"), Resource(f"q{index}b"))
        )
    return left, right
