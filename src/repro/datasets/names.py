"""Deterministic pools of synthetic names and values.

The benchmark generators need realistic-looking person names, city
names, phone numbers, restaurant names, movie titles and dates.  The
pools below are seeded and purely synthetic — no external data files —
but large enough that collisions are rare at benchmark scale, and a few
deliberate collisions (shared surnames, same-name movies) remain
possible, which the generators exploit for hard cases.
"""

from __future__ import annotations

import random
from typing import List, Tuple

FIRST_NAMES: Tuple[str, ...] = (
    "Alice", "Amelia", "Anton", "Astrid", "Boris", "Bruno", "Carla", "Carmen",
    "Cedric", "Clara", "Dmitri", "Dora", "Edgar", "Elena", "Elias", "Emma",
    "Felix", "Fiona", "Gaspard", "Greta", "Hanna", "Hugo", "Ines", "Igor",
    "Jasper", "Jolanda", "Kai", "Katya", "Lars", "Leona", "Magnus", "Marta",
    "Nadia", "Nils", "Olga", "Oscar", "Paula", "Pierre", "Quentin", "Rosa",
    "Ruben", "Selma", "Stefan", "Tamara", "Theo", "Ulrike", "Viktor", "Wanda",
    "Xavier", "Yana", "Yusuf", "Zelda", "Milan", "Sofia", "Aldo", "Bianca",
    "Cyrus", "Delia", "Ewan", "Freya",
)

SURNAMES: Tuple[str, ...] = (
    "Abel", "Almeida", "Baranov", "Becker", "Calloway", "Castellan", "Dubois",
    "Durand", "Eklund", "Eriksen", "Falk", "Ferreira", "Galvan", "Grimaldi",
    "Hartmann", "Holloway", "Ibanez", "Ivanov", "Jansen", "Jokinen", "Kovacs",
    "Kratochvil", "Lindgren", "Lombardi", "Marchetti", "Moreau", "Novak",
    "Nystrom", "Okafor", "Olsen", "Pavlov", "Petrescu", "Quirolo", "Rahal",
    "Rossi", "Ruiz", "Santos", "Schneider", "Takala", "Tanaka", "Ullman",
    "Uyeda", "Vance", "Vasquez", "Weber", "Winther", "Xiong", "Yamada",
    "Zamora", "Zeller", "Okonkwo", "Haugen", "Petit", "Soler", "Brandt",
    "Costa", "Dahl", "Egger", "Fabre", "Giroux",
)

CITY_NAMES: Tuple[str, ...] = (
    "Ardenport", "Bellmar", "Brightwater", "Calder Bay", "Cinderfall",
    "Dunmore", "Eastgate", "Elmhollow", "Fairhaven", "Fernmoor", "Glasbury",
    "Greywick", "Harrowdale", "Highcliff", "Ironfield", "Jadeport",
    "Kestrel Hill", "Lakemont", "Larkspur", "Marlowe", "Mistvale",
    "Northbridge", "Oakendale", "Ostermond", "Pinecrest", "Quillhaven",
    "Ravensport", "Redmarsh", "Silverstrand", "Stonegate", "Summerfield",
    "Thornbury", "Umberfen", "Valewood", "Westerling", "Winterholm",
    "Yarrowfield", "Zephyr Point", "Ashcombe", "Briarton",
)

COUNTRY_NAMES: Tuple[str, ...] = (
    "Arvandor", "Belmira", "Cordavia", "Drelland", "Estovia", "Ferronia",
    "Galdria", "Hestland", "Illyra", "Jorvania", "Kestovia", "Lundmark",
)

STREET_NAMES: Tuple[str, ...] = (
    "Alder Street", "Birch Avenue", "Cedar Lane", "Dogwood Drive",
    "Elm Street", "Foxglove Road", "Garnet Boulevard", "Hazel Court",
    "Iris Way", "Juniper Street", "Kingfisher Road", "Laurel Avenue",
    "Maple Street", "Nettle Lane", "Orchard Road", "Primrose Avenue",
    "Quarry Street", "Rosewood Drive", "Spruce Lane", "Tamarind Road",
    "Union Street", "Violet Way", "Willow Avenue", "Yewtree Lane",
)

CUISINES: Tuple[str, ...] = (
    "American", "Barbecue", "Cafe", "Chinese", "Delicatessen", "French",
    "Greek", "Indian", "Italian", "Japanese", "Mediterranean", "Mexican",
    "Seafood", "Steakhouse", "Thai", "Vegetarian",
)

RESTAURANT_WORDS: Tuple[str, ...] = (
    "Golden", "Silver", "Blue", "Red", "Jade", "Royal", "Grand", "Little",
    "Old", "New", "Rustic", "Corner", "Harbor", "Garden", "Lantern",
    "Pepper", "Olive", "Saffron", "Cinnamon", "Copper", "Velvet", "Ivory",
)

RESTAURANT_NOUNS: Tuple[str, ...] = (
    "Table", "Kitchen", "Bistro", "Grill", "House", "Terrace", "Oven",
    "Spoon", "Fork", "Plate", "Cellar", "Pantry", "Hearth", "Skillet",
)

MOVIE_ADJECTIVES: Tuple[str, ...] = (
    "Silent", "Crimson", "Endless", "Broken", "Hidden", "Burning", "Frozen",
    "Midnight", "Golden", "Savage", "Gentle", "Lost", "Final", "Distant",
    "Electric", "Hollow", "Scarlet", "Wandering", "Shattered", "Luminous",
)

MOVIE_NOUNS: Tuple[str, ...] = (
    "Horizon", "Empire", "Garden", "Voyage", "Winter", "Summer", "River",
    "Mountain", "Echo", "Promise", "Shadow", "Harvest", "Carnival", "Mirror",
    "Station", "Harbor", "Orchard", "Lantern", "Cathedral", "Frontier",
)

OCCUPATIONS: Tuple[str, ...] = (
    "singer", "actor", "writer", "physicist", "chemist", "biologist",
    "politician", "footballer", "painter", "composer", "architect",
    "philosopher", "economist", "journalist", "director",
)

AWARD_NAMES: Tuple[str, ...] = (
    "Meridian Prize", "Aurora Medal", "Golden Quill", "Laurel Trophy",
    "Crystal Orb", "Beacon Award", "Summit Honor", "Vanguard Prize",
    "Heritage Medal", "Zenith Award",
)

UNIVERSITY_WORDS: Tuple[str, ...] = (
    "Northern", "Southern", "Central", "Royal", "Technical", "National",
    "Coastal", "Metropolitan", "Highland", "Riverside",
)


def person_name(rng: random.Random) -> str:
    """A synthetic ``First Last`` person name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(SURNAMES)}"


def unique_person_names(rng: random.Random, count: int) -> List[str]:
    """``count`` distinct person names (suffixing Roman-style ordinals on
    collision, like real KBs disambiguate homonyms)."""
    seen = {}
    names = []
    while len(names) < count:
        name = person_name(rng)
        occurrences = seen.get(name, 0)
        seen[name] = occurrences + 1
        if occurrences:
            name = f"{name} {'I' * (occurrences + 1)}"
        names.append(name)
    return names


def city_name(rng: random.Random) -> str:
    """A synthetic city name."""
    return rng.choice(CITY_NAMES)


def restaurant_name(rng: random.Random) -> str:
    """A synthetic restaurant name like ``The Golden Table``."""
    article = "The " if rng.random() < 0.5 else ""
    return f"{article}{rng.choice(RESTAURANT_WORDS)} {rng.choice(RESTAURANT_NOUNS)}"


def movie_title(rng: random.Random) -> str:
    """A synthetic movie title like ``The Crimson Horizon``.

    About a third of titles carry an ``of``-phrase, which widens the
    title space enough that accidental collisions stay rare while still
    possible (real KBs have plenty of same-title works).
    """
    article = "The " if rng.random() < 0.4 else ""
    title = f"{article}{rng.choice(MOVIE_ADJECTIVES)} {rng.choice(MOVIE_NOUNS)}"
    if rng.random() < 0.35:
        title += f" of {rng.choice(MOVIE_NOUNS)}"
    return title


def university_name(rng: random.Random) -> str:
    """A synthetic university name."""
    return f"{rng.choice(UNIVERSITY_WORDS)} University of {rng.choice(CITY_NAMES)}"


def phone_number(rng: random.Random) -> str:
    """A phone number in the canonical ``AAA-BBB-CCCC`` layout."""
    area = rng.randint(200, 989)
    exchange = rng.randint(200, 999)
    line = rng.randint(0, 9999)
    return f"{area}-{exchange}-{line:04d}"


def street_address(rng: random.Random) -> str:
    """A street address like ``128 Maple Street``."""
    return f"{rng.randint(1, 999)} {rng.choice(STREET_NAMES)}"


def date_iso(rng: random.Random, first_year: int = 1900, last_year: int = 1995) -> str:
    """A random ISO date within the year range (days capped at 28)."""
    year = rng.randint(first_year, last_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"
