"""Hidden-world model behind every synthetic benchmark.

Each benchmark is generated in two steps:

1. Build a *world*: entities with canonical attributes, links between
   them, and concept *tags* (e.g. ``{"person", "singer"}``) that define
   the true class extents.
2. Derive **two** ontologies from the same world through independent
   :class:`Projection` specs — different entity identifiers, different
   relation vocabularies (possibly inverted or coarsened), different
   class hierarchies, different selection of which entities/facts make
   it in, and different noise.

Because both ontologies come from one world, exact gold standards fall
out for free: instance pairs from the shared entity ids, relation
correspondences from the projection tables, and class inclusions from
world-level extent containment.

This construction replaces the data the paper used but we cannot ship
(OAEI 2010 dumps, YAGO/DBpedia/IMDb snapshots) while exercising the
same code paths — see DESIGN.md §1 for the substitution argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..evaluation.gold import GoldStandard
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Relation, Resource
from .noise import NoiseModel


@dataclass
class WorldEntity:
    """One real-world object in the hidden world."""

    #: Stable world-level identifier.
    uid: str
    #: Coarse kind ("person", "city", "movie", ...).
    kind: str
    #: Concept tags defining true class memberships (includes ``kind``).
    tags: Set[str] = field(default_factory=set)
    #: Canonical attribute values (attribute name → literal string).
    attributes: Dict[str, str] = field(default_factory=dict)
    #: Outgoing links ``(world relation name, target uid)``.
    links: List[Tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.tags.add(self.kind)


class World:
    """Container of world entities with kind and tag indexes."""

    def __init__(self) -> None:
        self._entities: Dict[str, WorldEntity] = {}
        self._by_kind: Dict[str, List[WorldEntity]] = {}

    def add(
        self,
        uid: str,
        kind: str,
        tags: Optional[Iterable[str]] = None,
        **attributes: str,
    ) -> WorldEntity:
        """Create and register an entity; returns it for chaining."""
        if uid in self._entities:
            raise ValueError(f"duplicate world entity uid {uid!r}")
        entity = WorldEntity(
            uid=uid, kind=kind, tags=set(tags or ()), attributes=dict(attributes)
        )
        self._entities[uid] = entity
        self._by_kind.setdefault(kind, []).append(entity)
        return entity

    def link(self, source_uid: str, relation: str, target_uid: str) -> None:
        """Add the world-level fact ``relation(source, target)``."""
        if target_uid not in self._entities:
            raise KeyError(f"unknown target entity {target_uid!r}")
        self._entities[source_uid].links.append((relation, target_uid))

    def get(self, uid: str) -> WorldEntity:
        """Entity by uid (KeyError if absent)."""
        return self._entities[uid]

    def entities(self) -> Iterable[WorldEntity]:
        """All entities, in insertion order."""
        return self._entities.values()

    def by_kind(self, kind: str) -> List[WorldEntity]:
        """All entities of one kind."""
        return self._by_kind.get(kind, [])

    def extent_of_tag(self, tag: str) -> FrozenSet[str]:
        """Uids of all entities carrying ``tag`` (a true class extent)."""
        return frozenset(e.uid for e in self._entities.values() if tag in e.tags)

    def __len__(self) -> int:
        return len(self._entities)


@dataclass
class AttributeSpec:
    """How a projection renders one world attribute.

    Parameters
    ----------
    relation:
        Relation name in the derived ontology.
    noise:
        Optional corruption applied to the value
        (``fn(value, noise_model) -> str``).
    keep_probability:
        Chance the attribute is emitted at all (before the global
        fact-dropping coin).
    """

    relation: str
    noise: Optional[Callable[[str, NoiseModel], str]] = None
    keep_probability: float = 1.0


@dataclass
class LinkSpec:
    """How a projection renders one world link relation.

    Parameters
    ----------
    relation:
        Relation name in the derived ontology.
    inverted:
        Emit the fact in the opposite direction (world ``created(a, b)``
        becomes ontology ``author(b, a)``) — this is how the generators
        reproduce the paper's inverse alignments (Table 4).
    keep_probability:
        Chance each individual link survives.
    only_target_tag:
        If set, emit the fact only when the *target* entity carries
        this tag — relation splitting by type, reproducing DBpedia's
        finer-grained ``author``/``artist``/``writer`` against YAGO's
        single ``created``.
    """

    relation: str
    inverted: bool = False
    keep_probability: float = 1.0
    only_target_tag: Optional[str] = None


@dataclass
class Projection:
    """Derivation of one ontology from a world.

    Parameters
    ----------
    name:
        Ontology name.
    rename:
        Entity uid → local resource name (vocabularies of the two
        projections must be disjoint; the paper renames OAEI's shared
        names too, Section 6.2).
    attribute_specs:
        World attribute name → :class:`AttributeSpec`.
    link_specs:
        World relation name → list of :class:`LinkSpec` (several specs
        express relation splitting).
    classes_of:
        Entity → class names it belongs to in this ontology (direct
        classes only; the hierarchy adds ancestors via closure).
    subclass_edges:
        Direct ``(sub, super)`` class-name edges of this ontology.
    class_tags:
        Class name → world tag whose extent defines the class (for the
        gold standard).  Classes missing here get extents computed from
        ``classes_of`` over all world entities.
    include:
        Selection predicate: whether a world entity appears in this
        ontology at all (models the paper's partial overlap — YAGO and
        DBpedia share only 1.4 M of their instances).
    noise:
        The :class:`NoiseModel` applied to attribute values and facts.
    """

    name: str
    rename: Callable[[str], str]
    attribute_specs: Dict[str, AttributeSpec]
    link_specs: Dict[str, List[LinkSpec]]
    classes_of: Callable[[WorldEntity], Iterable[str]]
    subclass_edges: Iterable[Tuple[str, str]]
    class_tags: Dict[str, str]
    include: Callable[[WorldEntity], bool]
    noise: NoiseModel

    def materialize(self, world: World) -> Tuple[Ontology, Dict[str, str]]:
        """Build the ontology; returns it plus the uid → name mapping."""
        ontology = Ontology(self.name)
        included: Dict[str, str] = {}
        for entity in world.entities():
            if self.include(entity):
                included[entity.uid] = self.rename(entity.uid)
        for uid, local_name in included.items():
            entity = world.get(uid)
            subject = Resource(local_name)
            self._emit_attributes(ontology, subject, entity)
            self._emit_links(ontology, subject, entity, included)
            for class_name in self.classes_of(entity):
                ontology.add_type(subject, Resource(class_name))
        for sub, sup in self.subclass_edges:
            ontology.add_subclass(Resource(sub), Resource(sup))
        return ontology, included

    def _emit_attributes(
        self, ontology: Ontology, subject: Resource, entity: WorldEntity
    ) -> None:
        for attribute, value in entity.attributes.items():
            spec = self.attribute_specs.get(attribute)
            if spec is None:
                continue
            rng = self.noise.rng
            if spec.keep_probability < 1.0 and rng.random() >= spec.keep_probability:
                continue
            if not self.noise.keep_fact():
                continue
            rendered = spec.noise(value, self.noise) if spec.noise else value
            ontology.add(subject, Relation(spec.relation), Literal(rendered))

    def _emit_links(
        self,
        ontology: Ontology,
        subject: Resource,
        entity: WorldEntity,
        included: Dict[str, str],
    ) -> None:
        for world_relation, target_uid in entity.links:
            specs = self.link_specs.get(world_relation)
            if not specs:
                continue
            target_name = included.get(target_uid)
            if target_name is None:
                continue  # the counterpart entity is not in this ontology
            for spec in specs:
                if spec.only_target_tag is not None:
                    target = self._target(target_uid)
                    if target is None or spec.only_target_tag not in target.tags:
                        continue
                rng = self.noise.rng
                if spec.keep_probability < 1.0 and rng.random() >= spec.keep_probability:
                    continue
                if not self.noise.keep_fact():
                    continue
                target_resource = Resource(target_name)
                if spec.inverted:
                    ontology.add(target_resource, Relation(spec.relation), subject)
                else:
                    ontology.add(subject, Relation(spec.relation), target_resource)

    # Target lookup is injected at materialize time via a bound world;
    # kept as an attribute so _emit_links stays testable.
    _world: Optional[World] = None

    def _target(self, uid: str) -> Optional[WorldEntity]:
        if self._world is None:
            return None
        try:
            return self._world.get(uid)
        except KeyError:
            return None

    def class_extents(self, world: World) -> Dict[str, FrozenSet[str]]:
        """World-level extent of every class of this projection."""
        extents: Dict[str, Set[str]] = {}
        # Seed from explicit tag definitions.
        for class_name, tag in self.class_tags.items():
            extents[class_name] = set(world.extent_of_tag(tag))
        # Fill the rest from the classes_of assignment over all
        # entities (selection-independent, as gold should be).
        assigned: Dict[str, Set[str]] = {}
        for entity in world.entities():
            for class_name in self.classes_of(entity):
                assigned.setdefault(class_name, set()).add(entity.uid)
        for class_name, uids in assigned.items():
            extents.setdefault(class_name, uids)
        # Superclasses inherit their descendants' extents.
        edges: Dict[str, Set[str]] = {}
        for sub, sup in self.subclass_edges:
            edges.setdefault(sub, set()).add(sup)
        from ..rdf.closure import transitive_closure

        closure = transitive_closure(edges)
        closed: Dict[str, Set[str]] = {name: set(uids) for name, uids in extents.items()}
        for sub, supers in closure.items():
            for sup in supers:
                closed.setdefault(sup, set()).update(extents.get(sub, set()))
        return {name: frozenset(uids) for name, uids in closed.items()}


@dataclass
class BenchmarkPair:
    """Two derived ontologies plus their exact gold standard."""

    #: Short benchmark name ("person", "restaurant", "yago-dbpedia", ...).
    name: str
    #: The left ontology.
    ontology1: Ontology
    #: The right ontology.
    ontology2: Ontology
    #: Ground truth for instances, relations and classes.
    gold: GoldStandard
    #: uid → local name in the left ontology.
    mapping1: Dict[str, str] = field(default_factory=dict)
    #: uid → local name in the right ontology.
    mapping2: Dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"BenchmarkPair({self.name!r}: {self.ontology1!r} vs {self.ontology2!r}, "
            f"{self.gold.num_instances} gold instances)"
        )


def derive_pair(
    name: str,
    world: World,
    projection1: Projection,
    projection2: Projection,
    relation_gold: Iterable[Tuple[str, str]],
) -> BenchmarkPair:
    """Materialize both projections and assemble the gold standard.

    ``relation_gold`` lists the correct relation correspondences as
    ``(left_name, right_name)`` strings (``^-1`` marks inversion); the
    instance gold is the shared-entity intersection; the class gold is
    computed from world-level extents.
    """
    projection1._world = world
    projection2._world = world
    ontology1, mapping1 = projection1.materialize(world)
    ontology2, mapping2 = projection2.materialize(world)
    gold = GoldStandard()
    shared = set(mapping1) & set(mapping2)
    gold.add_instances((mapping1[uid], mapping2[uid]) for uid in shared)
    gold.add_relations(relation_gold)
    extents1 = projection1.class_extents(world)
    extents2 = projection2.class_extents(world)
    gold.class_inclusions_12, gold.class_inclusions_21 = (
        GoldStandard.class_inclusions_from_extents(extents1, extents2)
    )
    return BenchmarkPair(
        name=name,
        ontology1=ontology1,
        ontology2=ontology2,
        gold=gold,
        mapping1=mapping1,
        mapping2=mapping2,
    )
