"""Synthetic benchmark generators.

Each generator builds a hidden :class:`~repro.datasets.world.World` and
derives two ontologies plus an exact gold standard from it (see
DESIGN.md §1 for why this substitutes for the paper's datasets):

* :func:`person_benchmark` / :func:`restaurant_benchmark` — the OAEI
  2010 stand-ins of Table 1,
* :func:`yago_dbpedia_pair` — the encyclopedic KB pair of Tables 2–4
  and Figures 1–2,
* :func:`yago_imdb_pair` — the movie-domain pair of Table 5,
* :func:`family_pair` / :func:`family_addition` / :func:`family_removal`
  — delta workloads for the incremental alignment service.
"""

from .incremental import (
    family_addition,
    family_pair,
    family_removal,
    family_triples,
)
from .imdb import IMDB_EXCLUDED_CLASSES, IMDB_RELATION_GOLD, build_movie_world, yago_imdb_pair
from .kb import (
    KB_EXCLUDED_CLASSES,
    KB_RELATION_GOLD,
    build_encyclopedic_world,
    yago_dbpedia_pair,
)
from .noise import NoiseModel
from .oaei import person_benchmark, restaurant_benchmark
from .world import (
    AttributeSpec,
    BenchmarkPair,
    LinkSpec,
    Projection,
    World,
    WorldEntity,
    derive_pair,
)

__all__ = [
    "World",
    "WorldEntity",
    "Projection",
    "AttributeSpec",
    "LinkSpec",
    "BenchmarkPair",
    "NoiseModel",
    "derive_pair",
    "person_benchmark",
    "restaurant_benchmark",
    "yago_dbpedia_pair",
    "build_encyclopedic_world",
    "KB_RELATION_GOLD",
    "KB_EXCLUDED_CLASSES",
    "yago_imdb_pair",
    "build_movie_world",
    "IMDB_RELATION_GOLD",
    "IMDB_EXCLUDED_CLASSES",
    "family_pair",
    "family_addition",
    "family_removal",
    "family_triples",
]
