"""Value normalization helpers (Section 5.3).

The paper's implementation "normalizes numeric values by removing all
data type or dimension information".  These helpers parse lexical forms
into comparable canonical values:

* :func:`normalize_string` — lowercase, strip non-alphanumerics (the
  "different string equality measure" of Section 6.3 that fixes the
  ``213/467-1108`` vs ``213-467-1108`` phone-format problem),
* :func:`parse_number` — extract a float from forms like ``"42"``,
  ``"42.5 kg"``, ``"1,234"``,
* :func:`parse_date` — extract ``(year, month, day)`` from common
  date layouts.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

_NON_ALNUM = re.compile(r"[^0-9a-z]+")
_NUMBER = re.compile(r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")
_ISO_DATE = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")
_SLASH_DATE = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{4})$")
_YEAR_ONLY = re.compile(r"^(\d{4})$")

#: Multiplicative factors for common dimension suffixes, used to strip
#: "dimension information" as Section 5.3 suggests (unit conversion).
_UNIT_FACTORS = {
    "km": 1000.0,
    "m": 1.0,
    "cm": 0.01,
    "mm": 0.001,
    "kg": 1000.0,
    "g": 1.0,
    "mg": 0.001,
    "min": 60.0,
    "h": 3600.0,
    "s": 1.0,
}


def normalize_string(text: str) -> str:
    """Lowercase and remove every non-alphanumeric character.

    >>> normalize_string("213/467-1108")
    '2134671108'
    >>> normalize_string("The  Godfather!")
    'thegodfather'
    """
    return _NON_ALNUM.sub("", text.lower())


def parse_number(text: str) -> Optional[float]:
    """Extract the numeric value of a literal, or ``None``.

    Thousands separators (``,``) are removed first; a recognized unit
    suffix rescales the value so that e.g. ``"2 km"`` and ``"2000 m"``
    normalize to the same number.
    """
    cleaned = text.strip().replace(",", "")
    match = _NUMBER.search(cleaned)
    if match is None:
        return None
    prefix = cleaned[: match.start()].strip()
    suffix = cleaned[match.end() :].strip().lower()
    if prefix:
        return None  # leading junk: not a numeric literal
    try:
        value = float(match.group())
    except ValueError:  # pragma: no cover - regex guarantees parseability
        return None
    if suffix:
        factor = _UNIT_FACTORS.get(suffix)
        if factor is None:
            return None  # trailing junk that is not a known unit
        value *= factor
    return value


def parse_date(text: str) -> Optional[Tuple[int, int, int]]:
    """Extract ``(year, month, day)`` from a date literal, or ``None``.

    Supports ISO (``1935-01-08``), US slash (``1/8/1935``, read as
    month/day/year) and bare-year (``1935`` → ``(1935, 0, 0)``) forms.
    """
    stripped = text.strip()
    match = _ISO_DATE.match(stripped)
    if match:
        year, month, day = (int(g) for g in match.groups())
        return year, month, day
    match = _SLASH_DATE.match(stripped)
    if match:
        month, day, year = (int(g) for g in match.groups())
        return year, month, day
    match = _YEAR_ONLY.match(stripped)
    if match:
        return int(match.group(1)), 0, 0
    return None


def strip_datatype(value: str) -> str:
    """Remove an RDF datatype suffix (``"5"^^xsd:integer`` style) if present."""
    if "^^" in value:
        body = value.split("^^", 1)[0]
        if body.startswith('"') and body.endswith('"'):
            body = body[1:-1]
        return body
    return value
