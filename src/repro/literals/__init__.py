"""Literal-similarity substrate (Section 5.3 of the paper).

Literal equivalence probabilities are clamped up front and plugged into
the instance-equivalence equations.  The bundled measures:

* :class:`IdentitySimilarity` — strict lexical identity (paper default),
* :class:`NormalizedIdentitySimilarity` — lowercase + alphanumeric-only
  identity (the Section 6.3 fix for phone-format noise),
* :class:`EditDistanceSimilarity` — Levenshtein with exact
  deletion-neighbourhood blocking,
* :class:`NumericSimilarity` — proportional-difference for numbers,
* :class:`DateSimilarity` / :class:`CompositeSimilarity` — typed
  dispatch combinators.
"""

from .base import LiteralSimilarity
from .composite import CompositeSimilarity, DateSimilarity, default_similarity, tolerant_similarity
from .edit_distance import EditDistanceSimilarity, deletion_neighbourhood, levenshtein
from .identity import IdentitySimilarity
from .normalization import normalize_string, parse_date, parse_number, strip_datatype
from .normalized import NormalizedIdentitySimilarity
from .numeric import NumericSimilarity

__all__ = [
    "LiteralSimilarity",
    "IdentitySimilarity",
    "NormalizedIdentitySimilarity",
    "EditDistanceSimilarity",
    "NumericSimilarity",
    "DateSimilarity",
    "CompositeSimilarity",
    "default_similarity",
    "tolerant_similarity",
    "levenshtein",
    "deletion_neighbourhood",
    "normalize_string",
    "parse_number",
    "parse_date",
    "strip_datatype",
]
