"""Type-dispatching composite literal similarity.

Section 5.3 envisions application-specific similarity functions that
treat numbers, dates and identifiers differently.  The composite routes
each pair to the right sub-measure:

* both values parse as numbers  → the numeric measure,
* both values parse as dates    → date equality (with year-only forms
  matching full dates of the same year at reduced confidence),
* otherwise                     → the string measure.

Keys from sub-measures are namespaced so that a numeric bucket can
never collide with a string key.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf.terms import Literal
from .base import LiteralSimilarity
from .edit_distance import EditDistanceSimilarity
from .identity import IdentitySimilarity
from .normalization import parse_date, parse_number, strip_datatype
from .numeric import NumericSimilarity

#: Similarity granted when only the years of two dates agree.
_YEAR_ONLY_MATCH = 0.8


class DateSimilarity(LiteralSimilarity):
    """Equality of parsed dates; partial credit for year-only matches."""

    def similarity(self, left: Literal, right: Literal) -> float:
        left_lexical = strip_datatype(left.value)
        right_lexical = strip_datatype(right.value)
        if left_lexical == right_lexical:
            # Identical lexical forms are equal regardless of parse.
            return 1.0
        left_date = parse_date(left_lexical)
        right_date = parse_date(right_lexical)
        if left_date is None or right_date is None:
            return 0.0
        if left_date == right_date:
            return 1.0
        if left_date[0] == right_date[0] and (
            left_date[1:] == (0, 0) or right_date[1:] == (0, 0)
        ):
            return _YEAR_ONLY_MATCH
        return 0.0

    def key(self, literal: Literal) -> str | None:
        date = parse_date(strip_datatype(literal.value))
        if date is None:
            return f"raw:{strip_datatype(literal.value)}"
        return f"date:{date[0]}"  # block on year; exact for this measure

    @property
    def name(self) -> str:
        return "date"


class CompositeSimilarity(LiteralSimilarity):
    """Route literal pairs to numeric, date or string sub-measures.

    Parameters
    ----------
    string_measure:
        Measure for general strings (default: strict identity, the
        paper's choice).
    numeric_measure:
        Measure for numeric pairs (default 1 % proportional tolerance).
    date_measure:
        Measure for date pairs.
    """

    def __init__(
        self,
        string_measure: LiteralSimilarity | None = None,
        numeric_measure: NumericSimilarity | None = None,
        date_measure: DateSimilarity | None = None,
    ) -> None:
        self.string_measure = string_measure or IdentitySimilarity()
        self.numeric_measure = numeric_measure or NumericSimilarity()
        self.date_measure = date_measure or DateSimilarity()

    @staticmethod
    def _kind(literal: Literal) -> str:
        value = strip_datatype(literal.value)
        if parse_date(value) is not None:
            return "date"
        if parse_number(value) is not None:
            return "number"
        return "string"

    def similarity(self, left: Literal, right: Literal) -> float:
        left_kind = self._kind(left)
        right_kind = self._kind(right)
        if left_kind != right_kind:
            # A year like "1935" parses as both date and number; dates
            # take precedence in _kind, so a date/number mix still gets
            # the numeric comparison when both parse as numbers.
            left_value = strip_datatype(left.value)
            right_value = strip_datatype(right.value)
            if parse_number(left_value) is not None and parse_number(right_value) is not None:
                return self.numeric_measure.similarity(left, right)
            return 0.0
        if left_kind == "number":
            return self.numeric_measure.similarity(left, right)
        if left_kind == "date":
            return self.date_measure.similarity(left, right)
        return self.string_measure.similarity(left, right)

    def key(self, literal: Literal) -> str | None:
        keys = list(self.keys(literal))
        return keys[0] if keys else None

    def keys(self, literal: Literal) -> Iterable[str]:
        kind = self._kind(literal)
        if kind == "number":
            return [f"n|{k}" for k in self.numeric_measure.keys(literal)]
        if kind == "date":
            date_keys = [f"d|{k}" for k in self.date_measure.keys(literal)]
            # years also block with plain numbers of the same value
            numeric_keys = [f"n|{k}" for k in self.numeric_measure.keys(literal)]
            return date_keys + numeric_keys
        return [f"s|{k}" for k in self.string_measure.keys(literal)]

    @property
    def name(self) -> str:
        return (
            f"composite(string={self.string_measure.name}, "
            f"numeric={self.numeric_measure.name}, date={self.date_measure.name})"
        )


def default_similarity() -> IdentitySimilarity:
    """The paper's default: strict literal identity."""
    return IdentitySimilarity()


def tolerant_similarity(max_edit_distance: int = 1) -> CompositeSimilarity:
    """A forgiving composite: edit-distance strings + tolerant numbers."""
    return CompositeSimilarity(
        string_measure=EditDistanceSimilarity(max_distance=max_edit_distance)
    )
