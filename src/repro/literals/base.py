"""Literal-similarity interface.

Section 5.3 of the paper: "The probability that two literals are equal
is known a priori and will not change.  Therefore, such probabilities
can be set upfront (clamped)."  A literal similarity is a function from
two literals to a probability in ``[0, 1]``; the aligner plugs its
output directly into Eq. 13 wherever two literals are compared.

Implementations must be:

* symmetric — ``sim(a, b) == sim(b, a)``,
* reflexive — ``sim(a, a) == 1`` for any literal ``a``,
* bounded — outputs in ``[0, 1]``.

The property-based tests in ``tests/test_literals_properties.py``
enforce these laws for every bundled implementation.
"""

from __future__ import annotations

import abc
from typing import Iterable

from ..rdf.terms import Literal


class LiteralSimilarity(abc.ABC):
    """Clamped probability that two literals denote the same value."""

    @abc.abstractmethod
    def similarity(self, left: Literal, right: Literal) -> float:
        """Return ``Pr(left ≡ right)`` in ``[0, 1]``."""

    def __call__(self, left: Literal, right: Literal) -> float:
        return self.similarity(left, right)

    def key(self, literal: Literal) -> str | None:
        """Blocking key for candidate generation.

        The aligner needs to find, for a literal in one ontology, the
        literals of the other ontology with non-zero similarity.  A
        similarity may declare a *key* such that only literals with
        equal keys can have positive similarity; ``None`` disables
        blocking (every pair must be checked — quadratic, only sensible
        for tiny ontologies).

        The default uses the exact lexical form, which is correct for
        the strict identity measure.
        """
        return literal.value

    def keys(self, literal: Literal) -> "Iterable[str]":
        """All blocking keys of ``literal``.

        Two literals can only have positive similarity if their key sets
        intersect.  The default emits the single :meth:`key`; measures
        with fuzzy matching (edit distance) override this with a
        neighbourhood of keys.
        """
        single = self.key(literal)
        return [] if single is None else [single]

    @property
    def name(self) -> str:
        """Human-readable name used in reports and ablation tables."""
        return type(self).__name__
