"""Strict identity similarity — the paper's default (Section 5.3).

"For our implementation, we chose a particularly simple equality
function.  [...] we set the probability Pr(x ≡ y) to 1 if x and y are
identical literals, to 0 otherwise."
"""

from __future__ import annotations

from ..rdf.terms import Literal
from .base import LiteralSimilarity
from .normalization import strip_datatype


class IdentitySimilarity(LiteralSimilarity):
    """``Pr(x ≡ y) = 1`` iff the lexical forms are identical.

    Datatype suffixes are stripped first (the paper normalizes numeric
    values "by removing all data type or dimension information").
    """

    def similarity(self, left: Literal, right: Literal) -> float:
        return 1.0 if strip_datatype(left.value) == strip_datatype(right.value) else 0.0

    def key(self, literal: Literal) -> str:
        return strip_datatype(literal.value)

    @property
    def name(self) -> str:
        return "identity"
