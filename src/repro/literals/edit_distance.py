"""Edit-distance-based literal similarity.

Section 5.3 suggests that "the probability that two strings are equal
can be inverse proportional to their edit distance".  This measure
returns::

    sim(a, b) = 1 - distance(a, b) / max(len(a), len(b))

whenever the Levenshtein distance is at most ``max_distance``, and 0
otherwise.  Strings are normalized (lowercased, non-alphanumerics
stripped) before comparison so that formatting noise does not consume
the distance budget.

Candidate blocking uses the *deletion neighbourhood* technique: two
strings within Levenshtein distance ``d`` always share at least one
variant obtained by deleting up to ``d`` characters from each.  Emitting
those variants as blocking keys therefore finds **all** pairs within the
distance bound, without a quadratic scan.
"""

from __future__ import annotations

from typing import Iterable, Set

from ..rdf.terms import Literal
from .base import LiteralSimilarity
from .normalization import normalize_string, strip_datatype


def levenshtein(left: str, right: str, cutoff: int | None = None) -> int:
    """Levenshtein distance with an optional early-exit ``cutoff``.

    If the distance is guaranteed to exceed ``cutoff``, returns
    ``cutoff + 1`` (a sentinel larger than any accepted distance).
    """
    if left == right:
        return 0
    if len(left) > len(right):
        left, right = right, left
    if cutoff is not None and len(right) - len(left) > cutoff:
        return cutoff + 1
    previous = list(range(len(left) + 1))
    for row, right_char in enumerate(right, start=1):
        current = [row]
        best = row
        for col, left_char in enumerate(left, start=1):
            insert_cost = current[col - 1] + 1
            delete_cost = previous[col] + 1
            replace_cost = previous[col - 1] + (left_char != right_char)
            value = min(insert_cost, delete_cost, replace_cost)
            current.append(value)
            if value < best:
                best = value
        if cutoff is not None and best > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def deletion_neighbourhood(text: str, depth: int) -> Set[str]:
    """All strings obtainable from ``text`` by deleting up to ``depth`` chars."""
    frontier = {text}
    result = {text}
    for _ in range(depth):
        next_frontier: Set[str] = set()
        for variant in frontier:
            for i in range(len(variant)):
                shorter = variant[:i] + variant[i + 1 :]
                if shorter not in result:
                    result.add(shorter)
                    next_frontier.add(shorter)
        frontier = next_frontier
        if not frontier:
            break
    return result


class EditDistanceSimilarity(LiteralSimilarity):
    """Levenshtein-based similarity with exact deletion-key blocking.

    Parameters
    ----------
    max_distance:
        Pairs farther apart than this normalized edit distance get
        similarity 0.  Keep small (1–2); the blocking-key count grows
        combinatorially with it.
    normalize:
        Whether to normalize strings before comparison (default True).
    """

    def __init__(self, max_distance: int = 1, normalize: bool = True) -> None:
        if max_distance < 0:
            raise ValueError("max_distance must be >= 0")
        if max_distance > 3:
            raise ValueError("max_distance > 3 would explode the blocking index")
        self.max_distance = max_distance
        self.normalize = normalize

    def _canonical(self, literal: Literal) -> str:
        value = strip_datatype(literal.value)
        return normalize_string(value) if self.normalize else value

    def similarity(self, left: Literal, right: Literal) -> float:
        left_text = self._canonical(left)
        right_text = self._canonical(right)
        if left_text == right_text:
            return 1.0
        if not left_text or not right_text:
            return 0.0
        distance = levenshtein(left_text, right_text, cutoff=self.max_distance)
        if distance > self.max_distance:
            return 0.0
        return 1.0 - distance / max(len(left_text), len(right_text))

    def key(self, literal: Literal) -> str:
        return self._canonical(literal)

    def keys(self, literal: Literal) -> Iterable[str]:
        """Deletion-neighbourhood blocking keys (exact for Levenshtein)."""
        return deletion_neighbourhood(self._canonical(literal), self.max_distance)

    @property
    def name(self) -> str:
        return f"edit-distance(max={self.max_distance})"
