"""Numeric literal similarity (Section 5.3).

"The probability that two numeric values of the same dimension are
equal can be a function of their proportional difference."  This
measure parses both literals as numbers (stripping units, see
:func:`repro.literals.normalization.parse_number`) and returns::

    sim(a, b) = max(0, 1 - |a - b| / (tolerance * max(|a|, |b|)))

so that values within ``tolerance`` (relative) get positive similarity,
declining linearly.  Non-numeric literals always score 0 here; use
:class:`~repro.literals.composite.CompositeSimilarity` to combine with
a string measure.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..rdf.terms import Literal
from .base import LiteralSimilarity
from .normalization import parse_number, strip_datatype


class NumericSimilarity(LiteralSimilarity):
    """Proportional-difference similarity for numeric literals.

    Parameters
    ----------
    tolerance:
        Maximum relative difference with positive similarity.  0 makes
        the measure strict numeric equality.
    """

    def __init__(self, tolerance: float = 0.01) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.tolerance = tolerance

    def similarity(self, left: Literal, right: Literal) -> float:
        left_lexical = strip_datatype(left.value)
        right_lexical = strip_datatype(right.value)
        if left_lexical == right_lexical:
            # Identical lexical forms are equal regardless of parse —
            # keeps the measure reflexive on out-of-domain literals.
            return 1.0
        left_value = parse_number(left_lexical)
        right_value = parse_number(right_lexical)
        if left_value is None or right_value is None:
            return 0.0
        if left_value == right_value:
            return 1.0
        if self.tolerance == 0:
            return 0.0
        scale = max(abs(left_value), abs(right_value))
        if scale == 0:
            return 0.0  # only hit when exactly one value is 0
        relative = abs(left_value - right_value) / scale
        return max(0.0, 1.0 - relative / self.tolerance)

    def _bucket(self, value: float) -> int:
        """Index of the log-spaced tolerance bucket containing ``value``."""
        if value == 0:
            return 0
        width = math.log1p(self.tolerance) if self.tolerance > 0 else 1.0
        return int(math.floor(math.log(abs(value)) / width)) * (1 if value > 0 else -1)

    def key(self, literal: Literal) -> str | None:
        return f"raw:{strip_datatype(literal.value)}"

    def keys(self, literal: Literal) -> Iterable[str]:
        """Emit the raw lexical key plus the containing bucket and both
        neighbours.

        Values within ``tolerance`` of each other can straddle a bucket
        boundary; including adjacent buckets makes the blocking exact.
        The raw key covers identical out-of-domain literals.
        """
        lexical = strip_datatype(literal.value)
        keys = [f"raw:{lexical}"]
        value = parse_number(lexical)
        if value is not None:
            bucket = self._bucket(value)
            keys += [f"num:{bucket - 1}", f"num:{bucket}", f"num:{bucket + 1}"]
        return keys

    @property
    def name(self) -> str:
        return f"numeric(tol={self.tolerance})"
