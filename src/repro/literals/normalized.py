"""Normalized-identity similarity (Section 6.3).

The negative-evidence experiment on the restaurant dataset failed under
strict identity because "most entities have slightly different attribute
values (e.g., a phone number 213/467-1108 instead of 213-467-1108)".
The paper's fix: "Our new measure normalizes two strings by removing
all non-alphanumeric characters and lowercasing them.  Then, the measure
returns 1 if the strings are equal and 0 otherwise."
"""

from __future__ import annotations

from ..rdf.terms import Literal
from .base import LiteralSimilarity
from .normalization import normalize_string, strip_datatype


class NormalizedIdentitySimilarity(LiteralSimilarity):
    """``Pr(x ≡ y) = 1`` iff the normalized lexical forms are identical."""

    def similarity(self, left: Literal, right: Literal) -> float:
        left_norm = normalize_string(strip_datatype(left.value))
        right_norm = normalize_string(strip_datatype(right.value))
        if not left_norm and not right_norm:
            # Two all-punctuation strings only match if originally equal.
            return 1.0 if left.value == right.value else 0.0
        return 1.0 if left_norm == right_norm else 0.0

    def key(self, literal: Literal) -> str:
        return normalize_string(strip_datatype(literal.value))

    @property
    def name(self) -> str:
        return "normalized-identity"
