"""Line-based N-Triples reading and writing.

The paper loads RDF dumps through Jena; our substrate ships a small
self-contained N-Triples codec so ontologies can be persisted and
reloaded without external dependencies.  The dialect supported is the
practical core of the W3C format:

* ``<uri> <uri> <uri> .`` — resource-valued statement,
* ``<uri> <uri> "literal" .`` — literal-valued statement, with optional
  ``^^<datatype>`` suffix and ``\\"``/``\\\\``/``\\n``/``\\t`` escapes,
* comment lines starting with ``#`` and blank lines are skipped.

Schema statements (``rdf:type``, ``rdfs:subClassOf``,
``rdfs:subPropertyOf``) are recognized by their conventional URIs and
routed to the ontology's schema indexes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Tuple, Union

from .ontology import Ontology
from .terms import Literal, Node, Relation, Resource
from .vocabulary import RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF

#: Full URIs of the schema relations, mapped to internal names.
_URI_TO_SCHEMA = {
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type": RDF_TYPE.name,
    "http://www.w3.org/2000/01/rdf-schema#subClassOf": RDFS_SUBCLASSOF.name,
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf": RDFS_SUBPROPERTYOF.name,
    "http://www.w3.org/2000/01/rdf-schema#label": "rdfs:label",
}
_SCHEMA_TO_URI = {v: k for k, v in _URI_TO_SCHEMA.items()}


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            raise NTriplesError("dangling backslash in literal")
        nxt = text[i + 1]
        mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}
        if nxt in mapping:
            out.append(mapping[nxt])
            i += 2
        elif nxt == "u" and i + 6 <= len(text):
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        else:
            raise NTriplesError(f"unsupported escape sequence \\{nxt}")
    return "".join(out)


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def _parse_uri(token: str, line_number: int) -> str:
    if not (token.startswith("<") and token.endswith(">")):
        raise NTriplesError(f"expected <uri>, got {token!r}", line_number)
    return token[1:-1]


def parse_line(line: str, line_number: int = 0) -> Tuple[str, str, Node] | None:
    """Parse one N-Triples line into ``(subject_uri, predicate_uri, object)``.

    Returns ``None`` for blank and comment lines.  The object is either
    a :class:`Resource` (carrying its URI as name) or a
    :class:`Literal`.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if not stripped.endswith("."):
        raise NTriplesError("statement must end with '.'", line_number)
    body = stripped[:-1].strip()
    # subject
    if not body.startswith("<"):
        raise NTriplesError("subject must be a <uri>", line_number)
    end = body.index(">")
    subject = body[1:end]
    rest = body[end + 1 :].strip()
    # predicate
    if not rest.startswith("<"):
        raise NTriplesError("predicate must be a <uri>", line_number)
    end = rest.index(">")
    predicate = rest[1:end]
    obj_token = rest[end + 1 :].strip()
    if not obj_token:
        raise NTriplesError("missing object", line_number)
    # object
    obj: Node
    if obj_token.startswith("<"):
        obj = Resource(_parse_uri(obj_token, line_number))
    elif obj_token.startswith('"'):
        # find the closing unescaped quote
        i = 1
        while i < len(obj_token):
            if obj_token[i] == "\\":
                i += 2
                continue
            if obj_token[i] == '"':
                break
            i += 1
        else:
            raise NTriplesError("unterminated literal", line_number)
        lexical = _unescape(obj_token[1:i])
        suffix = obj_token[i + 1 :].strip()
        datatype = None
        if suffix.startswith("^^"):
            datatype_uri = _parse_uri(suffix[2:].strip(), line_number)
            datatype = datatype_uri.rsplit("#", 1)[-1].rsplit("/", 1)[-1]
        elif suffix.startswith("@"):
            pass  # language tags are accepted and dropped
        elif suffix:
            raise NTriplesError(f"unexpected trailing content {suffix!r}", line_number)
        obj = Literal(lexical, datatype=datatype)
    else:
        raise NTriplesError(f"object must be a <uri> or a literal, got {obj_token!r}", line_number)
    return subject, predicate, obj


def read_ntriples(source: Union[str, Path, TextIO], name: str | None = None) -> Ontology:
    """Load an ontology from an N-Triples file or stream.

    Parameters
    ----------
    source:
        Path to a ``.nt`` file, or an open text stream.
    name:
        Ontology name; defaults to the file stem or ``"ontology"``.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="utf-8") as stream:
            return read_ntriples(stream, name=name or path.stem)
    ontology = Ontology(name or "ontology")
    for line_number, line in enumerate(source, start=1):
        parsed = parse_line(line, line_number)
        if parsed is None:
            continue
        subject_uri, predicate_uri, obj = parsed
        predicate_name = _URI_TO_SCHEMA.get(predicate_uri, predicate_uri)
        subject = Resource(subject_uri)
        if predicate_name == RDFS_SUBPROPERTYOF.name:
            if not isinstance(obj, Resource):
                raise NTriplesError("rdfs:subPropertyOf needs a resource object", line_number)
            sub_name = _URI_TO_SCHEMA.get(subject_uri, subject_uri)
            sup_name = _URI_TO_SCHEMA.get(obj.name, obj.name)
            ontology.add_subproperty(Relation(sub_name), Relation(sup_name))
            continue
        ontology.add(subject, Relation(predicate_name), obj)
    return ontology


def _render_term(node: Node) -> str:
    if isinstance(node, Resource):
        return f"<{node.name}>"
    rendered = f'"{_escape(node.value)}"'
    if node.datatype:
        rendered += f"^^<http://www.w3.org/2001/XMLSchema#{node.datatype}>"
    return rendered


def write_ntriples(ontology: Ontology, target: Union[str, Path, TextIO]) -> int:
    """Serialize an ontology to N-Triples.

    Data statements are written once (forward direction), followed by
    ``rdf:type``, ``rdfs:subClassOf`` and ``rdfs:subPropertyOf``
    statements.  Returns the number of lines written.
    """
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as stream:
            return write_ntriples(ontology, stream)
    count = 0

    def emit(subject: str, predicate: str, obj: str) -> None:
        nonlocal count
        target.write(f"<{subject}> <{predicate}> {obj} .\n")
        count += 1

    for triple in ontology.triples():
        if not isinstance(triple.subject, Resource):
            continue  # forward triples always have resource subjects
        predicate_uri = _SCHEMA_TO_URI.get(triple.relation.name, triple.relation.name)
        emit(triple.subject.name, predicate_uri, _render_term(triple.object))
    for instance, cls in ontology.type_statements():
        emit(instance.name, _SCHEMA_TO_URI[RDF_TYPE.name], f"<{cls.name}>")
    for sub, sup in ontology.subclass_edges():
        emit(sub.name, _SCHEMA_TO_URI[RDFS_SUBCLASSOF.name], f"<{sup.name}>")
    for sub, sup in ontology.subproperty_edges():
        emit(sub.name, _SCHEMA_TO_URI[RDFS_SUBPROPERTYOF.name], f"<{sup.name}>")
    return count


def dumps(ontology: Ontology) -> str:
    """Serialize an ontology to an N-Triples string."""
    buffer = io.StringIO()
    write_ntriples(ontology, buffer)
    return buffer.getvalue()


def loads(text: str, name: str = "ontology") -> Ontology:
    """Parse an ontology from an N-Triples string."""
    return read_ntriples(io.StringIO(text), name=name)
