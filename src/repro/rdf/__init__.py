"""RDFS substrate: terms, triples, the indexed ontology store, closure,
codecs and statistics.

This package plays the role of Jena + Berkeley DB in the original PARIS
implementation (Section 5.2 of the paper): it holds the two input
ontologies fully indexed for the access patterns of the probabilistic
fixpoint.
"""

from .builder import OntologyBuilder, as_literal, as_node, as_relation, as_resource
from .closure import (
    deductive_closure,
    depth_map,
    is_subclass_of,
    leaves,
    roots,
    superclass_closure,
    superproperty_closure,
    transitive_closure,
)
from .ntriples import NTriplesError, read_ntriples, write_ntriples
from .transforms import copy_ontology, dereify, reify
from .ontology import Ontology
from .stats import OntologyStats, describe, statistics_table
from .terms import Literal, Node, Relation, Resource, Term
from .triples import Triple
from .tsv import TsvError, read_tsv, write_tsv
from .vocabulary import (
    OWL_THING,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_RELATIONS,
    is_schema_relation,
)

__all__ = [
    "Term",
    "Resource",
    "Literal",
    "Relation",
    "Node",
    "Triple",
    "Ontology",
    "OntologyBuilder",
    "OntologyStats",
    "NTriplesError",
    "TsvError",
    "as_resource",
    "as_relation",
    "as_node",
    "as_literal",
    "deductive_closure",
    "transitive_closure",
    "superclass_closure",
    "superproperty_closure",
    "is_subclass_of",
    "depth_map",
    "roots",
    "leaves",
    "describe",
    "statistics_table",
    "read_ntriples",
    "write_ntriples",
    "read_tsv",
    "write_tsv",
    "RDF_TYPE",
    "RDFS_LABEL",
    "RDFS_SUBCLASSOF",
    "RDFS_SUBPROPERTYOF",
    "SCHEMA_RELATIONS",
    "OWL_THING",
    "is_schema_relation",
    "copy_ontology",
    "dereify",
    "reify",
]
