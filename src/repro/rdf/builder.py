"""Fluent construction of ontologies.

:class:`OntologyBuilder` offers a compact way to author test fixtures
and examples without manually wrapping every name in a term class:

>>> onto = (
...     OntologyBuilder("demo")
...     .fact("Elvis", "wasBornIn", "Tupelo")
...     .value("Elvis", "rdfs:label", "Elvis Presley")
...     .type("Elvis", "singer")
...     .subclass("singer", "person")
...     .build()
... )
>>> onto.num_facts
2
"""

from __future__ import annotations

from typing import Union

from .closure import deductive_closure
from .ontology import Ontology
from .terms import Literal, Node, Relation, Resource


def as_resource(value: Union[str, Resource]) -> Resource:
    """Coerce a string or :class:`Resource` to a :class:`Resource`."""
    return value if isinstance(value, Resource) else Resource(value)


def as_relation(value: Union[str, Relation]) -> Relation:
    """Coerce a string (honouring ``^-1``) or :class:`Relation`."""
    return value if isinstance(value, Relation) else Relation.parse(value)


def as_node(value: Union[str, int, float, Node]) -> Node:
    """Coerce to a node: terms pass through, numbers become literals,
    strings become resources (use :func:`as_literal` for string values)."""
    if isinstance(value, (Resource, Literal)):
        return value
    if isinstance(value, (int, float)):
        return Literal(value)
    return Resource(value)


def as_literal(value: Union[str, int, float, Literal]) -> Literal:
    """Coerce to a :class:`Literal`."""
    return value if isinstance(value, Literal) else Literal(value)


class OntologyBuilder:
    """Chainable builder for :class:`~repro.rdf.ontology.Ontology`.

    Strings are coerced: subjects/objects of :meth:`fact` become
    resources, objects of :meth:`value` become literals.
    """

    def __init__(self, name: str) -> None:
        self._ontology = Ontology(name)
        self._closed = False

    def fact(
        self,
        subject: Union[str, Resource],
        relation: Union[str, Relation],
        obj: Union[str, int, float, Node],
    ) -> "OntologyBuilder":
        """Add a resource-to-node statement."""
        self._ontology.add(as_resource(subject), as_relation(relation), as_node(obj))
        return self

    def value(
        self,
        subject: Union[str, Resource],
        relation: Union[str, Relation],
        literal: Union[str, int, float, Literal],
    ) -> "OntologyBuilder":
        """Add a resource-to-literal statement (e.g. a label or a date)."""
        self._ontology.add(as_resource(subject), as_relation(relation), as_literal(literal))
        return self

    def type(
        self, instance: Union[str, Resource], cls: Union[str, Resource]
    ) -> "OntologyBuilder":
        """Assert ``rdf:type(instance, cls)``."""
        self._ontology.add_type(as_resource(instance), as_resource(cls))
        return self

    def subclass(
        self, sub: Union[str, Resource], sup: Union[str, Resource]
    ) -> "OntologyBuilder":
        """Assert ``rdfs:subClassOf(sub, sup)``."""
        self._ontology.add_subclass(as_resource(sub), as_resource(sup))
        return self

    def subproperty(
        self, sub: Union[str, Relation], sup: Union[str, Relation]
    ) -> "OntologyBuilder":
        """Assert ``rdfs:subPropertyOf(sub, sup)``."""
        self._ontology.add_subproperty(as_relation(sub), as_relation(sup))
        return self

    def closed(self) -> "OntologyBuilder":
        """Request deductive closure at :meth:`build` time (Section 3)."""
        self._closed = True
        return self

    def build(self) -> Ontology:
        """Return the constructed ontology (closing it if requested)."""
        if self._closed:
            deductive_closure(self._ontology)
        return self._ontology
