"""TSV serialization of ontologies.

The original PARIS release consumed tab-separated ``subject predicate
object`` files converted from the IMDb plain-text dumps (Section 6.4).
This codec mirrors that: one statement per line, three tab-separated
fields.  Object fields wrapped in double quotes are literals; everything
else is a resource.  The schema relations use the same internal names
as :mod:`repro.rdf.vocabulary` (``rdf:type`` etc.).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from .ontology import Ontology
from .terms import Literal, Node, Relation, Resource
from .vocabulary import RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF


class TsvError(ValueError):
    """Raised when a TSV line is malformed."""


def _render(node: Node) -> str:
    if isinstance(node, Literal):
        escaped = node.value.replace("\\", "\\\\").replace('"', '\\"').replace("\t", "\\t")
        return f'"{escaped}"'
    return node.name


def _parse_object(field: str) -> Node:
    if field.startswith('"') and field.endswith('"') and len(field) >= 2:
        body = field[1:-1]
        out = []
        i = 0
        while i < len(body):
            if body[i] == "\\" and i + 1 < len(body):
                mapping = {"t": "\t", "n": "\n", '"': '"', "\\": "\\"}
                out.append(mapping.get(body[i + 1], body[i + 1]))
                i += 2
            else:
                out.append(body[i])
                i += 1
        return Literal("".join(out))
    return Resource(field)


def write_tsv(ontology: Ontology, target: Union[str, Path, TextIO]) -> int:
    """Write an ontology as TSV; returns the number of lines."""
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as stream:
            return write_tsv(ontology, stream)
    count = 0
    for triple in ontology.triples():
        if not isinstance(triple.subject, Resource):
            continue
        target.write(f"{triple.subject.name}\t{triple.relation}\t{_render(triple.object)}\n")
        count += 1
    for instance, cls in ontology.type_statements():
        target.write(f"{instance.name}\t{RDF_TYPE.name}\t{cls.name}\n")
        count += 1
    for sub, sup in ontology.subclass_edges():
        target.write(f"{sub.name}\t{RDFS_SUBCLASSOF.name}\t{sup.name}\n")
        count += 1
    for sub, sup in ontology.subproperty_edges():
        target.write(f"{sub}\t{RDFS_SUBPROPERTYOF.name}\t{sup}\n")
        count += 1
    return count


def read_tsv(source: Union[str, Path, TextIO], name: str | None = None) -> Ontology:
    """Load an ontology from a TSV file or stream."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="utf-8") as stream:
            return read_tsv(stream, name=name or path.stem)
    ontology = Ontology(name or "ontology")
    for line_number, raw in enumerate(source, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise TsvError(
                f"line {line_number}: expected 3 tab-separated fields, got {len(fields)}"
            )
        subject_name, predicate_name, object_field = fields
        if predicate_name == RDFS_SUBPROPERTYOF.name:
            ontology.add_subproperty(
                Relation.parse(subject_name), Relation.parse(object_field)
            )
            continue
        ontology.add(
            Resource(subject_name), Relation.parse(predicate_name), _parse_object(object_field)
        )
    return ontology


def dumps(ontology: Ontology) -> str:
    """Serialize to a TSV string."""
    buffer = io.StringIO()
    write_tsv(ontology, buffer)
    return buffer.getvalue()


def loads(text: str, name: str = "ontology") -> Ontology:
    """Parse an ontology from a TSV string."""
    return read_tsv(io.StringIO(text), name=name)
