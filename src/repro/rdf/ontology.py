"""Indexed in-memory RDFS ontology store.

This is the substrate the paper obtains from Jena + Berkeley DB
(Section 5.2); here it is a set of dictionaries tuned for the access
patterns of the PARIS fixpoint:

* iterate all statements ``r(x, y)`` for a fixed first argument ``x``
  (the optimized Eq. 13 traversal),
* iterate all pairs of a fixed relation ``r`` (Eq. 12),
* count statements and distinct arguments per relation (Eq. 2),
* enumerate instances of a class (Eq. 17).

Every assertion is stored in both directions: adding ``r(x, y)`` also
records ``r⁻(y, x)``, exactly as the paper assumes ("we assume that the
ontology contains all inverse relations and their corresponding
statements", Section 3).

The store is also the substrate of the *incremental alignment service*
(:mod:`repro.service`): :meth:`Ontology.remove` retracts statements
with full index cleanup, so live delta batches (add + remove) can be
absorbed without rebuilding, and the warm-start fixpoint can invalidate
exactly the entries a delta touched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .terms import Literal, Node, Relation, Resource
from .triples import Triple
from .vocabulary import RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, is_schema_relation


class Ontology:
    """A mutable, indexed collection of RDFS statements.

    Parameters
    ----------
    name:
        Human-readable identifier used in alignment reports
        (e.g. ``"yago"`` or ``"dbpedia"``).

    Notes
    -----
    The store distinguishes *data* statements (between instances and/or
    literals) from *schema* statements (``rdf:type``,
    ``rdfs:subClassOf``, ``rdfs:subPropertyOf``).  Schema statements are
    kept in dedicated indexes and never contribute to functionality or
    to the instance-equivalence equations, mirroring the paper's
    separation of A-Box evidence from T-Box alignment.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("ontology name must be non-empty")
        self.name = name
        # relation -> subject -> set of objects (both directions kept).
        self._statements: Dict[Relation, Dict[Node, Set[Node]]] = {}
        # subject -> relation -> set of objects (both directions kept).
        self._subject_index: Dict[Node, Dict[Relation, Set[Node]]] = {}
        # statement counts per relation (both directions).
        self._fact_counts: Dict[Relation, int] = {}
        # schema indexes
        self._instance_classes: Dict[Resource, Set[Resource]] = {}
        self._class_instances: Dict[Resource, Set[Resource]] = {}
        self._subclass_edges: Dict[Resource, Set[Resource]] = {}
        self._superclass_edges: Dict[Resource, Set[Resource]] = {}
        self._subproperty_edges: Dict[Relation, Set[Relation]] = {}
        self._instances: Set[Resource] = set()
        self._classes: Set[Resource] = set()
        self._literals: Set[Literal] = set()
        # Data-statement mutation counter (see the `version` property).
        self._version = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, subject: Node, relation: Relation, obj: Node) -> bool:
        """Add the statement ``relation(subject, obj)``.

        Schema relations are routed to :meth:`add_type`,
        :meth:`add_subclass` or :meth:`add_subproperty`.  Data
        statements are stored in both directions.

        Returns
        -------
        bool
            ``True`` if the statement was new, ``False`` if it was
            already present.
        """
        if not isinstance(relation, Relation):
            raise TypeError(f"relation must be a Relation, got {type(relation).__name__}")
        base = relation.base
        if base == RDF_TYPE:
            sub, obj2 = (subject, obj) if not relation.inverted else (obj, subject)
            return self.add_type(sub, obj2)  # type: ignore[arg-type]
        if base == RDFS_SUBCLASSOF:
            sub, obj2 = (subject, obj) if not relation.inverted else (obj, subject)
            return self.add_subclass(sub, obj2)  # type: ignore[arg-type]
        if base == RDFS_SUBPROPERTYOF:
            raise ValueError(
                "add rdfs:subPropertyOf edges via add_subproperty(), "
                "they relate Relation terms, not nodes"
            )
        return self._add_data(subject, relation, obj)

    def _add_data(self, subject: Node, relation: Relation, obj: Node) -> bool:
        objects = self._statements.setdefault(relation, {}).setdefault(subject, set())
        if obj in objects:
            return False
        self._version += 1
        objects.add(obj)
        self._subject_index.setdefault(subject, {}).setdefault(relation, set()).add(obj)
        self._fact_counts[relation] = self._fact_counts.get(relation, 0) + 1
        # inverse direction
        inverse = relation.inverse
        self._statements.setdefault(inverse, {}).setdefault(obj, set()).add(subject)
        self._subject_index.setdefault(obj, {}).setdefault(inverse, set()).add(subject)
        self._fact_counts[inverse] = self._fact_counts.get(inverse, 0) + 1
        self._register_node(subject)
        self._register_node(obj)
        return True

    def _register_node(self, node: Node) -> None:
        if isinstance(node, Literal):
            self._literals.add(node)
        elif node not in self._classes:
            self._instances.add(node)

    def add_type(self, instance: Resource, cls: Resource) -> bool:
        """Assert ``rdf:type(instance, cls)``."""
        if not isinstance(instance, Resource) or not isinstance(cls, Resource):
            raise TypeError("rdf:type connects a Resource instance to a Resource class")
        members = self._class_instances.setdefault(cls, set())
        if instance in members:
            return False
        members.add(instance)
        self._instance_classes.setdefault(instance, set()).add(cls)
        self._register_class(cls)
        self._instances.add(instance)
        return True

    def add_subclass(self, sub: Resource, sup: Resource) -> bool:
        """Assert ``rdfs:subClassOf(sub, sup)``."""
        if not isinstance(sub, Resource) or not isinstance(sup, Resource):
            raise TypeError("rdfs:subClassOf connects two Resource classes")
        supers = self._subclass_edges.setdefault(sub, set())
        if sup in supers:
            return False
        supers.add(sup)
        self._superclass_edges.setdefault(sup, set()).add(sub)
        self._register_class(sub)
        self._register_class(sup)
        return True

    def add_subproperty(self, sub: Relation, sup: Relation) -> bool:
        """Assert ``rdfs:subPropertyOf(sub, sup)``."""
        if not isinstance(sub, Relation) or not isinstance(sup, Relation):
            raise TypeError("rdfs:subPropertyOf connects two Relation terms")
        supers = self._subproperty_edges.setdefault(sub, set())
        if sup in supers:
            return False
        supers.add(sup)
        return True

    def _register_class(self, cls: Resource) -> None:
        self._classes.add(cls)
        # A name cannot denote both a class and an instance within one
        # ontology (the paper assumes the resources are partitioned).
        self._instances.discard(cls)

    def add_triple(self, triple: Triple) -> bool:
        """Add a :class:`~repro.rdf.triples.Triple`."""
        return self.add(triple.subject, triple.relation, triple.object)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number of new statements."""
        return sum(1 for t in triples if self.add_triple(t))

    # ------------------------------------------------------------------
    # retraction (delta ingestion, repro.service)
    # ------------------------------------------------------------------

    def remove(self, subject: Node, relation: Relation, obj: Node) -> bool:
        """Retract the statement ``relation(subject, obj)``.

        The mirror of :meth:`add`: schema relations are routed to
        :meth:`remove_type` / :meth:`remove_subclass`, data statements
        are removed from both directions, and nodes that no longer
        appear in any statement are dropped from the instance/literal
        registries.

        Returns
        -------
        bool
            ``True`` if the statement was present and removed.
        """
        if not isinstance(relation, Relation):
            raise TypeError(f"relation must be a Relation, got {type(relation).__name__}")
        base = relation.base
        if base == RDF_TYPE:
            sub, obj2 = (subject, obj) if not relation.inverted else (obj, subject)
            return self.remove_type(sub, obj2)  # type: ignore[arg-type]
        if base == RDFS_SUBCLASSOF:
            sub, obj2 = (subject, obj) if not relation.inverted else (obj, subject)
            return self.remove_subclass(sub, obj2)  # type: ignore[arg-type]
        if base == RDFS_SUBPROPERTYOF:
            raise ValueError(
                "remove rdfs:subPropertyOf edges via remove_subproperty(), "
                "they relate Relation terms, not nodes"
            )
        return self._remove_data(subject, relation, obj)

    def _remove_data(self, subject: Node, relation: Relation, obj: Node) -> bool:
        objects = self._statements.get(relation, {}).get(subject)
        if objects is None or obj not in objects:
            return False
        self._version += 1
        self._drop_direction(subject, relation, obj)
        self._drop_direction(obj, relation.inverse, subject)
        self._unregister_if_orphan(subject)
        self._unregister_if_orphan(obj)
        return True

    def _drop_direction(self, subject: Node, relation: Relation, obj: Node) -> None:
        by_subject = self._statements[relation]
        objects = by_subject[subject]
        objects.remove(obj)
        if not objects:
            del by_subject[subject]
            if not by_subject:
                del self._statements[relation]
        by_relation = self._subject_index[subject]
        indexed = by_relation[relation]
        indexed.remove(obj)
        if not indexed:
            del by_relation[relation]
            if not by_relation:
                del self._subject_index[subject]
        remaining = self._fact_counts.get(relation, 0) - 1
        if remaining > 0:
            self._fact_counts[relation] = remaining
        else:
            self._fact_counts.pop(relation, None)

    def _unregister_if_orphan(self, node: Node) -> None:
        """Drop a node from the registries once nothing mentions it."""
        if self._subject_index.get(node):
            return
        if isinstance(node, Literal):
            self._literals.discard(node)
        elif node not in self._instance_classes:
            self._instances.discard(node)

    def remove_type(self, instance: Resource, cls: Resource) -> bool:
        """Retract ``rdf:type(instance, cls)``."""
        members = self._class_instances.get(cls)
        if members is None or instance not in members:
            return False
        members.remove(instance)
        if not members:
            del self._class_instances[cls]
        classes = self._instance_classes[instance]
        classes.remove(cls)
        if not classes:
            del self._instance_classes[instance]
            if not self._subject_index.get(instance):
                self._instances.discard(instance)
        return True

    def remove_subclass(self, sub: Resource, sup: Resource) -> bool:
        """Retract ``rdfs:subClassOf(sub, sup)``."""
        supers = self._subclass_edges.get(sub)
        if supers is None or sup not in supers:
            return False
        supers.remove(sup)
        if not supers:
            del self._subclass_edges[sub]
        subs = self._superclass_edges[sup]
        subs.remove(sub)
        if not subs:
            del self._superclass_edges[sup]
        return True

    def remove_subproperty(self, sub: Relation, sup: Relation) -> bool:
        """Retract ``rdfs:subPropertyOf(sub, sup)``."""
        supers = self._subproperty_edges.get(sub)
        if supers is None or sup not in supers:
            return False
        supers.remove(sup)
        if not supers:
            del self._subproperty_edges[sub]
        return True

    def remove_triple(self, triple: Triple) -> bool:
        """Retract a :class:`~repro.rdf.triples.Triple`."""
        return self.remove(triple.subject, triple.relation, triple.object)

    # ------------------------------------------------------------------
    # statement access
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter of *data-statement* mutations.

        Bumped by every successful data add/remove (schema edits do not
        count: they never feed Eq. 13 or the functionality vectors).
        The vectorized scoring kernel (:mod:`repro.core.vectorized`)
        freezes the statement structure into flat arrays; it keys its
        cache on this counter to know when a delta made them stale.
        """
        return self._version

    def nodes_with_statements(self) -> Iterable[Node]:
        """All nodes appearing in at least one data statement (either
        position) — the node universe the vectorized kernel interns."""
        return self._subject_index.keys()

    def statements_about(self, subject: Node) -> Iterator[Tuple[Relation, Node]]:
        """Iterate ``(r, y)`` for every data statement ``r(subject, y)``.

        Includes inverse-direction statements, so this enumerates every
        data fact that mentions ``subject`` in either position — the
        traversal at the core of the optimized Eq. 13 evaluation.
        """
        by_relation = self._subject_index.get(subject)
        if not by_relation:
            return
        for relation, objects in by_relation.items():
            for obj in objects:
                yield relation, obj

    def relations_of(self, subject: Node) -> Iterable[Relation]:
        """Relations (either direction) with ``subject`` as first argument."""
        return self._subject_index.get(subject, {}).keys()

    def objects(self, relation: Relation, subject: Node) -> Set[Node]:
        """The set ``{y : relation(subject, y)}`` (empty if none)."""
        return self._statements.get(relation, {}).get(subject, set())

    def subjects(self, relation: Relation) -> Iterable[Node]:
        """All distinct first arguments of ``relation``."""
        return self._statements.get(relation, {}).keys()

    def pairs(self, relation: Relation) -> Iterator[Tuple[Node, Node]]:
        """Iterate all ``(x, y)`` with ``relation(x, y)``."""
        for subject, objects in self._statements.get(relation, {}).items():
            for obj in objects:
                yield subject, obj

    def has(self, subject: Node, relation: Relation, obj: Node) -> bool:
        """Whether the statement ``relation(subject, obj)`` is present."""
        return obj in self._statements.get(relation, {}).get(subject, set())

    def match(
        self,
        subject: Optional[Node] = None,
        relation: Optional[Relation] = None,
        obj: Optional[Node] = None,
    ) -> Iterator[Triple]:
        """Triple-pattern query: ``None`` positions are wildcards.

        >>> list(onto.match(Resource("Elvis"), None, None))  # doctest: +SKIP
        [Triple(Elvis, bornIn, Tupelo), Triple(Elvis, name, "Elvis Presley")]

        Matching uses the most selective available index: subject+
        relation → direct lookup; subject only → subject index;
        relation only → relation index; object-only patterns run on the
        materialized inverse.  Only forward-direction statements are
        yielded unless the pattern names an inverted relation.
        """
        if relation is not None and relation.inverted and subject is None and obj is None:
            # normalize: query the forward relation with swapped slots
            for triple in self.match(obj, relation.base, subject):
                yield triple
            return
        if subject is not None and relation is not None:
            objects = self.objects(relation, subject)
            candidates = [obj] if obj is not None and obj in objects else (
                objects if obj is None else []
            )
            for candidate in candidates:
                yield Triple(subject, relation, candidate)
            return
        if subject is not None:
            for rel, candidate in self.statements_about(subject):
                if rel.inverted:
                    continue
                if obj is not None and candidate != obj:
                    continue
                yield Triple(subject, rel, candidate)
            return
        if relation is not None:
            if obj is not None:
                for candidate in self.objects(relation.inverse, obj):
                    yield Triple(candidate, relation, obj)
                return
            for sub, candidate in self.pairs(relation):
                yield Triple(sub, relation, candidate)
            return
        if obj is not None:
            for rel, candidate in self.statements_about(obj):
                if not rel.inverted:
                    continue
                yield Triple(candidate, rel.inverse, obj)
            return
        yield from self.triples()

    def triples(self, include_inverses: bool = False) -> Iterator[Triple]:
        """Iterate all data statements.

        Parameters
        ----------
        include_inverses:
            If ``False`` (default), yield each assertion once, oriented
            along its forward relation.  If ``True``, yield both
            directions.
        """
        for relation, by_subject in self._statements.items():
            if relation.inverted and not include_inverses:
                continue
            for subject, objects in by_subject.items():
                for obj in objects:
                    yield Triple(subject, relation, obj)

    # ------------------------------------------------------------------
    # relation-level counts (used by functionality, Eq. 2)
    # ------------------------------------------------------------------

    def relations(self, include_inverses: bool = True) -> List[Relation]:
        """All data relations with at least one statement.

        PARIS aligns relations of both directions (Table 4 contains
        alignments such as ``actedIn ⊆ starring⁻``), so inverses are
        included by default.
        """
        rels = [r for r in self._statements if self._fact_counts.get(r)]
        if not include_inverses:
            rels = [r for r in rels if not r.inverted]
        return rels

    def num_statements(self, relation: Relation) -> int:
        """``#x,y : r(x, y)`` — the number of statements of ``relation``."""
        return self._fact_counts.get(relation, 0)

    def num_subjects(self, relation: Relation) -> int:
        """``#x : ∃y r(x, y)`` — the number of distinct first arguments."""
        return len(self._statements.get(relation, {}))

    def num_objects(self, relation: Relation) -> int:
        """``#y : ∃x r(x, y)`` — the number of distinct second arguments."""
        return len(self._statements.get(relation.inverse, {}))

    def fanout_histogram(self, relation: Relation) -> Dict[int, int]:
        """Histogram ``{fanout: count}`` of objects-per-subject for ``relation``."""
        histogram: Dict[int, int] = {}
        for objects in self._statements.get(relation, {}).values():
            histogram[len(objects)] = histogram.get(len(objects), 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------

    @property
    def instances(self) -> Set[Resource]:
        """All instance resources seen in data or ``rdf:type`` statements."""
        return self._instances

    @property
    def classes(self) -> Set[Resource]:
        """All class resources."""
        return self._classes

    @property
    def literals(self) -> Set[Literal]:
        """All literals appearing in data statements."""
        return self._literals

    def instances_of(self, cls: Resource) -> Set[Resource]:
        """Direct extension of ``cls`` (run deductive closure first if
        inherited members are needed)."""
        return self._class_instances.get(cls, set())

    def classes_of(self, instance: Resource) -> Set[Resource]:
        """Direct classes of ``instance``."""
        return self._instance_classes.get(instance, set())

    def superclasses_of(self, cls: Resource) -> Set[Resource]:
        """Direct superclasses of ``cls``."""
        return self._subclass_edges.get(cls, set())

    def subclasses_of(self, cls: Resource) -> Set[Resource]:
        """Direct subclasses of ``cls``."""
        return self._superclass_edges.get(cls, set())

    def superproperties_of(self, relation: Relation) -> Set[Relation]:
        """Direct super-relations of ``relation``."""
        return self._subproperty_edges.get(relation, set())

    def subclass_edges(self) -> Iterator[Tuple[Resource, Resource]]:
        """Iterate all direct ``(sub, sup)`` subclass edges."""
        for sub, supers in self._subclass_edges.items():
            for sup in supers:
                yield sub, sup

    def subproperty_edges(self) -> Iterator[Tuple[Relation, Relation]]:
        """Iterate all direct ``(sub, sup)`` subproperty edges."""
        for sub, supers in self._subproperty_edges.items():
            for sup in supers:
                yield sub, sup

    def type_statements(self) -> Iterator[Tuple[Resource, Resource]]:
        """Iterate all ``(instance, class)`` membership statements."""
        for cls, members in self._class_instances.items():
            for instance in members:
                yield instance, cls

    # ------------------------------------------------------------------
    # dunder / summary
    # ------------------------------------------------------------------

    @property
    def num_facts(self) -> int:
        """Number of data assertions (each counted once, not per direction)."""
        return sum(
            count for relation, count in self._fact_counts.items() if not relation.inverted
        )

    @property
    def num_type_statements(self) -> int:
        """Number of ``rdf:type`` statements."""
        return sum(len(members) for members in self._class_instances.values())

    def __len__(self) -> int:
        return self.num_facts

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        if is_schema_relation(triple.relation):
            if triple.relation.base == RDF_TYPE:
                sub, obj = triple.subject, triple.object
                if triple.relation.inverted:
                    sub, obj = obj, sub
                return obj in self._instance_classes.get(sub, set())  # type: ignore[arg-type]
            return False
        return self.has(triple.subject, triple.relation, triple.object)

    def __repr__(self) -> str:
        return (
            f"Ontology({self.name!r}: {len(self._instances)} instances, "
            f"{len(self._classes)} classes, "
            f"{len(self.relations(include_inverses=False))} relations, "
            f"{self.num_facts} facts)"
        )
