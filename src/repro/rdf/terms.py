"""Term model for the RDFS substrate.

The paper (Section 3) models an ontology as a set of triples
``O ⊆ R × P × (R ∪ L)`` over a global set of resources ``R``, literals
``L`` and properties ``P``.  This module provides the three corresponding
term types:

* :class:`Resource` — an identifier for a real-world object (instance or
  class).
* :class:`Literal` — a string, number or date.  Literals are shared across
  ontologies and compared by literal-similarity functions
  (:mod:`repro.literals`).
* :class:`Relation` — a binary predicate.  Every relation has an inverse
  (``r.inverse``); PARIS materializes all inverse statements, which is why
  literals may appear in subject position (a "minor digression from the
  standard", Section 3).

All terms are immutable, hashable and slotted so they can be used as
dictionary keys in the hot loops of the aligner.
"""

from __future__ import annotations

from typing import Union


class Term:
    """Base class for all RDF terms.

    Terms compare by value and are safe to use as dictionary keys.  The
    concrete subclasses are :class:`Resource`, :class:`Literal` and
    :class:`Relation`.
    """

    __slots__ = ()

    @property
    def is_literal(self) -> bool:
        """Whether this term is a literal value."""
        return isinstance(self, Literal)

    @property
    def is_resource(self) -> bool:
        """Whether this term is a resource (instance or class)."""
        return isinstance(self, Resource)


class Resource(Term):
    """An identifier for a real-world object.

    A resource may denote an *instance* (e.g. ``Elvis``) or a *class*
    (e.g. ``singer``); the distinction is tracked by the
    :class:`~repro.rdf.ontology.Ontology` that contains it, not by the
    term itself, because the same name could play either role in
    different ontologies.

    Parameters
    ----------
    name:
        The URI or local name identifying the resource.  Names are
        compared exactly; two resources with the same name are the same
        term.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not isinstance(name, str):
            raise TypeError(f"resource name must be a string, got {type(name).__name__}")
        if not name:
            raise ValueError("resource name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("R", name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Resource is immutable")

    def __reduce__(self):
        # Slotted immutables reject the default __setstate__; rebuild
        # through the constructor so terms can cross process boundaries
        # (the sharded parallel engine ships them to worker processes).
        return (Resource, (self.name,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Resource) and other.name == self.name

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Resource({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Literal(Term):
    """A literal value: a string, a number, or a date rendered as a string.

    The paper clamps literal equivalence probabilities up front
    (Section 5.3).  We therefore store literals as their lexical form
    plus an optional datatype tag; similarity functions in
    :mod:`repro.literals` decide what "equal" means.

    Parameters
    ----------
    value:
        Lexical form of the literal (always stored as ``str``; numeric
        inputs are converted).
    datatype:
        Optional datatype hint such as ``"string"``, ``"integer"``,
        ``"decimal"`` or ``"date"``.  Kept for normalization
        (Section 5.3 discusses stripping datatype and dimension
        information); ignored by term equality.
    """

    __slots__ = ("value", "datatype", "_hash")

    def __init__(self, value: Union[str, int, float], datatype: str | None = None) -> None:
        if isinstance(value, bool):
            raise TypeError("boolean literals are not part of the paper's model")
        if isinstance(value, (int, float)):
            if datatype is None:
                datatype = "integer" if isinstance(value, int) else "decimal"
            value = repr(value) if isinstance(value, float) else str(value)
        if not isinstance(value, str):
            raise TypeError(f"literal value must be str/int/float, got {type(value).__name__}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "_hash", hash(("L", value)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        return (Literal, (self.value, self.datatype))

    def __eq__(self, other: object) -> bool:
        # Datatype is a hint only: "42"^^integer and "42" are one term.
        return isinstance(other, Literal) and other.value == self.value

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.datatype:
            return f"Literal({self.value!r}, datatype={self.datatype!r})"
        return f"Literal({self.value!r})"

    def __str__(self) -> str:
        return self.value


class Relation(Term):
    """A binary predicate, possibly the inverse of a named predicate.

    ``Relation("wasBornIn")`` is the forward relation;
    ``Relation("wasBornIn").inverse`` is the relation written
    ``wasBornIn⁻`` in the paper, satisfying
    ``r(x, y) ⇔ r⁻(y, x)``.  Double inversion returns the forward
    relation (``r.inverse.inverse == r``).

    Parameters
    ----------
    name:
        Name of the underlying predicate.
    inverted:
        ``True`` if this term denotes the inverse direction.
    """

    __slots__ = ("name", "inverted", "_hash")

    #: Textual marker used when rendering inverse relations.
    INVERSE_SUFFIX = "^-1"

    def __init__(self, name: str, inverted: bool = False) -> None:
        if not isinstance(name, str):
            raise TypeError(f"relation name must be a string, got {type(name).__name__}")
        if not name:
            raise ValueError("relation name must be non-empty")
        if name.endswith(self.INVERSE_SUFFIX):
            raise ValueError(
                f"relation name must not end with {self.INVERSE_SUFFIX!r}; "
                "use inverted=True or .inverse instead"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "inverted", bool(inverted))
        object.__setattr__(self, "_hash", hash(("P", name, bool(inverted))))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Relation is immutable")

    def __reduce__(self):
        return (Relation, (self.name, self.inverted))

    @property
    def inverse(self) -> "Relation":
        """The relation ``r⁻`` with arguments swapped."""
        return Relation(self.name, not self.inverted)

    @property
    def base(self) -> "Relation":
        """The forward (non-inverted) relation underlying this term."""
        return self if not self.inverted else Relation(self.name, False)

    @classmethod
    def parse(cls, text: str) -> "Relation":
        """Parse a relation from text, honouring the ``^-1`` suffix.

        >>> Relation.parse("actedIn^-1")
        Relation('actedIn', inverted=True)
        """
        if text.endswith(cls.INVERSE_SUFFIX):
            return cls(text[: -len(cls.INVERSE_SUFFIX)], inverted=True)
        return cls(text)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and other.name == self.name
            and other.inverted == self.inverted
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.inverted:
            return f"Relation({self.name!r}, inverted=True)"
        return f"Relation({self.name!r})"

    def __str__(self) -> str:
        return self.name + (self.INVERSE_SUFFIX if self.inverted else "")


#: Type alias for anything allowed in subject/object position.  Because
#: inverse statements are materialized, literals may appear as subjects.
Node = Union[Resource, Literal]
