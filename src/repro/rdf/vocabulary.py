"""RDF/RDFS vocabulary constants used throughout the reproduction.

The paper relies on three pieces of the RDFS vocabulary (Section 3):

* ``rdf:type`` connects an instance to a class,
* ``rdfs:subClassOf`` orders classes,
* ``rdfs:subPropertyOf`` orders relations,
* ``rdfs:label`` attaches human-readable names (used by the baseline of
  Section 6.4).

We use short prefixed names rather than full URIs; the substrate treats
them as ordinary relation names, which matches how PARIS consumes its
input after Jena loading.
"""

from __future__ import annotations

from .terms import Relation, Resource

#: Connects an instance to a class it belongs to.
RDF_TYPE = Relation("rdf:type")

#: Orders classes: ``rdfs:subClassOf(c, d)`` means every instance of
#: ``c`` is an instance of ``d``.
RDFS_SUBCLASSOF = Relation("rdfs:subClassOf")

#: Orders relations: ``rdfs:subPropertyOf(r, s)`` means
#: ``r(x, y) ⇒ s(x, y)``.
RDFS_SUBPROPERTYOF = Relation("rdfs:subPropertyOf")

#: Human-readable name of a resource.  PARIS itself never inspects
#: labels (it is name-heuristic free), but the Section 6.4 baseline and
#: the dataset generators use them.
RDFS_LABEL = Relation("rdfs:label")

#: Relations whose statements express schema rather than data.  These
#: are excluded from functionality computation and from the equivalence
#: equations: PARIS aligns schema through Eq. 12 / Eq. 17, not by
#: treating ``rdf:type`` edges as evidence in Eq. 13.
SCHEMA_RELATIONS = frozenset({RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF})


def is_schema_relation(relation: Relation) -> bool:
    """Whether ``relation`` (in either direction) is an RDFS schema relation."""
    return relation.base in SCHEMA_RELATIONS


#: A conventional top class; generators may use it as a hierarchy root.
OWL_THING = Resource("owl:Thing")
