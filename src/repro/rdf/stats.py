"""Ontology statistics (Table 2 of the paper).

Table 2 reports, for YAGO, DBpedia and IMDb, the number of instances,
classes and relations.  :func:`describe` computes those together with a
few extra structural figures that the dataset generators use to check
they produced the intended shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .ontology import Ontology


@dataclass(frozen=True)
class OntologyStats:
    """Structural summary of one ontology."""

    name: str
    num_instances: int
    num_classes: int
    num_relations: int
    num_facts: int
    num_type_statements: int
    num_subclass_edges: int
    num_literals: int

    def as_row(self) -> Dict[str, object]:
        """Render as a Table-2 style row."""
        return {
            "Ontology": self.name,
            "#Instances": self.num_instances,
            "#Classes": self.num_classes,
            "#Relations": self.num_relations,
        }


def describe(ontology: Ontology) -> OntologyStats:
    """Compute the summary statistics of ``ontology``."""
    return OntologyStats(
        name=ontology.name,
        num_instances=len(ontology.instances),
        num_classes=len(ontology.classes),
        num_relations=len(ontology.relations(include_inverses=False)),
        num_facts=ontology.num_facts,
        num_type_statements=ontology.num_type_statements,
        num_subclass_edges=sum(1 for _ in ontology.subclass_edges()),
        num_literals=len(ontology.literals),
    )


def statistics_table(ontologies: List[Ontology]) -> str:
    """Render a Table-2 style text table for several ontologies."""
    rows = [describe(o).as_row() for o in ontologies]
    headers = ["Ontology", "#Instances", "#Classes", "#Relations"]
    widths = {h: max(len(h), *(len(str(r[h])) for r in rows)) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
