"""Statement (triple) model.

A statement ``r(x, y)`` asserts that relation ``r`` holds between ``x``
and ``y`` (Section 3 of the paper).  Statements are value objects; the
indexed storage lives in :class:`repro.rdf.ontology.Ontology`.
"""

from __future__ import annotations

from typing import NamedTuple

from .terms import Node, Relation


class Triple(NamedTuple):
    """One statement ``relation(subject, object)``.

    Because PARIS materializes inverse relations, the subject may be a
    literal when the relation is inverted (e.g. ``rdfs:label⁻("Elvis",
    Elvis)``).
    """

    subject: Node
    relation: Relation
    object: Node

    @property
    def inverse(self) -> "Triple":
        """The materialized inverse statement ``r⁻(y, x)``."""
        return Triple(self.object, self.relation.inverse, self.subject)

    @property
    def canonical(self) -> "Triple":
        """The statement oriented along the forward relation.

        ``t.canonical == t.inverse.canonical`` for every triple ``t``,
        which makes it the right key for de-duplicating a store that
        keeps both directions.
        """
        return self if not self.relation.inverted else self.inverse

    def __str__(self) -> str:
        return f"{self.relation}({self.subject}, {self.object})"
