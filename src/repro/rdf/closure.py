"""Deductive closure of an ontology.

The paper assumes its input ontologies "are available in their
deductive closure, i.e., all statements implied by the subclass and
sub-property statements have been added to the ontology" (Section 3).
The generators in :mod:`repro.datasets` produce direct assertions only;
this module materializes the implied ones:

* ``rdfs:subClassOf`` is transitive, and membership propagates upward:
  ``type(x, c) ∧ subClassOf(c, d) ⇒ type(x, d)``.
* ``rdfs:subPropertyOf`` is transitive, and statements propagate upward:
  ``r(x, y) ∧ subPropertyOf(r, s) ⇒ s(x, y)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, TypeVar

from .ontology import Ontology
from .terms import Relation, Resource

T = TypeVar("T")


def transitive_closure(edges: Dict[T, Set[T]]) -> Dict[T, Set[T]]:
    """Transitive closure of a successor map ``node -> direct successors``.

    Uses an iterative depth-first walk with memoization; cycles are
    tolerated (every node in a cycle reaches all the others).
    """
    closed: Dict[T, Set[T]] = {}

    def reach(start: T) -> Set[T]:
        if start in closed:
            return closed[start]
        result: Set[T] = set()
        stack = [start]
        visited = {start}
        while stack:
            node = stack.pop()
            for successor in edges.get(node, ()):
                if successor in closed:
                    result.add(successor)
                    result |= closed[successor]
                elif successor not in visited:
                    visited.add(successor)
                    result.add(successor)
                    stack.append(successor)
                else:
                    result.add(successor)
        closed[start] = result
        return result

    for node in list(edges):
        reach(node)
    return closed


def superclass_closure(ontology: Ontology) -> Dict[Resource, Set[Resource]]:
    """Map each class to *all* (direct and transitive) superclasses."""
    direct = {cls: set(ontology.superclasses_of(cls)) for cls in ontology.classes}
    return transitive_closure(direct)


def superproperty_closure(ontology: Ontology) -> Dict[Relation, Set[Relation]]:
    """Map each relation to all (direct and transitive) super-relations."""
    direct: Dict[Relation, Set[Relation]] = {}
    for sub, sup in ontology.subproperty_edges():
        direct.setdefault(sub, set()).add(sup)
    return transitive_closure(direct)


def deductive_closure(ontology: Ontology) -> int:
    """Materialize all implied statements in-place.

    Returns
    -------
    int
        The number of statements added (type memberships plus data
        statements copied to super-relations).
    """
    added = 0
    # 1. propagate class memberships upward.
    superclasses = superclass_closure(ontology)
    for cls, supers in superclasses.items():
        if not supers:
            continue
        for instance in list(ontology.instances_of(cls)):
            for sup in supers:
                if ontology.add_type(instance, sup):
                    added += 1
    # 2. propagate data statements to super-relations.
    superproperties = superproperty_closure(ontology)
    for relation, supers in superproperties.items():
        if not supers:
            continue
        for subject, obj in list(ontology.pairs(relation)):
            for sup in supers:
                if ontology.add(subject, sup, obj):
                    added += 1
    return added


def ancestors_or_self(
    cls: Resource, superclasses: Dict[Resource, Set[Resource]]
) -> Set[Resource]:
    """``{cls} ∪ all superclasses of cls`` given a closure map."""
    result = {cls}
    result |= superclasses.get(cls, set())
    return result


def is_subclass_of(
    ontology: Ontology,
    sub: Resource,
    sup: Resource,
    closure: Dict[Resource, Set[Resource]] | None = None,
) -> bool:
    """Whether ``sub ⊑ sup`` holds in the (possibly closed) hierarchy."""
    if sub == sup:
        return True
    if closure is None:
        closure = superclass_closure(ontology)
    return sup in closure.get(sub, set())


def roots(ontology: Ontology) -> Set[Resource]:
    """Classes with no superclass (hierarchy roots)."""
    return {cls for cls in ontology.classes if not ontology.superclasses_of(cls)}


def leaves(ontology: Ontology) -> Set[Resource]:
    """Classes with no subclass (hierarchy leaves)."""
    return {cls for cls in ontology.classes if not ontology.subclasses_of(cls)}


def depth_map(ontology: Ontology) -> Dict[Resource, int]:
    """Depth of each class (roots have depth 0; max over parents + 1).

    Cycles are broken by treating back-edges as already-final; the
    function always terminates.
    """
    depths: Dict[Resource, int] = {}
    remaining: Iterable[Resource] = list(ontology.classes)
    for cls in roots(ontology):
        depths[cls] = 0
    changed = True
    while changed:
        changed = False
        for cls in remaining:
            parents = ontology.superclasses_of(cls)
            known = [depths[p] for p in parents if p in depths]
            if known:
                candidate = max(known) + 1
                if depths.get(cls) != candidate and cls not in depths:
                    depths[cls] = candidate
                    changed = True
    for cls in ontology.classes:
        depths.setdefault(cls, 0)
    return depths
