"""Structural transforms for heterogeneous modelling styles.

The paper's conclusion names structural heterogeneity as PARIS's main
limitation: "If one ontology models an event by a relation (such as
wonAward), while the other one models it by an event entity (such as
winningEvent, with relations winner, award, year), then paris will not
be able to find matches."  These transforms normalize such modelling
differences *before* alignment:

* :func:`dereify` — collapse event entities into direct relations
  (``winner(e, p) ∧ award(e, a)  ⇒  wonAward(p, a)``),
* :func:`reify` — the opposite direction, materializing an event entity
  per statement of a relation,
* :func:`copy_ontology` — both transforms return modified copies and
  never touch their input.

With ``dereify`` applied to the event-style ontology, the pair becomes
alignable by plain PARIS — see ``examples/structural_heterogeneity.py``
and ``tests/test_transforms.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .ontology import Ontology
from .terms import Relation, Resource

def copy_ontology(ontology: Ontology, name: Optional[str] = None) -> Ontology:
    """Deep-copy an ontology (data, types, hierarchy edges)."""
    duplicate = Ontology(name or ontology.name)
    for triple in ontology.triples():
        duplicate.add_triple(triple)
    for instance, cls in ontology.type_statements():
        duplicate.add_type(instance, cls)
    for sub, sup in ontology.subclass_edges():
        duplicate.add_subclass(sub, sup)
    for sub, sup in ontology.subproperty_edges():
        duplicate.add_subproperty(sub, sup)
    return duplicate


def dereify(
    ontology: Ontology,
    event_class: Resource,
    subject_relation: Relation,
    object_relation: Relation,
    new_relation: Relation,
    drop_events: bool = True,
    copy_relations: Iterable[Tuple[Relation, Relation]] = (),
) -> Ontology:
    """Collapse event entities into a direct relation.

    For every instance ``e`` of ``event_class`` with
    ``subject_relation(e, s)`` and ``object_relation(e, o)``, assert
    ``new_relation(s, o)`` in the returned copy.

    Parameters
    ----------
    event_class:
        The class whose instances are reified events.
    subject_relation, object_relation:
        Event → participant relations providing the new statement's
        subject and object.
    new_relation:
        The direct relation to assert.
    drop_events:
        If ``True`` (default), the event entities and all their
        statements are omitted from the copy — the events have been
        fully translated.  If ``False``, the direct statements are
        added alongside.
    copy_relations:
        Extra ``(event_relation, subject_attribute_relation)`` pairs:
        for each, a statement ``event_relation(e, v)`` becomes
        ``subject_attribute_relation(s, v)`` — e.g. carrying the event's
        ``year`` onto the winner as ``wonAwardYear``.

    Returns
    -------
    Ontology
        A transformed copy named ``"<name>+dereified"``.
    """
    events = set(ontology.instances_of(event_class))
    result = Ontology(f"{ontology.name}+dereified")
    # copy everything except (optionally) the event entities
    for triple in ontology.triples():
        if drop_events and (triple.subject in events or triple.object in events):
            continue
        result.add_triple(triple)
    for instance, cls in ontology.type_statements():
        if drop_events and (instance in events or cls == event_class):
            continue
        result.add_type(instance, cls)
    for sub, sup in ontology.subclass_edges():
        if drop_events and event_class in (sub, sup):
            continue
        result.add_subclass(sub, sup)
    for sub, sup in ontology.subproperty_edges():
        result.add_subproperty(sub, sup)
    # translate the events
    extra = list(copy_relations)
    for event in events:
        subjects = ontology.objects(subject_relation, event)
        objects = ontology.objects(object_relation, event)
        for subject in subjects:
            for obj in objects:
                result.add(subject, new_relation, obj)
            for event_relation, attribute_relation in extra:
                for value in ontology.objects(event_relation, event):
                    result.add(subject, attribute_relation, value)
    return result


def reify(
    ontology: Ontology,
    relation: Relation,
    event_class: Resource,
    subject_relation: Relation,
    object_relation: Relation,
    event_prefix: str = "event",
    drop_relation: bool = True,
) -> Ontology:
    """Materialize an event entity per statement of ``relation``.

    The inverse of :func:`dereify`: each ``relation(s, o)`` becomes a
    fresh instance ``e`` of ``event_class`` with
    ``subject_relation(e, s)`` and ``object_relation(e, o)``.
    """
    result = Ontology(f"{ontology.name}+reified")
    for triple in ontology.triples():
        if drop_relation and triple.relation.base == relation.base:
            continue
        result.add_triple(triple)
    for instance, cls in ontology.type_statements():
        result.add_type(instance, cls)
    for sub, sup in ontology.subclass_edges():
        result.add_subclass(sub, sup)
    for sub, sup in ontology.subproperty_edges():
        result.add_subproperty(sub, sup)
    for index, (subject, obj) in enumerate(sorted(
        ontology.pairs(relation), key=lambda pair: (str(pair[0]), str(pair[1]))
    )):
        event = Resource(f"{event_prefix}:{relation.name}:{index}")
        result.add_type(event, event_class)
        result.add(event, subject_relation, subject)
        result.add(event, object_relation, obj)
    return result
