"""Command-line interface.

::

    python -m repro align left.nt right.nt --out result_dir [options]
    python -m repro stats onto1.nt onto2.nt ...
    python -m repro stats http://host:8765 [--watch SECS] [--raw]
    python -m repro demo {person,restaurant,kb,movies}
    python -m repro convert input.nt output.tsv
    python -m repro serve left.nt right.nt --state-dir dir --port 8765 \
        [--wal] [--watch deltas.ndjson] [--max-batch 32] [--max-lag-ms 50] \
        [--wal-segment-bytes 16777216] [--wal-group-commit-ms 5]
    python -m repro replay dir/wal.ndjson --state-dir dir
    python -m repro replica http://primary:8765 --port 8766 --state-dir rep1
    python -m repro route --primary http://primary:8765 \
        --replica http://rep1:8766 --replica http://rep2:8767 --port 8800
    python -m repro watch http://primary:8765 --entity Elvis --epsilon 0.05
    python -m repro trace http://primary:8765 TRACE_ID \
        [--replicas http://rep1:8766 ...] [--json]
    python -m repro wal compact --state-dir dir

``align`` loads two ontologies (N-Triples or TSV, by extension), runs
PARIS and writes the full result (instances/relations/classes) plus an
``owl:sameAs`` link file.  ``demo`` regenerates one of the paper's
experiments on its synthetic benchmark and prints the report tables.
``serve`` starts the long-running incremental alignment service
(:mod:`repro.service`): it cold-aligns the inputs once (or resumes the
newest snapshot in ``--state-dir``), then absorbs ``POST /delta``
batches via the warm-start fixpoint and answers ``GET /pair`` /
``GET /alignment`` queries from the live state.  ``--wal`` / ``--watch``
put the streaming ingestion pipeline (:mod:`repro.service.stream`) in
front of the engine: tailed NDJSON files or spool directories feed the
same admission-controlled queue as ``POST /delta``, accepted deltas are
write-ahead-logged before application, and the coalescing batcher
merges queued writes so one warm pass absorbs many of them.  ``replay``
is the matching offline recovery tool: it reapplies a WAL's
un-snapshotted suffix onto the newest snapshot and snapshots the
caught-up state.

``replica`` and ``route`` scale *reads* out (:mod:`repro.service.replica`):
a replica bootstraps from the primary's snapshot (shared state
directory, or over HTTP) and tails its WAL — the replication log — to
converge to the primary's scores; the router fans ``GET /pair`` /
``GET /alignment`` across replicas, forwards writes to the primary and
honors bounded-staleness reads (``?min_offset=`` / ``?max_lag_ms=``).
``wal compact`` reclaims sealed WAL segments a durable snapshot
already covers (the serve process also compacts automatically after
each snapshot when ``--wal-segment-bytes`` is set).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import List, Optional, Tuple

from . import __version__
from .core.aligner import align
from .core.config import ParisConfig
from .core.parallel import BACKENDS
from .io.alignment_io import save_result, write_sameas_links
from .obs import get_event_logger
from .obs.logging import LOG_FORMATS, LOG_LEVELS, setup_logging
from .literals import (
    EditDistanceSimilarity,
    IdentitySimilarity,
    LiteralSimilarity,
    NormalizedIdentitySimilarity,
    tolerant_similarity,
)
from .rdf import ntriples, tsv
from .rdf.ontology import Ontology
from .rdf.stats import statistics_table

_log = get_event_logger("repro.cli")

#: Literal-similarity choices exposed on the command line.
SIMILARITIES = {
    "identity": IdentitySimilarity,
    "normalized": NormalizedIdentitySimilarity,
    "edit-distance": EditDistanceSimilarity,
    "tolerant": tolerant_similarity,
}


def load_ontology(path: str, name: Optional[str] = None) -> Ontology:
    """Load an ontology by extension (``.nt``/``.ntriples`` or ``.tsv``)."""
    file_path = Path(path)
    if not file_path.exists():
        raise SystemExit(f"error: no such file: {path}")
    suffix = file_path.suffix.lower()
    if suffix in (".nt", ".ntriples"):
        return ntriples.read_ntriples(file_path, name=name)
    if suffix == ".tsv":
        return tsv.read_tsv(file_path, name=name)
    raise SystemExit(f"error: unsupported extension {suffix!r} (use .nt or .tsv)")


def _load_pair(args: argparse.Namespace) -> tuple:
    """Load the two positional ontologies, disambiguating name collisions."""
    left = load_ontology(args.left, name=args.left_name)
    right = load_ontology(args.right, name=args.right_name)
    if left.name == right.name:
        # default stems collided; disambiguate instead of failing
        right = load_ontology(args.right, name=left.name + "-2")
    return left, right


def _build_config(args: argparse.Namespace) -> ParisConfig:
    similarity: LiteralSimilarity = SIMILARITIES[args.similarity]()
    return ParisConfig(
        theta=args.theta,
        literal_similarity=similarity,
        max_iterations=args.max_iterations,
        use_negative_evidence=args.negative_evidence,
        use_name_prior=args.name_prior,
        workers=args.workers,
        shard_size=args.shard_size,
        parallel_backend=args.parallel_backend,
    )


def cmd_align(args: argparse.Namespace) -> int:
    left, right = _load_pair(args)
    config = _build_config(args)
    _log.info("aligning", left=repr(left), right=repr(right))
    started = time.perf_counter()
    result = align(left, right, config)
    elapsed = time.perf_counter() - started
    _log.info("alignment done", seconds=round(elapsed, 1), summary=result.summary())
    out_dir = Path(args.out)
    save_result(result, out_dir)
    links = write_sameas_links(
        result.assignment12, out_dir / "sameas.nt", threshold=args.threshold
    )
    _log.info("result written", path=str(out_dir), sameas_links=links)
    if args.print_pairs:
        # Total order: probability ties sort by name, so the output does
        # not depend on store insertion order (sequential vs. sharded).
        for entity, counterpart, probability in sorted(
            result.instance_pairs(args.threshold),
            key=lambda p: (-p[2], str(p[0]), str(p[1])),
        ):
            print(f"{entity}\t{counterpart}\t{probability:.4f}")
    return 0


def _service_stats_once(base_url: str, raw: bool) -> None:
    """Fetch and print one ``/stats`` (or ``/metrics`` with ``raw``)."""
    from urllib.request import urlopen

    path = "/metrics" if raw else "/stats"
    with urlopen(base_url.rstrip("/") + path, timeout=30) as response:
        body = response.read().decode("utf-8")
    if raw:
        # Prometheus text: pass through verbatim (it is already lines).
        print(body, end="" if body.endswith("\n") else "\n")
    else:
        print(json.dumps(json.loads(body), indent=2, sort_keys=True))


def _watch_service_stats(
    base_url: str,
    raw: bool,
    interval: float,
    fetch=_service_stats_once,
    sleep=time.sleep,
    max_retry: float = 8.0,
) -> None:
    """The ``stats --watch`` loop: poll forever, riding out transient
    connection failures (a restarting primary, a dropped socket) with
    exponential backoff instead of dying on the first refused
    connection.  Only ``KeyboardInterrupt`` ends it; a healthy fetch
    resets the backoff.  ``fetch``/``sleep`` are injectable for tests.
    """
    import urllib.error

    delay = 0.5
    while True:
        try:
            fetch(base_url, raw)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
            print(f"stats fetch failed ({error}); retrying in {delay:g}s")
            sleep(delay)
            delay = min(delay * 2, max_retry)
            continue
        delay = 0.5
        sleep(interval)


def cmd_stats(args: argparse.Namespace) -> int:
    is_url = [f.startswith(("http://", "https://")) for f in args.files]
    if any(is_url):
        if len(args.files) != 1:
            raise SystemExit("error: pass exactly one service URL to stats")
        if args.watch is None:
            _service_stats_once(args.files[0], raw=args.raw)
            return 0
        try:
            _watch_service_stats(args.files[0], args.raw, args.watch)
        except KeyboardInterrupt:  # pragma: no cover - interactive --watch
            pass
        return 0
    if args.watch is not None or args.raw:
        raise SystemExit("error: --watch/--raw require a service URL, not files")
    ontologies = [load_ontology(path) for path in args.files]
    print(statistics_table(ontologies))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    ontology = load_ontology(args.input)
    target = Path(args.output)
    suffix = target.suffix.lower()
    if suffix in (".nt", ".ntriples"):
        count = ntriples.write_ntriples(ontology, target)
    elif suffix == ".tsv":
        count = tsv.write_tsv(ontology, target)
    else:
        raise SystemExit(f"error: unsupported output extension {suffix!r}")
    _log.info("converted", statements=count, path=str(target))
    return 0


def cmd_multi(args: argparse.Namespace) -> int:
    from .core.multi import align_many

    if len(args.files) < 2:
        raise SystemExit("error: need at least two ontology files")
    ontologies = []
    for index, path in enumerate(args.files):
        ontology = load_ontology(path)
        if any(o.name == ontology.name for o in ontologies):
            ontology = load_ontology(path, name=f"{ontology.name}-{index}")
        ontologies.append(ontology)
    result = align_many(ontologies, _build_config(args))
    _log.info(
        "aligned ontologies",
        ontologies=len(ontologies),
        pairwise_runs=len(result.pairwise),
        clusters=len(result.clusters),
    )
    target = Path(args.out)
    with target.open("w", encoding="utf-8") as stream:
        stream.write("confidence\t" + "\t".join(o.name for o in ontologies) + "\n")
        for cluster in result.clusters:
            cells = [f"{cluster.confidence:.4f}"]
            for ontology in ontologies:
                member = cluster.members.get(ontology.name)
                cells.append(member.name if member else "-")
            stream.write("\t".join(cells) + "\n")
    _log.info("clusters written", path=str(target))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .analysis import explain_match, render_explanation
    from .rdf.terms import Resource

    left, right = _load_pair(args)
    config = _build_config(args)
    result = align(left, right, config)
    explanation = explain_match(
        left, right, result, Resource(args.entity), Resource(args.counterpart), config
    )
    print(render_explanation(explanation, limit=args.limit))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .datasets import (
        person_benchmark,
        restaurant_benchmark,
        yago_dbpedia_pair,
        yago_imdb_pair,
    )
    from .evaluation import (
        evaluate_instances,
        evaluate_relations,
        render_iteration_table,
        render_relation_alignments,
    )

    makers = {
        "person": person_benchmark,
        "restaurant": restaurant_benchmark,
        "kb": yago_dbpedia_pair,
        "movies": yago_imdb_pair,
    }
    pair = makers[args.benchmark]()
    config = ParisConfig(
        max_iterations=4,
        convergence_threshold=0.0,
        workers=args.workers,
        shard_size=args.shard_size,
        parallel_backend=args.parallel_backend,
    )
    result = align(pair.ontology1, pair.ontology2, config)
    print(render_iteration_table(result, pair.gold))
    print()
    print(render_relation_alignments(result, threshold=0.1, limit=15))
    instances = evaluate_instances(result.assignment12, pair.gold)
    relations = evaluate_relations(result.relation_pairs(), pair.gold)
    print(f"\ninstances: {instances}\nrelations: {relations}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import AlignmentService, latest_version, load_state
    from .service.server import run_server
    from .service.subs import SubscriptionManager

    from dataclasses import replace

    state_dir = Path(args.state_dir)
    resumable = state_dir.is_dir() and latest_version(state_dir) is not None
    if resumable:
        if args.left or args.right:
            _log.info(
                "resuming snapshot; ignoring ontology arguments",
                state_dir=str(state_dir),
            )
        state = load_state(state_dir)
        # Model knobs (theta, similarity, ...) are part of the snapshot
        # and must not drift under a resumed state; the runtime-only
        # parallel knobs follow the command line, as for a cold start.
        state.config = replace(
            state.config,
            workers=args.workers,
            shard_size=args.shard_size,
            parallel_backend=args.parallel_backend,
        )
        _log.info(
            "resumed alignment state (model settings come from the snapshot)",
            version=state.version,
        )
        service = AlignmentService.from_state(state)
    else:
        if not args.left or not args.right:
            raise SystemExit(
                "error: no snapshot to resume — pass two ontology files "
                "for the initial cold alignment"
            )
        left, right = _load_pair(args)
        config = _build_config(args)
        _log.info("cold-aligning", left=repr(left), right=repr(right))
        started = time.perf_counter()
        service = AlignmentService.cold_start(left, right, config)
        _log.info(
            "cold alignment done",
            seconds=round(time.perf_counter() - started, 1),
            instance_pairs=len(service.state.store),
        )
        service.snapshot(state_dir)
    # Attached before any WAL replay: replayed batches regenerate the
    # change log for persisted webhook subscribers, whose delivery
    # cursors (state versions) filter out what they already received.
    subs = SubscriptionManager(state_dir=state_dir)
    service.add_change_listener(subs.publish)
    subs.provenance = service.provenance
    subs.advance(service.state.version, service.state.wal_offset)
    stream = None
    if args.wal or args.watch:
        from .service.stream import (
            DeltaBatcher,
            StreamStack,
            WriteAheadLog,
            make_source,
            replay_wal,
        )

        wal = None
        if args.wal:
            wal = WriteAheadLog(
                state_dir / "wal.ndjson",
                segment_bytes=args.wal_segment_bytes,
                group_commit=args.wal_group_commit_ms / 1000.0,
            )
            # Wired before replay so replayed records land in the ring
            # (as non-live timelines) and later fsyncs stamp "durable".
            wal.provenance = service.provenance
            replayed = replay_wal(service, wal, max_batch=args.max_batch)
            if replayed:
                _log.info(
                    "replayed un-snapshotted WAL records",
                    records=replayed,
                    offset=service.state.wal_offset,
                )
        # The --snapshot-every policy is installed by build_server as
        # the batcher's on_batch_applied hook (once per applied batch).
        batcher = DeltaBatcher(
            service,
            wal=wal,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            max_lag=args.max_lag_ms / 1000.0,
        )
        sources = [make_source(batcher, path) for path in args.watch]
        for source in sources:
            _log.info("streaming deltas", source=source.source_id)
        stream = StreamStack(batcher=batcher, wal=wal, sources=sources)
    auditor = _build_auditor(args, lambda: service, role="primary")
    return run_server(
        service,
        args.host,
        args.port,
        state_dir=state_dir,
        snapshot_every=args.snapshot_every,
        stream=stream,
        subs=subs,
        auditor=auditor,
    )


def _add_audit_options(parser: argparse.ArgumentParser) -> None:
    from .service.audit import DEFAULT_INTERVAL_MS, DEFAULT_SAMPLE

    parser.add_argument("--audit-interval-ms", type=int,
                        default=DEFAULT_INTERVAL_MS,
                        help="background correctness-audit interval: every "
                             "interval, sample pairs are cold-recomputed "
                             "against the resident store and the state "
                             "digest is periodically re-derived in full "
                             f"(default {DEFAULT_INTERVAL_MS}; 0 disables)")
    parser.add_argument("--audit-sample", type=int, default=DEFAULT_SAMPLE,
                        help="matched pairs cold-verified per audit cycle "
                             f"(default {DEFAULT_SAMPLE})")


def _build_auditor(args: argparse.Namespace, get_service, role: str):
    """The background correctness auditor behind --audit-interval-ms
    (0 disables it)."""
    if args.audit_interval_ms <= 0:
        return None
    from .service.audit import StateAuditor

    return StateAuditor(
        get_service,
        interval_ms=args.audit_interval_ms,
        sample=args.audit_sample,
        role=role,
    )


def cmd_replay(args: argparse.Namespace) -> int:
    from .service import AlignmentService, load_state
    from .service.stream import WriteAheadLog, replay_wal

    state = load_state(args.state_dir)
    service = AlignmentService.from_state(state)
    wal = WriteAheadLog(args.wal, read_only=True)
    before = state.wal_offset
    _log.info(
        "replay starting",
        version=state.version,
        snapshot_offset=before,
        wal_records=wal.offset,
    )
    replayed = replay_wal(service, wal, max_batch=args.max_batch)
    if replayed:
        _log.info(
            "replayed records",
            records=replayed,
            first_offset=before + 1,
            last_offset=service.state.wal_offset,
        )
    else:
        _log.info("nothing to replay: snapshot already covers the log")
    if replayed and not args.no_snapshot:
        path = service.snapshot(args.state_dir)
        _log.info("caught-up state saved", path=str(path))
    return 0


def cmd_replica(args: argparse.Namespace) -> int:
    from .service.replica import ReplicaNode
    from .service.server import build_server

    overrides = {
        "workers": args.workers,
        "shard_size": args.shard_size,
        "parallel_backend": args.parallel_backend,
    }
    replica = ReplicaNode(
        args.source,
        state_dir=args.state_dir,
        poll_interval=args.poll_ms / 1000.0,
        batch=args.replica_batch,
        snapshot_every=args.snapshot_every,
        config_overrides=overrides,
    )
    _log.info(
        "replica bootstrapped",
        offset=replica.applied_offset,
        source=replica.follower.source_id,
    )
    # The auditor resolves the engine through the node per check, so
    # one auditor survives re-bootstraps (like the provenance ring).
    auditor = _build_auditor(args, lambda: replica.service, role="replica")
    replica.auditor = auditor
    server = build_server(
        None,
        args.host,
        args.port,
        state_dir=args.state_dir,
        replica=replica,
        auditor=auditor,
    )
    from .service.server import serve_until_signalled

    actual_host, actual_port = server.server_address[:2]
    _log.info("serving read replica", url=f"http://{actual_host}:{actual_port}")
    replica.start()
    if auditor is not None:
        auditor.start()
    try:
        serve_until_signalled(server)
    finally:
        if auditor is not None:
            auditor.stop()
        replica.stop()
        try:
            path = replica.snapshot()
        except RuntimeError as error:
            # Poisoned engine: leave the last good snapshot in place.
            _log.warning("not snapshotting replica state", error=str(error))
            path = None
        if path is not None:
            _log.info("replica state saved", path=str(path))
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    from .service.replica import ReadRouter, build_router_server

    router = ReadRouter(
        args.primary,
        args.replica,
        check_interval=args.check_interval_ms / 1000.0,
        retry_after=args.retry_after,
    )
    server = build_router_server(router, args.host, args.port)
    from .service.server import serve_until_signalled

    actual_host, actual_port = server.server_address[:2]
    _log.info(
        "routing reads",
        replicas=len(args.replica),
        primary=args.primary,
        url=f"http://{actual_host}:{actual_port}",
    )
    router.start()
    try:
        serve_until_signalled(server)
    finally:
        router.stop()
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Long-poll ``GET /watch`` and print one JSON line per collapsed
    notification; the served version is carried forward as the cursor,
    so no change is skipped between polls."""
    from urllib.parse import urlencode
    from urllib.request import urlopen

    base = args.url.rstrip("/")
    after = args.after
    delivered = 0
    try:
        while True:
            params = {
                "entity": args.entity,
                "epsilon": args.epsilon,
                "timeout": args.timeout,
            }
            if after is not None:
                params["after"] = after
            url = base + "/watch?" + urlencode(params)
            with urlopen(url, timeout=args.timeout + 30.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            after = payload.get("version", after)
            if payload.get("timeout"):
                continue
            print(json.dumps(payload, sort_keys=True), flush=True)
            delivered += 1
            if args.count and delivered >= args.count:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def _fetch_provenance(base_url: str, trace: str, timeout: float) -> Optional[dict]:
    """``GET /provenance?trace=`` from one node.

    Returns the decoded payload — a 404 carries ``{"found": false}``,
    which callers treat as a miss, not an error — or ``None`` when the
    node is unreachable or answers garbage, so a dead replica degrades
    the merged timeline instead of killing the whole trace."""
    from urllib.error import HTTPError, URLError
    from urllib.parse import urlencode
    from urllib.request import urlopen

    url = base_url.rstrip("/") + "/provenance?" + urlencode({"trace": trace})
    try:
        with urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except HTTPError as error:
        try:
            return json.loads(error.read().decode("utf-8"))
        except (ValueError, OSError):
            return None
    except (URLError, OSError, ValueError):
        return None


def _merge_timelines(nodes: List[dict]) -> List[dict]:
    """Fold per-node ``/provenance`` payloads into one stage timeline.

    Primary-origin stages (ingest/enqueue/durable/applied) are stamped
    once on the primary and *shipped* to replicas inside the WAL
    records, so every node reports the same values; we keep a single
    row, preferring the primary's own copy when it answered.  The
    per-node stages — ``replica_applied`` and ``notified`` — keep one
    row per node that reported them."""
    from .obs.provenance import STAGES

    per_node_stages = ("replica_applied", "notified")
    shared: dict = {}
    rows: List[dict] = []
    for node in nodes:
        url = node["url"]
        payload = node["payload"]
        role = payload.get("role", "?")
        timeline = payload.get("timeline") or {}
        for stage, ts in timeline.items():
            if ts is None:
                continue
            row = {"ts": float(ts), "stage": stage, "role": role, "node": url}
            if stage in per_node_stages:
                rows.append(row)
            else:
                kept = shared.get(stage)
                if kept is None or (role == "primary" and kept["role"] != "primary"):
                    shared[stage] = row
    rows.extend(shared.values())
    order = {stage: index for index, stage in enumerate(STAGES)}
    rows.sort(key=lambda row: (row["ts"], order.get(row["stage"], len(order))))
    return rows


def cmd_trace(args: argparse.Namespace) -> int:
    """Fan ``GET /provenance?trace=`` across the fleet and print one
    merged, time-sorted stage timeline for the delta."""
    targets = [args.url] + list(args.replicas)
    nodes = []
    for url in targets:
        payload = _fetch_provenance(url, args.trace_id, args.timeout)
        if payload is None:
            _log.warning("node unreachable", url=url)
            continue
        if payload.get("found"):
            nodes.append({"url": url, "payload": payload})
    if not nodes:
        print(
            f"trace {args.trace_id}: not found on any of "
            f"{len(targets)} node(s)"
        )
        return 1

    rows = _merge_timelines(nodes)
    first = nodes[0]["payload"]
    merged = next(
        (
            node["payload"]["merged_traces"]
            for node in nodes
            if node["payload"].get("merged_traces")
        ),
        [],
    )
    if args.json:
        print(
            json.dumps(
                {
                    "trace": args.trace_id,
                    "offset": first.get("offset"),
                    "source": first.get("source"),
                    "merged_traces": merged,
                    "timeline": rows,
                    "nodes": nodes,
                },
                sort_keys=True,
            )
        )
        return 0

    header = f"trace {args.trace_id}"
    if first.get("offset") is not None:
        header += f"  offset={first['offset']}"
    if first.get("source"):
        header += f"  source={first['source']}"
    if first.get("replayed"):
        header += "  (replayed)"
    print(header)
    if merged:
        others = [trace for trace in merged if trace != args.trace_id]
        if others:
            print(f"  coalesced with {len(others)} other delta(s): "
                  + ", ".join(others))
    if not rows:
        print("  (no stage timestamps recorded)")
        return 0
    start = rows[0]["ts"]
    for row in rows:
        stamp = time.strftime("%H:%M:%S", time.localtime(row["ts"]))
        stamp += f".{int(row['ts'] * 1000) % 1000:03d}"
        delta_ms = (row["ts"] - start) * 1000.0
        print(
            f"  {row['stage']:<16} {stamp}  +{delta_ms:9.1f}ms"
            f"  {row['role']:<8} {row['node']}"
        )
    return 0


def _get_json(url: str, timeout: float) -> Tuple[int, Optional[dict]]:
    """One GET returning ``(status, decoded-payload)``; status 0 means
    the node was unreachable (payload None)."""
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except HTTPError as error:
        try:
            return error.code, json.loads(error.read().decode("utf-8"))
        except (ValueError, OSError):
            return error.code, None
    except (URLError, OSError, ValueError):
        return 0, None


def _range_digests(
    primary_url: str, node_url: str, lo: str, hi: Optional[str], timeout: float
) -> Optional[Tuple[dict, dict]]:
    """Both nodes' sub-digest of the left-entity name range [lo, hi]."""
    from urllib.parse import urlencode

    params = {"lo": lo}
    if hi is not None:
        params["hi"] = hi
    query = "/digest?" + urlencode(params)
    status_p, payload_p = _get_json(primary_url + query, timeout)
    status_n, payload_n = _get_json(node_url + query, timeout)
    if status_p != 200 or status_n != 200:
        return None
    return payload_p["range"], payload_n["range"]


def _first_divergent_pair(
    primary_url: str, node_url: str, timeout: float
) -> Optional[dict]:
    """Binary-search the first divergent pair between two nodes.

    Each probe compares one entity-range sub-digest (``GET
    /digest?lo=&hi=``) on both nodes and descends into the half that
    disagrees, until a single left entity remains; then both nodes'
    views of that entity's best counterpart are fetched for the
    report.  O(log pairs) round trips."""
    from urllib.parse import urlencode

    lo: str = ""  # "" sorts before every (non-empty) name: unbounded
    hi: Optional[str] = None
    for _ in range(64):  # 2^64 names is not a real corpus
        ranges = _range_digests(primary_url, node_url, lo, hi, timeout)
        if ranges is None:
            return None
        primary_range, node_range = ranges
        if primary_range["digest"] == node_range["digest"]:
            return None  # the divergence was elsewhere (or healed)
        if max(primary_range["count"], node_range["count"]) <= 1:
            entity = primary_range.get("min") or node_range.get("min")
            break
        mid = primary_range.get("mid") or node_range.get("mid")
        left_half = _range_digests(primary_url, node_url, lo, mid, timeout)
        if left_half is None:
            return None
        if left_half[0]["digest"] != left_half[1]["digest"]:
            hi = mid
        else:
            # The halves are [lo, mid] and (mid, hi]: the smallest
            # string greater than mid opens the right half.
            lo = mid + "\x00"
    else:
        return None
    if entity is None:
        return None
    detail: dict = {"left": entity}
    query = "/alignment?" + urlencode({"entity": entity})
    for key, url in (("primary", primary_url), ("node", node_url)):
        status, payload = _get_json(url + query, timeout)
        if status == 200 and payload is not None:
            detail[key] = payload.get("best_counterpart_as_left")
    return detail


def cmd_doctor(args: argparse.Namespace) -> int:
    """Fleet correctness verdict: quiesce at a common durable offset,
    fan ``GET /digest`` across primary + replicas, compare offset-keyed
    digests, and localize any split to its first divergent pair."""
    primary_url = args.url.rstrip("/")
    replica_urls = [url.rstrip("/") for url in args.replicas]
    deadline = time.monotonic() + args.timeout

    # --- quiesce: primary drains its ingest queue ---------------------
    target_offset = None
    while time.monotonic() < deadline:
        status, stats = _get_json(primary_url + "/stats", args.timeout)
        if status == 200 and stats is not None:
            applied = int(stats.get("wal_offset", 0))
            appended = int(stats.get("ingest", {}).get("wal_appended", applied))
            if applied >= appended:
                target_offset = applied
                break
        time.sleep(0.2)
    if target_offset is None:
        print(f"doctor: primary {primary_url} unreachable or never quiesced")
        return 1

    # --- quiesce: replicas reach the primary's offset -----------------
    node_stats: dict = {}
    for url in replica_urls:
        while time.monotonic() < deadline:
            status, stats = _get_json(url + "/stats", args.timeout)
            if status == 200 and stats is not None:
                node_stats[url] = stats
                if int(stats.get("wal_offset", -1)) >= target_offset:
                    break
            time.sleep(0.2)

    # --- digests, offset-keyed ----------------------------------------
    status, primary_digest = _get_json(
        primary_url + "/digest?verify=1", args.timeout
    )
    if status != 200 or primary_digest is None:
        print(f"doctor: GET /digest failed on primary {primary_url}")
        return 1
    nodes = [
        {
            "url": primary_url,
            "role": "primary",
            "wal_offset": primary_digest["wal_offset"],
            "digest": primary_digest["digest"],
            "verified": primary_digest.get("verified"),
            "match": primary_digest.get("verified", True),
        }
    ]
    for url in replica_urls:
        node: dict = {"url": url, "role": "replica"}
        status, payload = _get_json(url + "/digest?verify=1", args.timeout)
        if status != 200 or payload is None:
            node.update(match=None, error=f"GET /digest failed (http {status})")
            nodes.append(node)
            continue
        node["wal_offset"] = payload["wal_offset"]
        node["digest"] = payload["digest"]
        node["verified"] = payload.get("verified")
        if payload["wal_offset"] == primary_digest["wal_offset"]:
            reference = primary_digest["digest"]
        else:
            # Compare at the replica's own offset via the primary's
            # checkpoint history; 409 = aged out -> verdict unknown.
            status, at = _get_json(
                primary_url + f"/digest?offset={payload['wal_offset']}",
                args.timeout,
            )
            if status != 200 or at is None:
                node.update(match=None, error="common offset aged out of history")
                nodes.append(node)
                continue
            reference = at.get("at_offset", at)["digest"]
        node["match"] = payload["digest"] == reference
        if node["match"] is False or node["verified"] is False:
            node["first_divergent_pair"] = _first_divergent_pair(
                primary_url, url, args.timeout
            )
        nodes.append(node)

    # --- audit counters + lag from /stats -----------------------------
    node_stats[primary_url] = _get_json(primary_url + "/stats", args.timeout)[1] or {}
    for node in nodes:
        stats = node_stats.get(node["url"]) or {}
        audit = stats.get("audit")
        if isinstance(audit, dict):
            node["audit_checks"] = audit.get("checks")
            node["audit_mismatches"] = audit.get("mismatches")
        replication = stats.get("replication")
        if isinstance(replication, dict):
            node["lag_ms"] = replication.get("lag_ms")

    def _verdict(node: dict) -> str:
        if node.get("match") is None:
            return "unknown"
        if (
            node["match"] is False
            or node.get("verified") is False
            or (node.get("audit_mismatches") or 0) > 0
        ):
            return "DIVERGED"
        return "ok"

    for node in nodes:
        node["verdict"] = _verdict(node)
    healthy = all(node["verdict"] == "ok" for node in nodes)

    if args.json:
        print(
            json.dumps(
                {
                    "target_offset": target_offset,
                    "consistent": healthy,
                    "nodes": nodes,
                },
                sort_keys=True,
            )
        )
        return 0 if healthy else 1

    print(f"fleet digest comparison at wal offset {target_offset}")
    header = (
        f"{'node':<28} {'role':<8} {'offset':>6} {'digest':<16} "
        f"{'lag_ms':>8} {'checks':>6} {'mism':>4}  verdict"
    )
    print(header)
    print("-" * len(header))
    for node in nodes:
        lag = node.get("lag_ms")
        print(
            f"{node['url']:<28} {node['role']:<8} "
            f"{node.get('wal_offset', '?'):>6} {node.get('digest', '?'):<16} "
            f"{(f'{lag:.1f}' if isinstance(lag, (int, float)) else '-'):>8} "
            f"{node.get('audit_checks', '-')!s:>6} "
            f"{node.get('audit_mismatches', '-')!s:>4}  {node['verdict']}"
        )
        if node.get("error"):
            print(f"  error: {node['error']}")
        pair = node.get("first_divergent_pair")
        if pair:
            print(f"  first divergent pair: left={pair['left']}")
            for side in ("primary", "node"):
                best = pair.get(side)
                if best:
                    print(
                        f"    {side}: ({pair['left']}, {best['right']}) "
                        f"p={best['probability']:.9f}"
                    )
                else:
                    print(f"    {side}: no counterpart")
    print("verdict:", "fleet consistent" if healthy else "DIVERGENCE DETECTED")
    return 0 if healthy else 1


def cmd_wal_compact(args: argparse.Namespace) -> int:
    from .service import latest_version, load_state
    from .service.stream import WriteAheadLog

    state_dir = Path(args.state_dir)
    version = latest_version(state_dir)
    if version is None:
        raise SystemExit(f"error: no snapshot under {state_dir} to compact against")
    covered = load_state(state_dir, version).wal_offset
    wal_path = Path(args.wal) if args.wal else state_dir / "wal.ndjson"
    # Read-only: compaction only unlinks covered sealed segments, and a
    # writer-mode open here would truncate a live primary's in-flight
    # tail and republish its durable marker — never safe from outside.
    wal = WriteAheadLog(wal_path, read_only=True)
    before = wal.size_bytes()
    reclaimed, deleted = wal.compact(covered)
    wal.close()
    _log.info(
        "compacted WAL",
        snapshot_version=version,
        covered_offset=covered,
        deleted_segments=len(deleted),
        reclaimed_bytes=reclaimed,
        bytes_before=before,
        bytes_after=wal.size_bytes(),
    )
    return 0


def add_parallel_options(subparser: argparse.ArgumentParser) -> None:
    """Knobs of the sharded instance-pass engine (repro.core.parallel).

    The engine guarantees scores equal to the sequential path, so these
    only trade wall-clock for processes/threads.
    """
    subparser.add_argument("--workers", type=int, default=1,
                           help="instance-pass workers (default 1: sequential)")
    subparser.add_argument("--shard-size", type=int, default=None,
                           help="instances per shard (default: derived)")
    subparser.add_argument("--parallel-backend", choices=list(BACKENDS),
                           default="process",
                           help="executor backend for --workers > 1")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARIS (VLDB 2011) ontology alignment — Python reproduction",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--log-level", choices=list(LOG_LEVELS), default="info",
                        help="minimum level for diagnostic output on stderr "
                             "(debug also emits one line per fixpoint-pass "
                             "span; default info)")
    parser.add_argument("--log-format", choices=list(LOG_FORMATS), default="text",
                        help="stderr log line format; json emits one JSON "
                             "object per line and no bare text (default text)")
    commands = parser.add_subparsers(dest="command", required=True)

    align_parser = commands.add_parser("align", help="align two ontologies")
    align_parser.add_argument("left", help="left ontology (.nt or .tsv)")
    align_parser.add_argument("right", help="right ontology (.nt or .tsv)")
    align_parser.add_argument("--out", default="alignment", help="output directory")
    align_parser.add_argument("--left-name", default=None)
    align_parser.add_argument("--right-name", default=None)
    align_parser.add_argument("--theta", type=float, default=0.1,
                              help="bootstrap/truncation value (default 0.1)")
    align_parser.add_argument("--max-iterations", type=int, default=10)
    align_parser.add_argument("--threshold", type=float, default=0.0,
                              help="minimum probability for exported links")
    align_parser.add_argument("--similarity", choices=sorted(SIMILARITIES),
                              default="identity",
                              help="literal similarity (default: identity)")
    align_parser.add_argument("--negative-evidence", action="store_true",
                              help="use Eq. 14 instead of Eq. 13")
    align_parser.add_argument("--name-prior", action="store_true",
                              help="seed relation priors from relation names")
    align_parser.add_argument("--print-pairs", action="store_true",
                              help="print matched instance pairs to stdout")
    add_parallel_options(align_parser)
    align_parser.set_defaults(handler=cmd_align)

    def add_model_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--theta", type=float, default=0.1)
        subparser.add_argument("--max-iterations", type=int, default=10)
        subparser.add_argument("--similarity", choices=sorted(SIMILARITIES),
                               default="identity")
        subparser.add_argument("--negative-evidence", action="store_true")
        subparser.add_argument("--name-prior", action="store_true")
        add_parallel_options(subparser)

    multi_parser = commands.add_parser(
        "multi", help="align three or more ontologies into entity clusters"
    )
    multi_parser.add_argument("files", nargs="+")
    multi_parser.add_argument("--out", default="clusters.tsv",
                              help="output TSV of entity clusters")
    add_model_options(multi_parser)
    multi_parser.set_defaults(handler=cmd_multi)

    explain_parser = commands.add_parser(
        "explain", help="show the evidence behind one instance match"
    )
    explain_parser.add_argument("left")
    explain_parser.add_argument("right")
    explain_parser.add_argument("entity", help="instance name in the left ontology")
    explain_parser.add_argument("counterpart",
                                help="instance name in the right ontology")
    explain_parser.add_argument("--left-name", default=None)
    explain_parser.add_argument("--right-name", default=None)
    explain_parser.add_argument("--limit", type=int, default=8,
                                help="max evidence items to print")
    add_model_options(explain_parser)
    explain_parser.set_defaults(handler=cmd_explain)

    stats_parser = commands.add_parser(
        "stats",
        help="print ontology statistics, or a running service's /stats "
             "(pass its base URL instead of files)",
    )
    stats_parser.add_argument("files", nargs="+", metavar="FILE_OR_URL",
                              help="ontology files, or exactly one http(s):// "
                                   "base URL of a serve/replica/route process")
    stats_parser.add_argument("--watch", type=float, default=None, metavar="SECS",
                              help="with a URL: refetch and reprint every "
                                   "SECS seconds until interrupted")
    stats_parser.add_argument("--raw", action="store_true",
                              help="with a URL: print GET /metrics "
                                   "(Prometheus text) instead of /stats JSON")
    stats_parser.set_defaults(handler=cmd_stats)

    convert_parser = commands.add_parser("convert", help="convert .nt <-> .tsv")
    convert_parser.add_argument("input")
    convert_parser.add_argument("output")
    convert_parser.set_defaults(handler=cmd_convert)

    demo_parser = commands.add_parser("demo", help="run a paper benchmark")
    demo_parser.add_argument("benchmark",
                             choices=["person", "restaurant", "kb", "movies"])
    add_parallel_options(demo_parser)
    demo_parser.set_defaults(handler=cmd_demo)

    serve_parser = commands.add_parser(
        "serve", help="run the long-running incremental alignment service"
    )
    serve_parser.add_argument("left", nargs="?", default=None,
                              help="left ontology for the initial cold run "
                                   "(omit to resume a snapshot)")
    serve_parser.add_argument("right", nargs="?", default=None,
                              help="right ontology for the initial cold run")
    serve_parser.add_argument("--state-dir", required=True,
                              help="directory for versioned state snapshots")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="listen port (0 binds an ephemeral port)")
    serve_parser.add_argument("--snapshot-every", type=int, default=1,
                              help="snapshot state after every Nth delta "
                                   "(0: only on shutdown or POST /snapshot; "
                                   "the natural choice with --wal)")
    serve_parser.add_argument("--left-name", default=None)
    serve_parser.add_argument("--right-name", default=None)
    serve_parser.add_argument("--watch", action="append", default=[],
                              metavar="PATH",
                              help="stream deltas from PATH into the ingest "
                                   "queue: an existing directory is treated "
                                   "as a spool of NDJSON files, anything "
                                   "else is tailed as an append-only NDJSON "
                                   "file (may not exist yet); repeatable")
    serve_parser.add_argument("--wal", action="store_true",
                              help="write-ahead-log every accepted delta to "
                                   "STATE_DIR/wal.ndjson (fsync'd before "
                                   "application) and replay the "
                                   "un-snapshotted suffix on startup")
    serve_parser.add_argument("--max-batch", type=int, default=32,
                              help="most queued deltas the batcher coalesces "
                                   "into one warm pass (default 32)")
    serve_parser.add_argument("--max-lag-ms", type=float, default=50.0,
                              help="longest a queued delta waits before its "
                                   "batch is flushed regardless of size "
                                   "(default 50)")
    serve_parser.add_argument("--max-queue", type=int, default=256,
                              help="admission bound: deltas beyond this many "
                                   "queued are rejected with 429 + "
                                   "Retry-After (default 256)")
    serve_parser.add_argument("--wal-segment-bytes", type=int,
                              default=16 * 1024 * 1024,
                              help="rotate the WAL into sealed segment files "
                                   "once the active one holds this many bytes "
                                   "(default 16 MiB; 0: never rotate); "
                                   "enables automatic compaction of "
                                   "snapshot-covered segments and bounds "
                                   "what replicas re-read per poll")
    serve_parser.add_argument("--wal-group-commit-ms", type=float, default=0.0,
                              help="group-commit window: an fsync leader "
                                   "waits this long for concurrent writers "
                                   "to join its fsync (0: sync immediately; "
                                   "per-delta ack-after-fsync is preserved "
                                   "either way)")
    _add_audit_options(serve_parser)
    add_model_options(serve_parser)
    serve_parser.set_defaults(handler=cmd_serve)

    replica_parser = commands.add_parser(
        "replica",
        help="run a read replica: bootstrap from the primary's snapshot, "
             "tail its WAL, serve GET /pair and GET /alignment",
    )
    replica_parser.add_argument("source",
                                help="the primary: an http(s):// base URL "
                                     "(log shipping via GET /wal) or its "
                                     "state directory on shared storage")
    replica_parser.add_argument("--state-dir", default=None,
                                help="the replica's OWN snapshot directory "
                                     "(crash resume; never the primary's)")
    replica_parser.add_argument("--host", default="127.0.0.1")
    replica_parser.add_argument("--port", type=int, default=8766,
                                help="listen port (0 binds an ephemeral port)")
    replica_parser.add_argument("--poll-ms", type=float, default=50.0,
                                help="WAL tail poll interval (default 50)")
    replica_parser.add_argument("--replica-batch", type=int, default=256,
                                help="most WAL records coalesced into one "
                                     "warm pass per poll (default 256)")
    replica_parser.add_argument("--snapshot-every", type=int, default=0,
                                help="snapshot the replica's own state every "
                                     "Nth applied batch (0: only on shutdown; "
                                     "needs --state-dir)")
    _add_audit_options(replica_parser)
    add_parallel_options(replica_parser)
    replica_parser.set_defaults(handler=cmd_replica)

    route_parser = commands.add_parser(
        "route",
        help="run the read router: fan reads across replicas, forward "
             "writes to the primary, honor bounded-staleness reads",
    )
    route_parser.add_argument("--primary", required=True,
                              help="the primary's base URL (all writes go here)")
    route_parser.add_argument("--replica", action="append", default=[],
                              metavar="URL",
                              help="a read replica's base URL; repeatable "
                                   "(none: all reads fall back to the primary)")
    route_parser.add_argument("--host", default="127.0.0.1")
    route_parser.add_argument("--port", type=int, default=8800,
                              help="listen port (0 binds an ephemeral port)")
    route_parser.add_argument("--check-interval-ms", type=float, default=1000.0,
                              help="health/offset probe interval (default 1000)")
    route_parser.add_argument("--retry-after", type=float, default=1.0,
                              help="Retry-After seconds on 503 when no "
                                   "replica satisfies a staleness bound")
    route_parser.set_defaults(handler=cmd_route)

    watch_parser = commands.add_parser(
        "watch",
        help="long-poll a serving process for changes to one entity's "
             "alignments (GET /watch) and print one JSON line per "
             "collapsed notification",
    )
    watch_parser.add_argument("url",
                              help="base URL of a serve/replica/route process")
    watch_parser.add_argument("--entity", required=True,
                              help="entity name to watch, either ontology")
    watch_parser.add_argument("--epsilon", type=float, default=0.0,
                              help="only notify when the net score movement "
                                   "exceeds this (counterpart changes always "
                                   "notify; default 0)")
    watch_parser.add_argument("--after", type=int, default=None,
                              help="resume cursor: only changes past this "
                                   "state version (default: from now)")
    watch_parser.add_argument("--timeout", type=float, default=25.0,
                              help="seconds each long-poll parks server-side "
                                   "before re-polling (default 25)")
    watch_parser.add_argument("--count", type=int, default=0,
                              help="exit after this many notifications "
                                   "(default 0: run until interrupted)")
    watch_parser.set_defaults(handler=cmd_watch)

    trace_parser = commands.add_parser(
        "trace",
        help="reconstruct one delta's end-to-end stage timeline "
             "(ingest -> durable -> applied -> replica_applied -> "
             "notified) from the fleet's GET /provenance endpoints",
    )
    trace_parser.add_argument("url", help="primary base URL")
    trace_parser.add_argument("trace_id",
                              help="X-Request-Id / trace id of the delta")
    trace_parser.add_argument("--replicas", action="append", default=[],
                              metavar="URL",
                              help="also query this replica (repeatable)")
    trace_parser.add_argument("--timeout", type=float, default=10.0,
                              help="per-node HTTP timeout in seconds")
    trace_parser.add_argument("--json", action="store_true",
                              help="print the merged timeline as JSON")
    trace_parser.set_defaults(handler=cmd_trace)

    doctor_parser = commands.add_parser(
        "doctor",
        help="fleet correctness verdict: quiesce at a common WAL offset, "
             "compare offset-keyed state digests (GET /digest) across "
             "primary + replicas, and name the first divergent pair",
    )
    doctor_parser.add_argument("url", help="primary base URL")
    doctor_parser.add_argument("--replicas", action="append", default=[],
                               metavar="URL",
                               help="also audit this replica (repeatable)")
    doctor_parser.add_argument("--timeout", type=float, default=30.0,
                               help="seconds to wait for the fleet to "
                                    "quiesce at a common offset (also the "
                                    "per-request HTTP timeout)")
    doctor_parser.add_argument("--json", action="store_true",
                               help="print the verdict as JSON")
    doctor_parser.set_defaults(handler=cmd_doctor)

    wal_parser = commands.add_parser(
        "wal", help="write-ahead-log maintenance (see: repro wal compact -h)"
    )
    wal_commands = wal_parser.add_subparsers(dest="wal_command", required=True)
    compact_parser = wal_commands.add_parser(
        "compact",
        help="delete sealed WAL segments the newest snapshot covers "
             "(run against a stopped primary; a live serve process "
             "compacts automatically after each snapshot)",
    )
    compact_parser.add_argument("--state-dir", required=True,
                                help="state directory holding snapshots "
                                     "and the WAL")
    compact_parser.add_argument("--wal", default=None,
                                help="active WAL segment path (default: "
                                     "STATE_DIR/wal.ndjson)")
    compact_parser.set_defaults(handler=cmd_wal_compact)

    replay_parser = commands.add_parser(
        "replay",
        help="offline recovery: reapply a serve WAL's un-snapshotted "
             "suffix onto the newest snapshot",
    )
    replay_parser.add_argument("wal", help="WAL file written by serve --wal")
    replay_parser.add_argument("--state-dir", required=True,
                               help="state directory holding the snapshots")
    replay_parser.add_argument("--max-batch", type=int, default=256,
                               help="records coalesced per replayed batch")
    replay_parser.add_argument("--no-snapshot", action="store_true",
                               help="do not snapshot the caught-up state")
    replay_parser.set_defaults(handler=cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(level=args.log_level, log_format=args.log_format)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
