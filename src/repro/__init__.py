"""repro — a full Python reproduction of PARIS (VLDB 2011).

PARIS (Probabilistic Alignment of Relations, Instances, and Schema;
Suchanek, Abiteboul, Senellart; PVLDB 5(3), 2011) aligns two RDFS
ontologies holistically: instance matches, relation inclusions and
class inclusions cross-fertilize in one probabilistic fixpoint, with no
training data and no tuning parameters.

Quickstart::

    from repro import OntologyBuilder, align

    left = (OntologyBuilder("left")
            .value("p1", "bornIn", "Tupelo")
            .value("p1", "name", "Elvis Presley")
            .build())
    right = (OntologyBuilder("right")
             .value("x9", "birthPlace", "Tupelo")
             .value("x9", "label", "Elvis Presley")
             .build())
    result = align(left, right)
    print(result.instance_pairs())

Subpackages
-----------
``repro.rdf``
    RDFS substrate: terms, the indexed triple store, closure, codecs.
``repro.literals``
    Clamped literal-similarity measures (Section 5.3).
``repro.core``
    The probabilistic model and fixpoint driver (Sections 4–5).
``repro.datasets``
    Synthetic benchmark generators standing in for OAEI 2010, YAGO,
    DBpedia and IMDb (see DESIGN.md for the substitution rationale).
``repro.evaluation``
    Gold standards, precision/recall/F1 and report rendering.
``repro.baselines``
    The rdfs:label matcher of Section 6.4 and comparator constants.
``repro.service``
    The incremental alignment service: live delta ingestion
    (add/remove triple batches with targeted invalidation), warm-start
    fixpoints that re-score only the dirty frontier, versioned state
    snapshots, and the ``repro serve`` HTTP front-end
    (``POST /delta``, ``GET /pair``, ``GET /alignment``,
    ``GET /healthz``).  Served scores match a cold realignment of the
    updated ontologies within 1e-9::

        from repro.service import AlignmentService, Delta

        service = AlignmentService.cold_start(left, right)
        service.apply_delta(Delta(add1=(new_triple,)))
        service.pair("Elvis", "elvis_presley")
"""

from .core import (
    AlignmentResult,
    EntityCluster,
    EquivalenceStore,
    FunctionalityDefinition,
    FunctionalityOracle,
    MultiAligner,
    MultiAlignmentResult,
    ParisAligner,
    ParisConfig,
    SubsumptionMatrix,
    align,
    align_many,
)
from .io import load_result, save_result, write_sameas_links
from .literals import (
    CompositeSimilarity,
    EditDistanceSimilarity,
    IdentitySimilarity,
    LiteralSimilarity,
    NormalizedIdentitySimilarity,
    NumericSimilarity,
)
from .rdf import (
    Literal,
    Ontology,
    OntologyBuilder,
    Relation,
    Resource,
    Triple,
    deductive_closure,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "align",
    "ParisAligner",
    "ParisConfig",
    "AlignmentResult",
    "EquivalenceStore",
    "SubsumptionMatrix",
    "FunctionalityDefinition",
    "FunctionalityOracle",
    "Ontology",
    "OntologyBuilder",
    "Resource",
    "Literal",
    "Relation",
    "Triple",
    "deductive_closure",
    "LiteralSimilarity",
    "IdentitySimilarity",
    "NormalizedIdentitySimilarity",
    "EditDistanceSimilarity",
    "NumericSimilarity",
    "CompositeSimilarity",
    "MultiAligner",
    "MultiAlignmentResult",
    "EntityCluster",
    "align_many",
    "save_result",
    "load_result",
    "write_sameas_links",
]
