"""Versioned snapshot/restore of the full alignment state.

A long-running ``repro serve`` process must survive restarts without a
cold realignment, so the complete state — both ontologies, the config,
the instance-equivalence store and the relation/class matrices — is
pickled to a *state directory*:

* ``state-00000042.pkl`` — one file per version (version 0 is the cold
  run, each applied delta bumps it);
* ``LATEST`` — a one-line pointer to the newest version, written last,
  so a crash mid-snapshot never corrupts the resumable state.

Everything in the state is plain dictionaries over the slotted term
types, which pickle via their ``__reduce__`` (the same property the
process-backend parallel engine relies on).  Derived structures
(functionality oracles, literal indexes, incremental relation caches,
the restricted-view maintainer and the class-row caches) are *not*
stored; :class:`repro.service.engine.AlignmentService` rebuilds them
deterministically at attach time.  The warm fixpoint's copy-on-write
:class:`~repro.core.store.OverlayStore` never outlives a pass — it is
committed into the base store before the result escapes — but
:func:`save_state` collapses one defensively rather than pickling a
view object whose base could drift after restore.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.config import ParisConfig
from ..core.matrix import SubsumptionMatrix
from ..core.result import AlignmentResult
from ..core.store import EquivalenceStore, OverlayStore
from ..rdf.ontology import Ontology

#: On-disk format version; bump on incompatible layout changes.
STATE_FORMAT = 1

#: Name of the newest-version pointer file.
LATEST_MARKER = "LATEST"


@dataclass
class AlignmentState:
    """Everything needed to serve queries and warm-start the fixpoint."""

    version: int
    ontology1: Ontology
    ontology2: Ontology
    config: ParisConfig
    store: EquivalenceStore
    relations12: SubsumptionMatrix
    relations21: SubsumptionMatrix
    classes12: SubsumptionMatrix
    classes21: SubsumptionMatrix
    converged: bool
    #: Offset of the last write-ahead-log record this state absorbed
    #: (see :mod:`repro.service.stream.wal`; 0 = none).  A snapshot
    #: carrying this lets a restart replay exactly the un-snapshotted
    #: WAL suffix: records ``wal_offset + 1 ..`` are reapplied, records
    #: at or below it are already inside the pickled stores.
    wal_offset: int = 0
    #: Order-insensitive 64-bit digest of the maximal assignment as of
    #: ``wal_offset`` (see :mod:`repro.obs.audit`).  ``None`` on
    #: snapshots written before digests existed; the engine recomputes
    #: at attach, and verifies bootstrap integrity when it is present.
    digest: Optional[int] = None

    def __setstate__(self, state: dict) -> None:
        # Snapshots pickled before the WAL existed restore without the
        # offset; default it instead of breaking resume.  Same story for
        # pre-digest snapshots: None means "recompute, nothing to check".
        self.__dict__.update(state)
        if "wal_offset" not in state:
            self.wal_offset = 0
        if "digest" not in state:
            self.digest = None

    @classmethod
    def from_result(
        cls,
        ontology1: Ontology,
        ontology2: Ontology,
        config: ParisConfig,
        result: AlignmentResult,
        version: int = 0,
    ) -> "AlignmentState":
        return cls(
            version=version,
            ontology1=ontology1,
            ontology2=ontology2,
            config=config,
            store=result.instances,
            relations12=result.relations12,
            relations21=result.relations21,
            classes12=result.classes12,
            classes21=result.classes21,
            converged=result.converged,
        )

    def absorb(self, result: AlignmentResult) -> None:
        """Adopt a warm-align result and bump the version."""
        self.version += 1
        self.store = result.instances
        self.relations12 = result.relations12
        self.relations21 = result.relations21
        self.classes12 = result.classes12
        self.classes21 = result.classes21
        self.converged = result.converged


def _state_path(directory: Path, version: int) -> Path:
    return directory / f"state-{version:08d}.pkl"


def save_state(state: AlignmentState, directory: Union[str, Path]) -> Path:
    """Snapshot a state into ``directory``; returns the file written."""
    if isinstance(state.store, OverlayStore):
        # Invariant: warm passes commit their overlay before the result
        # escapes, so this only fires on a misuse — collapse instead of
        # persisting a copy-on-write view of a store that keeps living.
        state.store = state.store.commit()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = _state_path(directory, state.version)
    # Write-then-rename: re-snapshotting an existing version (e.g. the
    # shutdown snapshot after a --snapshot-every save) must never leave
    # a truncated pickle behind the already-published LATEST pointer.
    path_tmp = path.with_suffix(".pkl.tmp")
    with path_tmp.open("wb") as stream:
        pickle.dump({"format": STATE_FORMAT, "state": state}, stream)
    os.replace(path_tmp, path)
    # The pointer is written after the payload, and replaced atomically,
    # so readers never see a LATEST that references a half-written
    # snapshot — and a crash mid-update cannot leave a truncated marker.
    marker_tmp = directory / (LATEST_MARKER + ".tmp")
    marker_tmp.write_text(f"{state.version}\n", encoding="utf-8")
    os.replace(marker_tmp, directory / LATEST_MARKER)
    return path


def latest_version(directory: Union[str, Path]) -> Optional[int]:
    """Newest snapshot version in ``directory`` (None when empty).

    A malformed marker (e.g. left by an interrupted non-atomic writer
    of an older version) falls back to scanning the snapshot files, so
    resume never bricks on a bad pointer.
    """
    directory = Path(directory)
    marker = directory / LATEST_MARKER
    if marker.exists():
        try:
            return int(marker.read_text().strip())
        except ValueError:
            pass
    versions = sorted(directory.glob("state-*.pkl")) if directory.is_dir() else []
    if not versions:
        return None
    return int(versions[-1].stem.split("-")[1])


def load_state(
    directory: Union[str, Path], version: Optional[int] = None
) -> AlignmentState:
    """Load a snapshot (the newest one unless ``version`` is given)."""
    directory = Path(directory)
    if version is None:
        version = latest_version(directory)
        if version is None:
            raise FileNotFoundError(f"no alignment state under {directory}")
    path = _state_path(directory, version)
    return load_state_bytes(path.read_bytes(), origin=str(path))


def load_state_bytes(data: bytes, origin: str = "<bytes>") -> AlignmentState:
    """Decode a snapshot payload (one ``state-*.pkl`` file's bytes).

    The replica bootstrap path: a replica without shared storage
    fetches the primary's newest snapshot over ``GET /snapshot/latest``
    and decodes it here — same format checks as :func:`load_state`.
    Pickle is only safe within a trusted cluster; the replication
    endpoints assume primary and replicas share an operator.
    """
    payload = pickle.loads(data)
    if not isinstance(payload, dict) or payload.get("format") != STATE_FORMAT:
        raise ValueError(f"{origin} is not a format-{STATE_FORMAT} alignment state")
    state = payload["state"]
    if not isinstance(state, AlignmentState):
        raise ValueError(f"{origin} does not contain an AlignmentState")
    return state


def snapshot_path(directory: Union[str, Path]) -> Optional[Path]:
    """Path of the newest snapshot file (None when the dir is empty)."""
    directory = Path(directory)
    version = latest_version(directory)
    if version is None:
        return None
    path = _state_path(directory, version)
    return path if path.exists() else None
