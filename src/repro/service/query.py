"""Secondary read indexes, keyset cursors, and WAL-offset ETags.

``GET /alignment`` used to rebuild and sort the full maximal
assignment on every request — O(matched · log matched) per read, under
the engine lock.  This module is the production read path behind the
paginated/top-k/neighborhood query surface (see ``docs/api.md``):

* :class:`QueryIndex` — a sorted secondary index over the maximal
  assignment, built once at engine attach and then maintained
  **incrementally** from the warm loop's net change log
  (:meth:`repro.core.result.AlignmentResult.net_assignment_changes`):
  each applied delta folds O(frontier) row updates into the sorted
  order, so a paginated read is a binary search plus a slice — and it
  never takes the engine lock, which is what lets replicas serve pages
  while a warm pass is absorbing a batch.
* **Keyset cursors** — opaque (urlsafe base64 JSON) and *stable*: a
  cursor names the last row served, not a positional offset, so rows
  inserted or removed by concurrent deltas never duplicate or silently
  skip entries that existed at both ends of the walk.  Every cursor is
  stamped with the read tag (applied WAL offset + state version) it
  was minted at; a page served under a different tag is flagged
  ``changed_since_cursor`` so the client *detects* the concurrent
  delta and can either resume (the keyset stays valid) or restart for
  a consistent snapshot.
* **Read tags / ETags** — :func:`read_etag` derives the entity tag
  every read endpoint sends from the applied WAL offset (falling back
  to the state version when no WAL is in use).  A replica at WAL
  offset K serves the same scores as the primary at offset K (the
  1e-9 replication contract), so the tag is comparable across nodes:
  routers and CDNs may cache a response and revalidate it with
  ``If-None-Match`` for a 304 anywhere in the fleet.

:class:`ChangeEvent` is the change-log record the engine emits per
applied batch — shared by this index and the subscription surface
(:mod:`repro.service.subs`).
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import threading
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.metrics import REGISTRY

READS_TOTAL = REGISTRY.counter(
    "repro_reads_total",
    "Alignment read queries served, by query shape.",
    labelnames=("kind",),
)
READ_ROWS = REGISTRY.counter(
    "repro_reads_rows_total",
    "Alignment rows returned by read queries, by query shape.",
    labelnames=("kind",),
)
CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total",
    "Conditional reads answered 304 Not Modified (If-None-Match matched).",
    labelnames=("route",),
)

#: Hard cap on rows per page; larger ``limit`` values are clamped.
MAX_PAGE_LIMIT = 1000

#: Index row key: ``(-probability, left, right)`` — ascending key order
#: is descending probability with deterministic name tie-breaks, the
#: same total order ``GET /alignment`` always served.
RowKey = Tuple[float, str, str]

#: Served row: ``(left, right, probability)``.
Row = Tuple[str, str, float]


def read_etag(version: int, wal_offset: int) -> str:
    """The entity tag of every read endpoint's current state.

    Keyed on the applied WAL offset when a WAL is in use — replica at
    offset K ≡ primary at offset K, so the tag validates across the
    whole fleet — and on the state version otherwise (single-node
    deployments without a log).  Weak (``W/``) because cross-node
    payloads agree to 1e-9, not necessarily byte-for-byte.
    """
    if wal_offset:
        return f'W/"w{wal_offset}"'
    return f'W/"v{version}"'


def etag_matches(if_none_match: Optional[str], etag: str) -> bool:
    """Weak ``If-None-Match`` comparison (RFC 9110 §8.8.3.2)."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    opaque = etag[2:] if etag.startswith("W/") else etag
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == opaque:
            return True
    return False


class CursorError(ValueError):
    """A cursor that cannot be decoded or does not fit the query."""


def encode_cursor(payload: dict) -> str:
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor(text: str) -> dict:
    padded = text + "=" * (-len(text) % 4)
    try:
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
    except (ValueError, binascii.Error, UnicodeDecodeError) as error:
        raise CursorError(f"undecodable cursor: {error}") from None
    if not isinstance(payload, dict) or payload.get("v") != 1:
        raise CursorError("cursor is not a version-1 alignment cursor")
    return payload


def make_cursor(key: RowKey, threshold: float, tag: Tuple[int, int]) -> str:
    """Mint the opaque cursor naming ``key`` as the last served row."""
    return encode_cursor(
        {
            "v": 1,
            "k": [key[0], key[1], key[2]],
            "t": threshold,
            "o": [tag[0], tag[1]],
        }
    )


def parse_cursor(text: str, threshold: float) -> Tuple[RowKey, Tuple[int, int]]:
    """Decode a page cursor; reject one minted for a different query."""
    payload = decode_cursor(text)
    key = payload.get("k")
    tag = payload.get("o")
    if (
        not isinstance(key, list)
        or len(key) != 3
        or not isinstance(key[0], (int, float))
        or not isinstance(key[1], str)
        or not isinstance(key[2], str)
        or not isinstance(tag, list)
        or len(tag) != 2
    ):
        raise CursorError("malformed cursor payload")
    if payload.get("t") != threshold:
        raise CursorError(
            f"cursor was minted for threshold={payload.get('t')}, "
            f"request asks threshold={threshold}"
        )
    return (float(key[0]), key[1], key[2]), (int(tag[0]), int(tag[1]))


@dataclass(frozen=True)
class ChangeEvent:
    """One entity's maximal-assignment change in one applied batch.

    ``side`` names the ontology ``entity`` belongs to (``left`` events
    come from the 1→2 assignment, ``right`` from 2→1).  Dropped
    assignments carry ``counterpart=None, probability=0.0``; fresh ones
    carry ``previous_counterpart=None, previous_probability=0.0``.
    """

    side: str
    entity: str
    counterpart: Optional[str]
    probability: float
    previous_counterpart: Optional[str]
    previous_probability: float
    wal_offset: int
    version: int

    @property
    def magnitude(self) -> float:
        """Absolute score movement of this change."""
        return abs(self.probability - self.previous_probability)

    def to_json(self) -> dict:
        return {
            "side": self.side,
            "entity": self.entity,
            "counterpart": self.counterpart,
            "probability": self.probability,
            "previous_counterpart": self.previous_counterpart,
            "previous_probability": self.previous_probability,
            "wal_offset": self.wal_offset,
            "version": self.version,
        }


class QueryIndex:
    """Sorted secondary index over the left→right maximal assignment.

    Rows are keyed ``(-probability, left, right)`` so ascending key
    order is the canonical serving order (best first, names break
    ties).  All reads run under the index's own lock, never the engine
    lock; updates are folded in by the engine at the end of each
    applied delta, O(log n) per changed entity.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._keys: List[RowKey] = []
        self._by_left: Dict[str, RowKey] = {}
        #: Read tag of the state the index reflects.
        self.version = 0
        self.wal_offset = 0

    # -- maintenance ---------------------------------------------------

    def rebuild(self, assignment12, *, version: int, wal_offset: int) -> None:
        """Full rebuild from a maximal assignment (engine attach)."""
        keys = [
            (-probability, left.name, right.name)
            for left, (right, probability) in assignment12.items()
        ]
        keys.sort()
        with self._lock:
            self._keys = keys
            self._by_left = {key[1]: key for key in keys}
            self.version = version
            self.wal_offset = wal_offset

    def apply_changes(self, changes, *, version: int, wal_offset: int) -> int:
        """Fold one batch's net assignment delta into the sorted order.

        ``changes`` maps a left :class:`~repro.rdf.terms.Resource` to
        its new ``(counterpart, probability)`` or ``None`` (dropped) —
        exactly the left half of
        :meth:`~repro.core.result.AlignmentResult.net_assignment_changes`.
        Returns the number of row mutations performed.
        """
        mutations = 0
        with self._lock:
            for left, match in changes.items():
                name = left.name
                old_key = self._by_left.pop(name, None)
                if old_key is not None:
                    position = bisect_left(self._keys, old_key)
                    del self._keys[position]
                    mutations += 1
                if match is not None:
                    key = (-match[1], name, match[0].name)
                    insort(self._keys, key)
                    self._by_left[name] = key
                    mutations += 1
            self.version = version
            self.wal_offset = wal_offset
        return mutations

    # -- reads ---------------------------------------------------------

    def read_tag(self) -> Tuple[int, int]:
        """``(version, wal_offset)`` of the state this index reflects."""
        with self._lock:
            return self.version, self.wal_offset

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def _threshold_boundary(self, threshold: float) -> int:
        """Index past the last row with probability ≥ ``threshold``
        (rows form a prefix in key order)."""
        if threshold <= 0.0:
            return len(self._keys)
        return bisect_left(self._keys, (math.nextafter(-threshold, math.inf),))

    def page(
        self,
        threshold: float = 0.0,
        after: Optional[RowKey] = None,
        limit: int = MAX_PAGE_LIMIT,
    ) -> Tuple[List[Row], Optional[RowKey]]:
        """One keyset page: up to ``limit`` rows strictly after ``after``.

        Returns ``(rows, next_key)`` where ``next_key`` is the cursor
        key for the following page, or ``None`` when the walk is done.
        """
        limit = max(1, min(limit, MAX_PAGE_LIMIT))
        with self._lock:
            end = self._threshold_boundary(threshold)
            start = 0 if after is None else bisect_right(self._keys, after, hi=end)
            slice_keys = self._keys[start : min(start + limit, end)]
            exhausted = start + len(slice_keys) >= end
        rows = [(key[1], key[2], -key[0]) for key in slice_keys]
        next_key = None if (exhausted or not slice_keys) else slice_keys[-1]
        return rows, next_key

    def top(self, count: int, threshold: float = 0.0) -> List[Row]:
        """The ``count`` best rows at or above ``threshold``."""
        rows, _next = self.page(threshold=threshold, limit=count)
        return rows

    def snapshot_keys(self, threshold: float = 0.0) -> Sequence[RowKey]:
        """A consistent snapshot of the matching row keys (one shallow
        list copy — tuple references, not rendered rows — so a
        streaming full dump iterates stable data without holding the
        lock across the response write)."""
        with self._lock:
            return self._keys[: self._threshold_boundary(threshold)]


def iter_row_chunks(
    keys: Sequence[RowKey], render, chunk_rows: int = 256
) -> Iterator[bytes]:
    """Render ``keys`` to response-body chunks of ``chunk_rows`` rows.

    ``render(rows)`` maps a list of :data:`Row` to one ``bytes`` chunk;
    the full body never exists in memory — the regression test in
    ``tests/test_read_path.py`` caps the per-request peak allocation.
    """
    for start in range(0, len(keys), chunk_rows):
        rows = [(key[1], key[2], -key[0]) for key in keys[start : start + chunk_rows]]
        chunk = render(rows)
        if chunk:
            yield chunk
