"""A read replica: snapshot bootstrap + WAL tailing into its own engine.

:class:`ReplicaNode` owns a full :class:`~repro.service.engine.AlignmentService`
— the same engine the primary runs — and keeps it converged to the
primary by applying the primary's WAL records:

1. **Bootstrap.**  Load the newest state the replica can reach: its
   *own* snapshot directory first (crash resume — a replica killed
   mid-apply restarts from its own snapshot and replays only the WAL
   suffix beyond it), otherwise the primary's newest snapshot (read
   directly from the shared state directory, or fetched over
   ``GET /snapshot/latest``).  The snapshot's ``wal_offset`` is the
   tail position.
2. **Tail.**  A poll thread fetches records beyond the applied offset
   through a :mod:`follower <repro.service.replica.follower>`,
   coalesces each fetch (:func:`~repro.service.delta.compose_deltas` —
   the same composition the primary's batcher applies, so one warm
   pass absorbs a whole backlog) and applies it with the batch's last
   WAL offset.  Because the warm fixpoint converges to numeric
   stationarity on the *final* graphs, a replica at WAL offset K
   scores equal (within 1e-9) to the primary at offset K no matter how
   the records were chopped into batches.
3. **Re-bootstrap.**  When the primary compacted records the replica
   still needed (:class:`~repro.service.stream.wal.WalGapError`), the
   replica re-runs step 1 from the primary's newer snapshot — which by
   the compaction rule covers everything that was dropped.

Staleness accounting: ``lag_ms`` is the time since the replica last
*verified* it was caught up to the source log's head (0 at every poll
that finds nothing new).  With a healthy poll loop it stays around the
poll interval; a dead or backlogged replica's lag grows without bound,
which is what the router's ``?max_lag_ms=`` bounded-staleness reads
key off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Union
from urllib.request import urlopen

from ...obs import get_event_logger
from ...obs.metrics import REGISTRY
from ...obs.provenance import ProvenanceRing, set_active_ring
from ...obs.trace import span
from ..delta import compose_deltas
from ..engine import AlignmentService
from ..state import AlignmentState, latest_version, load_state, load_state_bytes
from ..stream.wal import WalGapError
from .follower import make_follower

_log = get_event_logger("repro.replica")

SOURCE_OFFSET = REGISTRY.gauge(
    "repro_replica_source_offset",
    "Last observed head offset of the source WAL.",
)
LAG_RECORDS = REGISTRY.gauge(
    "repro_replica_lag_records",
    "WAL records the replica still has to apply (source head - applied).",
)
LAG_MS = REGISTRY.gauge(
    "repro_replica_lag_ms",
    "Milliseconds since the replica last verified it was caught up "
    "(-1 until it has done so at least once).",
)
RECORDS_APPLIED = REGISTRY.counter(
    "repro_replica_records_applied_total",
    "WAL records applied by the replica tail loop.",
)
REBOOTSTRAPS = REGISTRY.counter(
    "repro_replica_rebootstraps_total",
    "Snapshot re-bootstraps forced by WAL compaction gaps.",
)


def _fetch_primary_snapshot(primary_url: str, timeout: float = 120.0) -> AlignmentState:
    url = primary_url.rstrip("/") + "/snapshot/latest"
    with urlopen(url, timeout=timeout) as response:
        data = response.read()
    return load_state_bytes(data, origin=url)


def bootstrap_state(
    source: Union[str, Path], state_dir: Optional[Union[str, Path]] = None
) -> AlignmentState:
    """Newest reachable state: own ``state_dir`` snapshot if present
    (crash resume), else the primary's (shared dir or HTTP)."""
    if state_dir is not None:
        directory = Path(state_dir)
        if directory.is_dir() and latest_version(directory) is not None:
            return load_state(directory)
    text = str(source)
    if text.startswith("http://") or text.startswith("https://"):
        return _fetch_primary_snapshot(text)
    path = Path(source)
    if path.is_file() or path.suffix == ".ndjson":
        # The source may name the WAL file itself (make_follower
        # accepts either form); the snapshots live next to it.
        path = path.parent
    return load_state(path)


class ReplicaNode:
    """One read replica (engine + follower + poll thread).

    Parameters
    ----------
    source:
        The primary: an ``http(s)://`` base URL (log shipping) or the
        primary's state directory on shared storage.
    state_dir:
        The replica's *own* snapshot directory (optional).  Used for
        crash resume and written every ``snapshot_every`` applied
        batches; never the primary's directory — a replica must not
        write where the primary snapshots.
    poll_interval:
        Seconds between tail polls.
    batch:
        Most WAL records fetched (and coalesced into one warm pass)
        per poll.
    config_overrides:
        Runtime-only config fields to replace on the bootstrapped
        state (the CLI passes the parallel knobs, as ``repro serve``
        does on resume — model knobs always come from the snapshot).
    """

    def __init__(
        self,
        source: Union[str, Path],
        state_dir: Optional[Union[str, Path]] = None,
        poll_interval: float = 0.05,
        batch: int = 256,
        snapshot_every: int = 0,
        config_overrides: Optional[Dict[str, object]] = None,
    ) -> None:
        self.source = source
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.poll_interval = poll_interval
        self.batch = batch
        self.snapshot_every = snapshot_every
        self.config_overrides = dict(config_overrides or {})
        self.follower = make_follower(source)
        #: Change-subscription manager this node publishes into
        #: (:meth:`attach_subscriptions`); survives engine swaps.
        self._subs = None
        #: One provenance ring for the node's whole life: a WAL-gap
        #: re-bootstrap swaps the engine but must not lose the delta
        #: timelines already collected (every built engine points here).
        self.provenance = ProvenanceRing()
        #: The node's background correctness auditor, when one runs
        #: (:class:`repro.service.audit.StateAuditor`, attached by the
        #: CLI).  Like the ring it outlives engine swaps — but a
        #: re-bootstrap *clears* its mismatch latch: the state was
        #: replaced wholesale from a primary snapshot (integrity-checked
        #: against the digest it carries), so stale divergence evidence
        #: must not keep /healthz degraded.
        self.auditor = None
        self.service = self._build_service(bootstrap_state(source, self.state_dir))
        self.bootstrapped_at_offset = self.applied_offset
        self.records_applied = 0
        self.batches_applied = 0
        self.rebootstraps = 0
        self.last_error: Optional[str] = None
        #: True once :meth:`stop` gave up waiting for the tail thread.
        #: A wedged follower keeps its (stale) engine serving reads but
        #: must be visible in ``/stats`` — operators page on this, and
        #: the router's lag bound quietly stops being satisfiable.
        self.wedged = False
        self._source_offset = self.applied_offset
        #: Monotonic time of the last poll that verified this replica
        #: caught up to the source log's head — None until the first
        #: one, so a freshly bootstrapped replica with an unknown
        #: backlog never reports a bounded lag it has not earned.
        self._caught_up_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        # Scrape-time gauges: re-registering on re-construction means
        # the newest node in the process owns the series (one replica
        # per process in production; tests spin up several).
        SOURCE_OFFSET.set_callback(lambda: float(self._locked_source_offset()))
        LAG_RECORDS.set_callback(
            lambda: float(max(0, self._locked_source_offset() - self.applied_offset))
        )
        LAG_MS.set_callback(
            lambda: -1.0 if (lag := self.lag_ms()) is None else lag
        )

    def _locked_source_offset(self) -> int:
        with self._lock:
            return self._source_offset

    def _build_service(self, state: AlignmentState) -> AlignmentService:
        if self.config_overrides:
            state.config = replace(state.config, **self.config_overrides)
        service = AlignmentService.from_state(state)
        service.provenance = self.provenance
        set_active_ring(self.provenance)
        if self._subs is not None:
            service.add_change_listener(self._subs.publish)
            self._subs.advance(state.version, state.wal_offset)
        return service

    def attach_subscriptions(self, subs) -> None:
        """Publish this node's change log into ``subs`` — re-applied to
        every engine a re-bootstrap builds, so replica-side ``/watch``
        long-polls survive WAL-gap recoveries."""
        self._subs = subs
        self.service.add_change_listener(subs.publish)
        subs.advance(self.service.state.version, self.service.state.wal_offset)

    # ------------------------------------------------------------------

    @property
    def applied_offset(self) -> int:
        return self.service.state.wal_offset

    def start(self) -> "ReplicaNode":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-replica-tail", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 120.0) -> None:
        """Signal the tail thread and wait up to ``timeout`` seconds.

        The join deadline can pass with the thread still alive (a poll
        blocked on a dead primary's socket, a warm pass stuck on a huge
        batch).  Silently returning would report a clean shutdown that
        never happened, so the wedge is logged and latched into
        :meth:`stats` instead; a later ``stop()`` retries the join.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            if thread.is_alive():
                self.wedged = True
                _log.warning(
                    "tail thread still running at shutdown; proceeding without it",
                    timeout_s=timeout,
                    wedged=True,
                )
            else:
                self.wedged = False
                self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
                self.last_error = None
            except WalGapError as gap:
                _log.warning(
                    "WAL suffix compacted away; re-bootstrapping from snapshot",
                    gap=str(gap),
                )
                try:
                    self._rebootstrap()
                except Exception as error:  # noqa: BLE001 - retried next poll
                    self.last_error = repr(error)
            except Exception as error:  # noqa: BLE001 - retried next poll
                # Transient (primary restarting, shared FS hiccup):
                # recorded for /stats, retried on the next poll.  A
                # poisoned engine fail-stops below us and keeps
                # surfacing here rather than serving inconsistency.
                self.last_error = repr(error)
            self._stop.wait(self.poll_interval)

    def poll_once(self) -> int:
        """One tail step: fetch → coalesce → apply.  Returns the
        number of records applied (tests drive this directly for
        deterministic replication)."""
        fetch = self.follower.fetch(self.applied_offset, limit=self.batch)
        if fetch.records:
            # Register the shipped timelines first: the engine apply
            # below stamps replica_applied on them (and observes the
            # applied_to_replica leg against the primary-side stamps
            # the records carry).
            for record in fetch.records:
                self.provenance.register_record(record, live=True, remote=True)
            with span("replica.apply", records=len(fetch.records)):
                composed = compose_deltas(record.delta for record in fetch.records)
                self.service.apply_delta(
                    composed, wal_offset=fetch.records[-1].offset
                )
            self.records_applied += len(fetch.records)
            RECORDS_APPLIED.inc(len(fetch.records))
            self.batches_applied += 1
            if (
                self.state_dir is not None
                and self.snapshot_every > 0
                and self.batches_applied % self.snapshot_every == 0
            ):
                # Through the engine, not save_state directly: its
                # fail-stop check refuses to persist a poisoned state
                # the replica would otherwise resume from and serve.
                self.service.snapshot(self.state_dir)
        with self._lock:
            self._source_offset = max(fetch.source_offset, self.applied_offset)
            if self.applied_offset >= self._source_offset:
                self._caught_up_at = time.monotonic()
        return len(fetch.records)

    def catch_up(self, target_offset: int, timeout: float = 120.0) -> None:
        """Apply until ``target_offset`` is reached (tests/bootstrap)."""
        deadline = time.monotonic() + timeout
        while self.applied_offset < target_offset:
            if self.poll_once() == 0:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"replica stuck at offset {self.applied_offset}, "
                        f"wanted {target_offset}"
                    )
                time.sleep(0.01)

    def _rebootstrap(self) -> None:
        """Reload from the newest primary snapshot after a WAL gap.

        The compaction rule only drops segments a durable snapshot
        covers, so the snapshot we fetch here is always at or beyond
        the gap.  The engine object is swapped whole; the HTTP handler
        resolves the service through this node per request, so readers
        move to the new engine on their next call.
        """
        state = bootstrap_state(self.source, state_dir=None)
        if state.wal_offset < self.applied_offset:
            # Shared-storage race: LATEST may trail what we already
            # applied.  Keep the fresher in-memory engine.
            return
        self.service = self._build_service(state)
        self.rebootstraps += 1
        REBOOTSTRAPS.inc()
        if self.auditor is not None:
            self.auditor.reset()
        if self.state_dir is not None:
            self.service.snapshot(self.state_dir)

    def snapshot(self) -> Optional[Path]:
        """Persist the replica's own resume point (``None`` without a
        state dir).  Raises ``RuntimeError`` when the engine fail-
        stopped — a poisoned state must never become the snapshot a
        restart resumes from."""
        if self.state_dir is None:
            return None
        return self.service.snapshot(self.state_dir)

    # ------------------------------------------------------------------

    def lag_ms(self) -> Optional[float]:
        """Milliseconds since the replica last *verified* itself caught
        up to the source log's head; ``None`` until it has done so at
        least once (an unverified replica must not look fresh to the
        router's ``?max_lag_ms=`` bound)."""
        with self._lock:
            if self._caught_up_at is None:
                return None
            return (time.monotonic() - self._caught_up_at) * 1000.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            source_offset = self._source_offset
        return {
            "source": self.follower.source_id,
            "applied_offset": self.applied_offset,
            "source_offset": source_offset,
            "behind": max(0, source_offset - self.applied_offset),
            "lag_ms": self.lag_ms(),
            "records_applied": self.records_applied,
            "batches_applied": self.batches_applied,
            "rebootstraps": self.rebootstraps,
            "bootstrapped_at_offset": self.bootstrapped_at_offset,
            "last_error": self.last_error,
            "wedged": self.wedged,
        }
