"""Read router: one front door over a primary and N read replicas.

``repro route --primary URL --replica URL ...`` runs this stdlib HTTP
proxy:

* **Reads** (``GET /pair/...``, ``GET /alignment``) fan out across the
  healthy replicas round-robin; when none is healthy they fall back to
  the primary, so a dead replica fleet degrades to single-node service
  instead of an outage.
* **Writes** (any ``POST``) are forwarded to the primary verbatim —
  status, body and ``Retry-After`` come back unchanged, so admission
  control (429) and validation errors (400) look the same through the
  router as against the primary.
* **Bounded staleness**: a read may carry ``?min_offset=K`` (serve
  only from a replica whose applied WAL offset is at least K — e.g.
  the offset a write report returned, for read-your-writes) and/or
  ``?max_lag_ms=M`` (serve only from a replica that verified itself
  caught up within the last M milliseconds).  Constrained reads are
  answered by replicas only; when none qualifies the router answers
  ``503`` with a ``Retry-After`` header instead of silently serving
  stale data.  Offsets and lags come from each replica's
  ``GET /stats`` (cached briefly; refreshed on demand when a cached
  value fails a constraint).
* **Health**: a background thread polls every target's ``GET /stats``;
  a failed poll (or a failed forwarded read) ejects the replica from
  rotation, a succeeding poll readmits it.  ``GET /healthz`` /
  ``GET /stats`` on the router itself report per-target health,
  offsets and routing counters; ``GET /metrics`` exposes the same as
  Prometheus text (per-backend health gauge, ejection counter, routed
  read/write counters, request latency histograms).
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ...obs import get_event_logger
from ...obs.http import ObservedHandlerMixin, route_label
from ...obs.metrics import REGISTRY
from ..query import CACHE_HITS

_log = get_event_logger("repro.router")

#: Route inventory of the router role (``tests/test_docs.py`` asserts
#: every entry is documented in ``docs/api.md``).  ``GET *`` covers the
#: transparent forward of any other read (``/watch``, ``/wal``,
#: ``/snapshot/latest``, ``/subscriptions``, …) to the primary.
ROUTES = {
    "GET /healthz": "router + backend fleet health",
    "GET /stats": "routing counters and per-backend offsets/lag",
    "GET /metrics": "the router's own Prometheus registry",
    "GET /pair/<left>/<right>": "routed read (replicas round-robin, staleness bounds)",
    "GET /alignment": "routed read (replicas round-robin, staleness bounds)",
    "GET /fleet": "fan GET /digest across all backends, compare at common offsets",
    "GET /provenance": "relayed to the primary (ETag/request-id semantics)",
    "GET *": "any other read, forwarded to the primary verbatim",
    "POST *": "any write, forwarded to the primary verbatim",
}

BACKEND_HEALTHY = REGISTRY.gauge(
    "repro_router_backend_healthy",
    "1 while the backend is in rotation, 0 while ejected.",
    labelnames=("backend",),
)
EJECTIONS = REGISTRY.counter(
    "repro_router_ejections_total",
    "Healthy-to-ejected transitions per backend (probe or forward failure).",
    labelnames=("backend",),
)
READS_ROUTED = REGISTRY.counter(
    "repro_router_reads_routed_total",
    "Reads successfully answered through the router.",
)
WRITES_FORWARDED = REGISTRY.counter(
    "repro_router_writes_forwarded_total",
    "Writes forwarded to the primary.",
)
REJECTED_STALE = REGISTRY.counter(
    "repro_router_rejected_stale_total",
    "Constrained reads rejected because no replica met the staleness bound.",
)
PRIMARY_FALLBACKS = REGISTRY.counter(
    "repro_router_primary_fallbacks_total",
    "Reads served by the primary because no replica was available.",
)


class _Target:
    """One backend (primary or replica) and its cached probe state."""

    def __init__(self, url: str, is_primary: bool = False) -> None:
        self.url = url.rstrip("/")
        self.is_primary = is_primary
        self.healthy = True
        self.stats: Dict[str, object] = {}
        self.stats_at = 0.0
        self.served = 0
        self.failures = 0
        self.lock = threading.Lock()
        BACKEND_HEALTHY.set(1, backend=self.url)

    def _set_health(self, healthy: bool) -> None:
        """Record a health state (caller holds :attr:`lock`); gauge,
        ejection counter, and log line fire only on transitions."""
        if healthy and not self.healthy:
            BACKEND_HEALTHY.set(1, backend=self.url)
            _log.info("backend readmitted", backend=self.url)
        elif not healthy and self.healthy:
            BACKEND_HEALTHY.set(0, backend=self.url)
            EJECTIONS.inc(backend=self.url)
            _log.warning("backend ejected", backend=self.url, failures=self.failures)
        self.healthy = healthy

    def probe(self, timeout: float) -> bool:
        """Refresh the cached ``/stats``; flips :attr:`healthy`."""
        try:
            with urllib.request.urlopen(self.url + "/stats", timeout=timeout) as resp:
                stats = json.load(resp)
        except (urllib.error.URLError, OSError, ValueError):
            with self.lock:
                self.failures += 1
                self._set_health(False)
            return False
        with self.lock:
            self.stats = stats
            self.stats_at = time.monotonic()
            self._set_health(True)
        return True

    def wal_offset(self) -> int:
        with self.lock:
            return int(self.stats.get("wal_offset", -1))

    def lag_ms(self) -> Optional[float]:
        """Replication lag *as of now*: the replica's reported lag plus
        the age of the sample it came from.  ``None`` (no sample yet,
        or a replica that never verified the log head) means the
        staleness is unknown — the eligibility check treats it as
        unbounded."""
        with self.lock:
            if not self.stats:
                return None
            replication = self.stats.get("replication")
            if isinstance(replication, dict):
                reported = replication.get("lag_ms")
                if reported is None:
                    return None
                reported = float(reported)
            else:
                reported = 0.0  # the primary is its own head
            age_ms = (time.monotonic() - self.stats_at) * 1000.0
        return reported + age_ms

    def snapshot(self) -> Dict[str, object]:
        with self.lock:
            payload: Dict[str, object] = {
                "url": self.url,
                "healthy": self.healthy,
                "served": self.served,
                "failures": self.failures,
            }
            if self.stats:
                payload["wal_offset"] = self.stats.get("wal_offset")
                replication = self.stats.get("replication")
                if isinstance(replication, dict):
                    payload["lag_ms"] = replication.get("lag_ms")
                # Auditor surface (PR 10), straight from the backend's
                # cached /stats: the fleet view of who last self-checked.
                audit = self.stats.get("audit")
                if isinstance(audit, dict):
                    payload["audit"] = {
                        key: audit.get(key)
                        for key in (
                            "last_audit_ts",
                            "checks",
                            "mismatches",
                            "digest",
                            "digest_offset",
                        )
                        if key in audit
                    }
                elif "digest" in self.stats:
                    payload["digest"] = self.stats.get("digest")
                    payload["digest_offset"] = self.stats.get("digest_offset")
        return payload


class ReadRouter:
    """Routing state shared by the handler threads (module docstring)."""

    def __init__(
        self,
        primary_url: str,
        replica_urls: List[str],
        check_interval: float = 1.0,
        stats_ttl: float = 0.25,
        retry_after: float = 1.0,
        request_timeout: float = 120.0,
        probe_timeout: float = 5.0,
        refresh_timeout: float = 1.0,
    ) -> None:
        self.primary = _Target(primary_url, is_primary=True)
        self.replicas = [_Target(url) for url in replica_urls]
        self.check_interval = check_interval
        self.stats_ttl = stats_ttl
        self.retry_after = retry_after
        self.request_timeout = request_timeout
        self.probe_timeout = probe_timeout
        self.refresh_timeout = min(refresh_timeout, probe_timeout)
        self.reads_routed = 0
        self.writes_forwarded = 0
        self.rejected_stale = 0
        self.primary_fallbacks = 0
        self._rr = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- health ---------------------------------------------------------

    def start(self) -> "ReadRouter":
        self.probe_all()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._health_loop, name="repro-router-health", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def probe_all(self) -> None:
        for target in (self.primary, *self.replicas):
            target.probe(self.probe_timeout)

    def _health_loop(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(self.check_interval)
            if self._stop.is_set():
                return
            self.probe_all()

    # -- candidate selection -------------------------------------------

    def _satisfies(
        self, target: _Target, min_offset: Optional[int], max_lag_ms: Optional[float]
    ) -> bool:
        if min_offset is not None and target.wal_offset() < min_offset:
            return False
        if max_lag_ms is not None:
            lag = target.lag_ms()
            if lag is None or lag > max_lag_ms:
                return False
        return True

    def _eligible(
        self,
        target: _Target,
        min_offset: Optional[int],
        max_lag_ms: Optional[float],
        refresh: bool,
    ) -> bool:
        if not target.healthy:
            return False
        if min_offset is None and max_lag_ms is None:
            return True
        if self._satisfies(target, min_offset, max_lag_ms):
            return True
        # One on-demand refresh per target, with a short timeout: a
        # constrained read exists to answer quickly and honestly, so a
        # wedged replica must cost it about a second, not the full
        # background probe budget twice over.
        stale_sample = time.monotonic() - target.stats_at > self.stats_ttl
        if refresh and stale_sample and target.probe(self.refresh_timeout):
            return self._satisfies(target, min_offset, max_lag_ms)
        return False

    def pick_read_targets(
        self, min_offset: Optional[int], max_lag_ms: Optional[float]
    ) -> List[_Target]:
        """Replicas to try for one read, in round-robin order.

        Unconstrained reads with zero healthy replicas fall back to the
        primary; constrained reads never do — the staleness contract is
        answered honestly with a 503 by the caller instead.
        """
        constrained = min_offset is not None or max_lag_ms is not None
        candidates = [
            replica
            for replica in self.replicas
            if self._eligible(replica, min_offset, max_lag_ms, refresh=constrained)
        ]
        if candidates:
            with self._lock:
                start = self._rr
                self._rr += 1
            return candidates[start % len(candidates) :] + candidates[: start % len(candidates)]
        if not constrained and self.primary.healthy:
            # Zero healthy replicas: degrade to single-node service.
            # (The handler counts primary_fallbacks when the forward
            # actually succeeds, and appends the primary as the last
            # resort for replicas that died since the last probe.)
            return [self.primary]
        return []

    def stats_payload(self) -> Dict[str, object]:
        return {
            "role": "router",
            "reads_routed": self.reads_routed,
            "writes_forwarded": self.writes_forwarded,
            "rejected_stale": self.rejected_stale,
            "primary_fallbacks": self.primary_fallbacks,
            "primary": self.primary.snapshot(),
            "replicas": [replica.snapshot() for replica in self.replicas],
        }

    def health_payload(self) -> Dict[str, object]:
        healthy_replicas = sum(1 for replica in self.replicas if replica.healthy)
        status = "ok" if (self.primary.healthy or healthy_replicas) else "degraded"
        return {
            "status": status,
            "role": "router",
            "primary_healthy": self.primary.healthy,
            "replicas": len(self.replicas),
            "replicas_healthy": healthy_replicas,
        }


class RouterRequestHandler(ObservedHandlerMixin, BaseHTTPRequestHandler):
    server_version = "repro-route/1.0"
    MAX_BODY = 64 * 1024 * 1024
    #: Socket deadline per request — a stalled client must not pin a
    #: handler thread forever (same policy as the primary's handler).
    timeout = 30.0

    def setup(self) -> None:
        self.timeout = getattr(self.server, "handler_timeout", self.timeout)
        super().setup()

    @property
    def router(self) -> ReadRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            _log.debug("http", detail=format % args)

    # -- plumbing -------------------------------------------------------

    def _send_json(self, payload: object, status: int = 200, retry_after=None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _relay(self, status: int, headers, body: bytes, target_url: str) -> None:
        if status == 304:
            # Backend revalidation hit relayed through the router: the
            # WAL-offset ETag validates fleet-wide, so this counts as a
            # cache hit on the router surface too.
            CACHE_HITS.inc(route=route_label(self.path))
        self.send_response(status)
        # X-Wal-Offset / X-State-Version make forwarded /wal and
        # /snapshot/latest responses usable by a replica pointed at the
        # router instead of the primary (chained replication); ETag /
        # Cache-Control carry the read-caching contract through.
        for name in (
            "Content-Type",
            "Retry-After",
            "X-Wal-Offset",
            "X-State-Version",
            "ETag",
            "Cache-Control",
        ):
            value = headers.get(name)
            if value is not None:
                self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Served-By", target_url)
        self.end_headers()
        self.wfile.write(body)

    def _forward(
        self, target: _Target, method: str, path_query: str, body: Optional[bytes]
    ) -> Optional[Tuple[int, object, bytes]]:
        """One proxied request; None means the target is unreachable."""
        headers = {"Content-Type": "application/json"} if body else {}
        # Conditional reads validate end-to-end: the backend's 304
        # comes back through the HTTPError branch below and is relayed.
        if_none_match = self.headers.get("If-None-Match")
        if if_none_match is not None:
            headers["If-None-Match"] = if_none_match
        # Trace propagation: the backend sees the same request id the
        # router echoes to the client (generated here when the client
        # sent none), so one id lines up all three roles' access logs —
        # and a forwarded POST /delta's provenance trace.
        if self.request_id is not None:
            headers["X-Request-Id"] = self.request_id
        request = urllib.request.Request(
            target.url + path_query,
            data=body,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.router.request_timeout
            ) as response:
                return response.status, response.headers, response.read()
        except urllib.error.HTTPError as error:
            # An HTTP-level error is a *backend answer* (400/404/429/
            # 503…), not a router failure: relay it untouched.
            return error.code, error.headers, error.read()
        except (urllib.error.URLError, OSError):
            with target.lock:
                target.failures += 1
                target._set_health(False)
            return None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts == ["healthz"]:
            self._send_json(self.router.health_payload())
            return
        if parts == ["stats"]:
            self._send_json(self.router.stats_payload())
            return
        if parts == ["metrics"]:
            # The router's own process registry — not proxied: backend
            # health/ejections and the router's request series live here.
            self.serve_metrics()
            return
        if parts and parts[0] in ("pair", "alignment"):
            self._route_read(url)
            return
        if parts == ["fleet"]:
            self._route_fleet()
            return
        if parts == ["provenance"]:
            # Delta timelines live on the primary's ring; relayed with
            # the standard ETag/request-id semantics.  (Per-replica
            # timelines are still read off each node directly — that is
            # what `repro trace --replicas` does.)
            self._forward_primary()
            return
        # Everything else (e.g. /wal for a chained replica) is the
        # primary's business.
        self._forward_primary()

    def _forward_primary(self) -> None:
        result = self._forward(self.router.primary, "GET", self.path, None)
        if result is None:
            self._send_json(
                {"error": "primary unreachable"},
                status=502,
                retry_after=self.router.retry_after,
            )
            return
        self._relay(*result, self.router.primary.url)

    def _fetch_digest(self, target: _Target, suffix: str = "") -> Tuple[int, object]:
        """One unconditional ``GET /digest`` against a backend (no
        If-None-Match relay — the fleet comparison needs bodies, never
        304s).  Returns ``(status, payload-or-error-string)``."""
        request = urllib.request.Request(
            target.url + "/digest" + suffix,
            headers=(
                {"X-Request-Id": self.request_id} if self.request_id else {}
            ),
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.router.probe_timeout
            ) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            try:
                return error.code, json.load(error)
            except ValueError:
                return error.code, {"error": f"http {error.code}"}
        except (urllib.error.URLError, OSError, ValueError) as error:
            return 0, {"error": repr(error)}

    def _route_fleet(self) -> None:
        """``GET /fleet`` — the router-side half of `repro doctor`:
        fetch every backend's current digest and compare each replica
        against the primary *at the replica's own offset* (via the
        primary's offset-keyed checkpoint history when the replica
        lags).  ``match`` per node: true/false, or null when the
        common offset already aged out of the history."""
        router = self.router
        status, primary_payload = self._fetch_digest(router.primary)
        nodes: List[Dict[str, object]] = []
        split: List[str] = []
        if status != 200:
            self._send_json(
                {
                    "role": "router",
                    "error": "primary digest unavailable",
                    "detail": primary_payload,
                },
                status=502,
                retry_after=router.retry_after,
            )
            return
        primary_offset = primary_payload["wal_offset"]
        primary_digest = primary_payload["digest"]
        nodes.append(
            {
                "url": router.primary.url,
                "role": "primary",
                "wal_offset": primary_offset,
                "digest": primary_digest,
                "match": True,
            }
        )
        for replica in router.replicas:
            node: Dict[str, object] = {"url": replica.url, "role": "replica"}
            status, payload = self._fetch_digest(replica)
            if status != 200:
                node["error"] = payload.get("error", f"http {status}")
                node["match"] = None
                nodes.append(node)
                continue
            offset = payload["wal_offset"]
            digest = payload["digest"]
            node["wal_offset"] = offset
            node["digest"] = digest
            node["behind"] = primary_offset - offset
            if offset == primary_offset:
                node["match"] = digest == primary_digest
            else:
                # Compare at the replica's offset: the primary keeps a
                # bounded history of (offset, digest) checkpoints.
                status, at = self._fetch_digest(
                    router.primary, f"?offset={offset}"
                )
                if status == 200:
                    reference = at.get("at_offset", at)
                    node["match"] = digest == reference["digest"]
                else:
                    node["match"] = None  # aged out: unknown, not wrong
            if node["match"] is False:
                split.append(replica.url)
            nodes.append(node)
        self._send_json(
            {
                "role": "router",
                "wal_offset": primary_offset,
                "digest": primary_digest,
                "consistent": not split,
                "divergent": split,
                "nodes": nodes,
            }
        )

    def _route_read(self, url) -> None:
        router = self.router
        query = parse_qs(url.query)
        try:
            min_offset = int(query["min_offset"][0]) if "min_offset" in query else None
            max_lag_ms = (
                float(query["max_lag_ms"][0]) if "max_lag_ms" in query else None
            )
        except ValueError:
            self._send_json(
                {"error": "min_offset must be an integer, max_lag_ms a number"},
                status=400,
            )
            return
        # NaN would fail every `lag > max_lag_ms` comparison and turn a
        # "bounded staleness" read into an unbounded one that *looks*
        # constrained; negative bounds are equally meaningless.  Reject
        # instead of silently serving arbitrarily stale data.
        if max_lag_ms is not None and (
            math.isnan(max_lag_ms) or math.isinf(max_lag_ms) or max_lag_ms < 0
        ):
            self._send_json(
                {"error": "max_lag_ms must be a finite non-negative number"},
                status=400,
            )
            return
        if min_offset is not None and min_offset < 0:
            self._send_json({"error": "min_offset must be a non-negative integer"}, status=400)
            return
        constrained = min_offset is not None or max_lag_ms is not None
        targets = router.pick_read_targets(min_offset, max_lag_ms)
        if not constrained and router.primary not in targets:
            # Replicas that die between health probes are discovered at
            # forward time; an unconstrained read must still degrade to
            # the primary rather than 503 while it is healthy.
            targets.append(router.primary)
        for target in targets:
            result = self._forward(target, "GET", self.path, None)
            if result is None:
                continue  # ejected; try the next candidate
            with router._lock:
                router.reads_routed += 1
                if target.is_primary:
                    router.primary_fallbacks += 1
            READS_ROUTED.inc()
            if target.is_primary:
                PRIMARY_FALLBACKS.inc()
            with target.lock:
                target.served += 1
            self._relay(*result, target.url)
            return
        if constrained:
            with router._lock:
                router.rejected_stale += 1
            REJECTED_STALE.inc()
            self._send_json(
                {
                    "error": "no replica satisfies the staleness bound",
                    "min_offset": min_offset,
                    "max_lag_ms": max_lag_ms,
                },
                status=503,
                retry_after=router.retry_after,
            )
            return
        self._send_json(
            {"error": "no healthy backend for reads"},
            status=503,
            retry_after=router.retry_after,
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        router = self.router
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json({"error": "bad Content-Length"}, status=400)
            return
        if length < 0 or length > self.MAX_BODY:
            self._send_json({"error": "body too large"}, status=400)
            return
        if length:
            try:
                body = self.rfile.read(length)
            except TimeoutError:
                self._send_json({"error": "timed out reading request body"}, status=408)
                self.close_connection = True
                return
            if len(body) < length:
                self._send_json(
                    {
                        "error": (
                            f"short body: got {len(body)} of {length} declared bytes"
                        )
                    },
                    status=400,
                )
                self.close_connection = True
                return
        else:
            body = None
        result = self._forward(router.primary, "POST", self.path, body)
        if result is None:
            self._send_json(
                {"error": "primary unreachable; write not applied"},
                status=502,
                retry_after=router.retry_after,
            )
            return
        with router._lock:
            router.writes_forwarded += 1
        WRITES_FORWARDED.inc()
        self._relay(*result, router.primary.url)


def build_router_server(
    router: ReadRouter,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    handler_timeout: Optional[float] = 30.0,
) -> ThreadingHTTPServer:
    """Create (but do not start) the router's HTTP server.

    ``handler_timeout`` bounds each handler thread's socket waits
    (``None`` disables); a client that stalls mid-upload gets ``408``
    instead of occupying a thread indefinitely.
    """
    server = ThreadingHTTPServer((host, port), RouterRequestHandler)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.handler_timeout = handler_timeout  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
