"""WAL followers: how a replica reads the primary's replication log.

Two transports behind one ``fetch(after_offset, limit)`` interface:

* :class:`FileWalFollower` — shared storage.  Opens the primary's WAL
  read-only and tails it directly; rotation and compaction under the
  reader are handled by the segmented log itself (see
  :mod:`repro.service.stream.wal`).  Assumes the WAL lives on durable
  storage the primary fsyncs (its default), so every record the
  follower can read is one the primary acknowledged.
* :class:`HttpWalFollower` — log shipping for replicas without shared
  storage.  ``GET /wal?from=OFFSET&limit=N`` on the primary returns
  NDJSON records (the on-disk format verbatim) capped at the
  *durable* offset, with the primary's current offset in the
  ``X-Wal-Offset`` header; ``410 Gone`` signals a compacted prefix
  (mapped to :class:`~repro.service.stream.wal.WalGapError`, which
  makes the replica re-bootstrap from a fresh snapshot).

Both return a :class:`WalFetch`: the records plus the source's known
head offset, which is what the replica's staleness accounting
(``lag_ms`` in ``GET /stats``) is computed from.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from itertools import islice
from pathlib import Path
from typing import List, NamedTuple, Union
from urllib.parse import urlencode

from ..stream.wal import WalGapError, WalRecord, WriteAheadLog


class WalFetch(NamedTuple):
    """One follower poll: new records + the source log's head offset."""

    records: List[WalRecord]
    source_offset: int


class FileWalFollower:
    """Tail the primary's WAL directly on shared storage."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.wal = WriteAheadLog(self.path, read_only=True)
        self.source_id = f"wal:{self.path}"

    def fetch(self, after_offset: int, limit: int = 256) -> WalFetch:
        # The head probe is a cheap tail-line read; taking it first
        # short-circuits the idle steady state (no decode of the log
        # 20x/sec just to learn nothing is new) and keeps the reported
        # head honest while a backlogged replica works through
        # full-limit fetches — a fetch capped at `limit` must NOT
        # report its own last record as the head, or the replica's
        # lag accounting would claim caught-up mid-backlog and the
        # router's ?max_lag_ms= staleness bound would silently serve
        # stale data.
        head = self.wal.current_offset()
        # Never apply records an fsync has not covered: a
        # group-committing primary's buffered appends reach the shared
        # file *before* their fsync, and a record a primary crash can
        # still lose must not enter a replica (the same cap GET /wal
        # applies at the durable offset).  A log without a marker
        # predates group commit — every complete line was fsync'd.
        durable = self.wal.durable_marker()
        if durable is not None:
            head = min(head, durable)
        if head <= after_offset:
            return WalFetch([], max(head, after_offset))
        records = list(islice(self.wal.replay(after_offset=after_offset), limit))
        while records and records[-1].offset > head:
            records.pop()
        head = max(head, records[-1].offset if records else after_offset)
        return WalFetch(records, head)


class HttpWalFollower:
    """Ship the WAL over the primary's ``GET /wal`` endpoint."""

    def __init__(self, primary_url: str, timeout: float = 30.0) -> None:
        self.primary_url = primary_url.rstrip("/")
        self.timeout = timeout
        self.source_id = f"http:{self.primary_url}/wal"

    def fetch(self, after_offset: int, limit: int = 256) -> WalFetch:
        query = urlencode({"from": after_offset, "limit": limit})
        url = f"{self.primary_url}/wal?{query}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                head = int(response.headers.get("X-Wal-Offset", "0"))
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            if error.code == 410:
                # The primary compacted the requested suffix away.
                detail = {}
                try:
                    detail = json.load(error)
                except (ValueError, OSError):
                    pass
                raise WalGapError(
                    after_offset, int(detail.get("oldest", after_offset + 2))
                ) from error
            raise
        records = []
        expected = after_offset + 1
        for line in body.splitlines():
            if not line.strip():
                continue
            record = WalRecord.from_json(json.loads(line))
            if record.offset != expected:
                raise ValueError(
                    f"log shipping out of order: offset {record.offset} "
                    f"where {expected} was expected"
                )
            expected = record.offset + 1
            records.append(record)
        head = max(head, records[-1].offset if records else after_offset)
        return WalFetch(records, head)


def make_follower(source: Union[str, Path]):
    """``http(s)://`` sources get log shipping; anything else is a
    path to the primary's state directory (or its WAL file) on shared
    storage."""
    text = str(source)
    if text.startswith("http://") or text.startswith("https://"):
        return HttpWalFollower(text)
    path = Path(source)
    if path.is_dir():
        path = path / "wal.ndjson"
    return FileWalFollower(path)
