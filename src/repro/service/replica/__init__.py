"""Multi-replica serving: WAL-shipped read replicas behind a read router.

The single-node service (:mod:`repro.service`) couples reads to the
process that also runs warm-start fixpoints: every ``GET /pair`` waits
behind the engine lock whenever a delta is being absorbed.  This
package decouples them — one **primary** ingests writes, N **read
replicas** converge to it by tailing its write-ahead log, and a
**router** fans reads across the replicas::

                     writes (POST /delta)            reads (GET /pair, /alignment)
                            │                                   │
                            ▼                                   ▼
                      ┌──────────┐   forwards writes      ┌──────────┐
                      │  router  │◄───────────────────────│  router  │  (same process)
                      └────┬─────┘                        └────┬─────┘
                           ▼                                   │ round-robin over
                     ┌──────────┐                              │ healthy replicas
                     │ primary  │ serve --wal                  ▼
                     │  engine  │───┐                ┌────────────────────┐
                     └──────────┘   │ WAL segments   │ replica engines    │
                        snapshots   ├───────────────►│ (repro replica)    │
                            │       │ file tail or   │ snapshot bootstrap │
                            ▼       │ GET /wal       │ + WAL tail         │
                     state-dir ─────┘                └────────────────────┘

**The WAL is the replication log.**  Every accepted write is already
fsync'd to the primary's segmented WAL before application
(:mod:`repro.service.stream.wal`); a replica bootstraps from the
primary's newest snapshot (shared state directory, or fetched over
``GET /snapshot/latest``) and then tails records beyond the snapshot's
``wal_offset`` — directly from the shared files, or shipped over the
primary's ``GET /wal?from=OFFSET`` endpoint.  Each fetched batch is
coalesced (:func:`~repro.service.delta.compose_deltas`) and absorbed
by one warm pass, exactly as the primary's batcher does.

**Equivalence guarantee.**  A replica at WAL offset K serves pair and
alignment scores equal within 1e-9 to the primary at offset K — and to
a cold realignment of the same graphs — regardless of how the records
were batched, because the warm fixpoint converges to numeric
stationarity on the final graphs (hypothesis property in
``tests/test_replica.py``).  Crash resume (own snapshot + WAL suffix)
and WAL compaction (re-bootstrap from a covering snapshot on
:class:`~repro.service.stream.wal.WalGapError`) preserve it.

**Staleness contract** (the router's read API):

* plain reads — any healthy replica; primary fallback when none;
* ``?min_offset=K`` — only replicas whose applied WAL offset ≥ K
  (pass the offset a write's report returned for read-your-writes);
* ``?max_lag_ms=M`` — only replicas that verified themselves caught up
  to the log head within the last M milliseconds;
* constrained reads with no qualifying replica answer ``503`` with
  ``Retry-After`` — honest refusal, never silent staleness.

CLI: ``repro serve … --wal --wal-segment-bytes N`` (primary),
``repro replica SOURCE --port P`` (replica), ``repro route --primary
URL --replica URL …`` (router), ``repro wal compact --state-dir DIR``
(reclaim covered segments; the primary also compacts automatically
after every snapshot).
"""

from .follower import FileWalFollower, HttpWalFollower, WalFetch, make_follower
from .node import ReplicaNode, bootstrap_state
from .router import ReadRouter, build_router_server

__all__ = [
    "FileWalFollower",
    "HttpWalFollower",
    "WalFetch",
    "make_follower",
    "ReplicaNode",
    "bootstrap_state",
    "ReadRouter",
    "build_router_server",
]
