"""Multi-replica serving: WAL-shipped read replicas behind a read router.

One primary ingests writes; N read replicas bootstrap from its newest
snapshot and converge by tailing its write-ahead log (shared files or
``GET /wal``) — the WAL doubles as the replication log.  A router
fans reads across healthy replicas, forwards writes, and honors the
bounded-staleness contract (``?min_offset=`` / ``?max_lag_ms=``, 503
over silent staleness).  A replica at WAL offset K serves scores
equal to the primary at offset K within 1e-9, across crash resume and
compaction.  Architecture diagram and design notes:
``docs/architecture.md`` (section "Replication"); endpoint reference:
``docs/api.md``.
"""

from .follower import FileWalFollower, HttpWalFollower, WalFetch, make_follower
from .node import ReplicaNode, bootstrap_state
from .router import ReadRouter, build_router_server

__all__ = [
    "FileWalFollower",
    "HttpWalFollower",
    "WalFetch",
    "make_follower",
    "ReplicaNode",
    "bootstrap_state",
    "ReadRouter",
    "build_router_server",
]
