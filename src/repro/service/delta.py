"""Triple-level delta batches and their application.

A :class:`Delta` is a batch of statement additions and removals against
the two ontologies of a running alignment.  :func:`apply_delta` pushes
it into the indexed stores (:meth:`Ontology.add` / :meth:`Ontology.remove`)
and records everything the warm-start fixpoint needs to invalidate:

* which *data relations* changed statement counts (their
  functionalities and Eq. 12 rows are stale),
* which *literals* entered or left each ontology (their blocking-index
  postings are stale),
* the applied statements themselves, oriented per ontology, for the
  incremental relation-row updates.

The JSON codec used by the HTTP front-end lives here too, so the wire
format is testable without a socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Node, Relation, Resource
from ..rdf.triples import Triple
from ..rdf.vocabulary import (
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    is_schema_relation,
)

#: An applied data-statement change, oriented along its relation.
AppliedStatement = Tuple[Relation, Node, Node]


def triple_from_json(payload: dict) -> Triple:
    """Decode one triple from its wire form.

    Expected keys: ``subject``, ``relation``, ``object``, and
    ``object_type`` (``"resource"`` — the default — or ``"literal"``,
    with optional ``datatype``).  Relations honour the ``^-1`` suffix
    (:meth:`repro.rdf.terms.Relation.parse`).
    """
    try:
        subject = Resource(payload["subject"])
        relation = Relation.parse(payload["relation"])
        object_type = payload.get("object_type", "resource")
        if object_type == "literal":
            obj: Node = Literal(payload["object"], payload.get("datatype"))
        elif object_type == "resource":
            obj = Resource(payload["object"])
        else:
            raise ValueError(f"unknown object_type {object_type!r}")
    except KeyError as missing:
        raise ValueError(f"triple is missing field {missing.args[0]!r}") from None
    except TypeError as bad_type:
        # Term constructors raise TypeError for non-string names etc.;
        # normalize so callers handle one exception type for bad wire data.
        raise ValueError(f"bad triple field: {bad_type}") from None
    return Triple(subject, relation, obj)


def triple_to_json(triple: Triple) -> dict:
    """Encode one triple to its wire form (inverse of :func:`triple_from_json`).

    The triple is canonicalized first (oriented along the forward
    relation), because the wire format only represents resource
    subjects; an inverse-oriented statement with a literal subject is
    the same assertion as its canonical form.
    """
    triple = triple.canonical
    if isinstance(triple.subject, Literal):
        raise ValueError(f"cannot encode a literal-subject statement: {triple}")
    payload = {
        "subject": triple.subject.name,
        "relation": str(triple.relation),
        "object": str(triple.object),
    }
    if isinstance(triple.object, Literal):
        payload["object_type"] = "literal"
        if triple.object.datatype:
            payload["datatype"] = triple.object.datatype
    return payload


@dataclass(frozen=True)
class Delta:
    """One batch of triple changes against a running alignment.

    ``add1``/``remove1`` target the left ontology, ``add2``/``remove2``
    the right one.  Removals are applied before additions per side, so
    a batch can atomically rewrite a fact.
    """

    add1: Tuple[Triple, ...] = ()
    remove1: Tuple[Triple, ...] = ()
    add2: Tuple[Triple, ...] = ()
    remove2: Tuple[Triple, ...] = ()

    def is_empty(self) -> bool:
        return not (self.add1 or self.remove1 or self.add2 or self.remove2)

    @property
    def size(self) -> int:
        return len(self.add1) + len(self.remove1) + len(self.add2) + len(self.remove2)

    @classmethod
    def from_json(cls, payload: dict) -> "Delta":
        """Decode ``{"left": {"add": [...], "remove": [...]}, "right": ...}``."""
        if not isinstance(payload, dict):
            raise ValueError("delta payload must be a JSON object")
        unknown = set(payload) - {"left", "right"}
        if unknown:
            raise ValueError(f"unknown delta keys: {sorted(unknown)}")
        sides: Dict[str, Dict[str, Tuple[Triple, ...]]] = {}
        for side in ("left", "right"):
            spec = payload.get(side, {})
            if not isinstance(spec, dict):
                raise ValueError(f"delta side {side!r} must be a JSON object")
            unknown = set(spec) - {"add", "remove"}
            if unknown:
                raise ValueError(f"unknown keys under {side!r}: {sorted(unknown)}")
            sides[side] = {
                kind: tuple(triple_from_json(item) for item in spec.get(kind, ()))
                for kind in ("add", "remove")
            }
        return cls(
            add1=sides["left"]["add"],
            remove1=sides["left"]["remove"],
            add2=sides["right"]["add"],
            remove2=sides["right"]["remove"],
        )

    def to_json(self) -> dict:
        return {
            "left": {
                "add": [triple_to_json(t) for t in self.add1],
                "remove": [triple_to_json(t) for t in self.remove1],
            },
            "right": {
                "add": [triple_to_json(t) for t in self.add2],
                "remove": [triple_to_json(t) for t in self.remove2],
            },
        }


def _fold_side(
    net: Dict[Triple, bool], removes: Tuple[Triple, ...], adds: Tuple[Triple, ...]
) -> None:
    """Fold one delta's side into the net per-triple outcome.

    Removals fold before additions, mirroring the order
    :func:`apply_delta` applies them within a batch.  Re-inserting on
    every fold keeps the dict ordered by *last* operation, so the
    composed batch lists triples in the order the stream last touched
    them — deterministic for any fixed input sequence.
    """
    for triple in removes:
        canonical = triple.canonical
        net.pop(canonical, None)
        net[canonical] = False
    for triple in adds:
        canonical = triple.canonical
        net.pop(canonical, None)
        net[canonical] = True


def compose_deltas(deltas: Iterable["Delta"]) -> "Delta":
    """Coalesce an ordered sequence of deltas into one equivalent batch.

    Triple statements have set semantics (:meth:`Ontology.add_triple` /
    :meth:`Ontology.remove_triple` are idempotent), so after applying a
    sequence of deltas a triple is present iff the *last* operation on
    its canonical form was an add — earlier add/remove pairs on the
    same triple cancel.  The composed batch asserts exactly that net
    outcome, one operation per touched triple, which leaves both
    ontologies in the same final state as the one-by-one sequence; and
    because the warm-start fixpoint converges to the numeric fixpoint
    of the *final* graphs, applying the composed batch yields scores
    equal to applying the deltas one by one (within 1e-9 — the
    coalescing property in ``tests/test_stream.py``).  The dirty
    frontier :func:`apply_delta` derives from the composed batch is the
    union of what the individual deltas would have seeded, minus the
    cancelled operations that no longer change anything.

    This is the coalescing step of the streaming batcher
    (:mod:`repro.service.stream`): one warm pass absorbs many queued
    writes.
    """
    net1: Dict[Triple, bool] = {}
    net2: Dict[Triple, bool] = {}
    for delta in deltas:
        _fold_side(net1, delta.remove1, delta.add1)
        _fold_side(net2, delta.remove2, delta.add2)
    return Delta(
        add1=tuple(triple for triple, keep in net1.items() if keep),
        remove1=tuple(triple for triple, keep in net1.items() if not keep),
        add2=tuple(triple for triple, keep in net2.items() if keep),
        remove2=tuple(triple for triple, keep in net2.items() if not keep),
    )


#: Characters the N-Triples codec cannot round-trip inside a ``<uri>``
#: token (the W3C IRIREF exclusions plus ASCII whitespace/controls).
_URI_FORBIDDEN = set('<>"{}|^`\\')


def _term_syntax_error(triple: Triple) -> Optional[str]:
    """Why a triple's terms cannot survive the N-Triples codec, if any.

    Literal objects always round-trip (the codec escapes them); resource
    and relation names become bare ``<uri>`` tokens, so a name with
    whitespace, controls or IRIREF-forbidden characters would serialize
    to a line the parser rejects — or, worse, to a different statement.
    """
    names = [("subject", triple.subject), ("object", triple.object)]
    for position, node in names:
        if isinstance(node, Literal):
            continue
        for ch in node.name:
            if ch in _URI_FORBIDDEN or ord(ch) <= 0x20:
                return (
                    f"{position} {node.name!r} contains {ch!r}, "
                    "which is invalid inside an N-Triples <uri>"
                )
    schema = is_schema_relation(triple.relation)
    for ch in triple.relation.name:
        # Schema relation names are internal aliases ("rdf:type") that
        # serialize through their full URIs, so only data relations
        # must themselves be valid <uri> tokens.
        if not schema and (ch in _URI_FORBIDDEN or ord(ch) <= 0x20):
            return (
                f"relation {triple.relation.name!r} contains {ch!r}, "
                "which is invalid inside an N-Triples <uri>"
            )
    return None


def validate_delta(delta: "Delta") -> None:
    """Reject triples the live stores cannot apply, *before* mutating.

    :func:`apply_delta` is only atomic if nothing raises mid-batch, so
    every condition under which :meth:`Ontology.add` /
    :meth:`Ontology.remove` would raise must be caught here first:
    ``rdfs:subPropertyOf`` statements (they relate Relation terms, not
    nodes) and schema statements with literal arguments.  Terms whose
    names cannot round-trip through the N-Triples codec are rejected
    here too — with the offending triple in the message — instead of
    blowing up much later when the ontology is serialized.
    """
    for triple in (*delta.add1, *delta.remove1, *delta.add2, *delta.remove2):
        base = triple.relation.base
        if base == RDFS_SUBPROPERTYOF:
            raise ValueError(
                "rdfs:subPropertyOf cannot be changed through a delta "
                "(it relates Relation terms, not nodes)"
            )
        if base in (RDF_TYPE, RDFS_SUBCLASSOF):
            if isinstance(triple.subject, Literal) or isinstance(triple.object, Literal):
                raise ValueError(f"schema statement with a literal argument: {triple}")
        syntax_error = _term_syntax_error(triple)
        if syntax_error is not None:
            raise ValueError(
                f"invalid N-Triples term syntax in triple {triple}: {syntax_error}"
            )


@dataclass
class DeltaEffect:
    """What actually changed when a delta was applied.

    Statements already present (adds) or absent (removes) are no-ops
    and appear in none of the collections — the warm-start fixpoint
    then has nothing to invalidate for them.
    """

    #: Applied data-statement changes per ontology (adds and removes).
    statements1: List[AppliedStatement] = field(default_factory=list)
    statements2: List[AppliedStatement] = field(default_factory=list)
    #: Data relations whose statement multiset changed, per ontology.
    touched_relations1: List[Relation] = field(default_factory=list)
    touched_relations2: List[Relation] = field(default_factory=list)
    #: Literals that entered/left the ontology's literal set.
    added_literals1: List[Literal] = field(default_factory=list)
    removed_literals1: List[Literal] = field(default_factory=list)
    added_literals2: List[Literal] = field(default_factory=list)
    removed_literals2: List[Literal] = field(default_factory=list)
    #: Resource endpoints of changed *left* data statements (the seed of
    #: the dirty instance frontier; the right side's reach is derived
    #: from ``statements2`` through the equivalence store instead).
    touched_instances1: List[Resource] = field(default_factory=list)
    #: Classes whose direct extension changed (``rdf:type`` adds or
    #: removes), per ontology — the delta-aware class pass invalidates
    #: exactly these rows.
    touched_classes1: List[Resource] = field(default_factory=list)
    touched_classes2: List[Resource] = field(default_factory=list)
    #: Instances whose type set changed, per ontology (their closed
    #: class sets feed the *other* direction's class pass).
    type_changed_instances1: List[Resource] = field(default_factory=list)
    type_changed_instances2: List[Resource] = field(default_factory=list)
    #: Whether ``rdfs:subClassOf`` edges changed, per ontology — this
    #: invalidates the class closures wholesale.
    subclass_changed1: bool = False
    subclass_changed2: bool = False
    #: Counts of actually-applied triple changes (schema included).
    applied_add: int = 0
    applied_remove: int = 0

    def is_noop(self) -> bool:
        return self.applied_add == 0 and self.applied_remove == 0


def _apply_side(
    ontology: Ontology,
    adds: Tuple[Triple, ...],
    removes: Tuple[Triple, ...],
    statements: List[AppliedStatement],
    relations: List[Relation],
    added_literals: List[Literal],
    removed_literals: List[Literal],
    effect: DeltaEffect,
    touched_classes: List[Resource],
    type_changed_instances: List[Resource],
    instances: Optional[List[Resource]] = None,
) -> bool:
    """Apply one side's triples; returns whether subclass edges changed."""
    relation_set = set()
    subclass_changed = False
    for triple, removing in [(t, True) for t in removes] + [(t, False) for t in adds]:
        # Canonicalize: an inverse-oriented statement (possibly with a
        # literal subject, see repro.rdf.triples) is the same assertion
        # as its forward form, and the bookkeeping below assumes the
        # forward orientation.
        triple = triple.canonical
        schema = is_schema_relation(triple.relation)
        literal_nodes = [
            node for node in (triple.subject, triple.object) if isinstance(node, Literal)
        ]
        was_present = {literal: literal in ontology.literals for literal in literal_nodes}
        if removing:
            applied = ontology.remove_triple(triple)
        else:
            applied = ontology.add_triple(triple)
        if not applied:
            continue
        if removing:
            effect.applied_remove += 1
        else:
            effect.applied_add += 1
        if schema:
            base = triple.relation.base
            if base == RDF_TYPE:
                # Canonical orientation: rdf:type(instance, class).
                type_changed_instances.append(triple.subject)  # type: ignore[arg-type]
                touched_classes.append(triple.object)  # type: ignore[arg-type]
            elif base == RDFS_SUBCLASSOF:
                subclass_changed = True
            continue
        statements.append((triple.relation, triple.subject, triple.object))
        if triple.relation not in relation_set:
            relation_set.add(triple.relation)
            relations.append(triple.relation)
        if instances is not None:
            for node in (triple.subject, triple.object):
                if isinstance(node, Resource):
                    instances.append(node)
        for literal in literal_nodes:
            now_present = literal in ontology.literals
            if now_present and not was_present[literal]:
                added_literals.append(literal)
            elif was_present[literal] and not now_present:
                removed_literals.append(literal)
    return subclass_changed


def apply_delta(
    ontology1: Ontology,
    ontology2: Ontology,
    delta: Delta,
    validated: bool = False,
) -> DeltaEffect:
    """Apply a delta to both ontologies and report the effect.

    Removals run before additions on each side; the left side is
    applied first.  Idempotent changes are skipped silently.  The batch
    is validated up front (:func:`validate_delta`), so a rejected delta
    raises *before* any store is touched — all-or-nothing from the
    service's perspective.  Callers that already validated (the service
    engine does, outside its poisoning scope) pass ``validated=True``
    to skip the second walk.
    """
    if not validated:
        validate_delta(delta)
    effect = DeltaEffect()
    effect.subclass_changed1 = _apply_side(
        ontology1,
        delta.add1,
        delta.remove1,
        effect.statements1,
        effect.touched_relations1,
        effect.added_literals1,
        effect.removed_literals1,
        effect,
        effect.touched_classes1,
        effect.type_changed_instances1,
        instances=effect.touched_instances1,
    )
    effect.subclass_changed2 = _apply_side(
        ontology2,
        delta.add2,
        delta.remove2,
        effect.statements2,
        effect.touched_relations2,
        effect.added_literals2,
        effect.removed_literals2,
        effect,
        effect.touched_classes2,
        effect.type_changed_instances2,
    )
    return effect
