"""Incremental alignment service — PARIS as a resident process.

Turns the batch reproduction into a long-running engine: triple-level
delta batches (``delta``), versioned snapshots (``state``), the
locked warm-start engine with its secondary read index and change
fan-out (``engine``), the HTTP front-end (``server``, see
``docs/api.md``), the read-side query/caching/subscription layer
(``query``, ``subs``), and WAL-backed streaming ingestion
(``stream``).  Multi-replica serving lives in ``replica``.

The load-bearing guarantee: every way of reaching WAL offset K — cold
realign, incremental deltas however batched, replica tail, crash
resume — serves the same scores within 1e-9.  The full design notes,
data-flow diagram and per-module rationale live in
``docs/architecture.md``; the operator guide (metrics, logging) is
``docs/operations.md``.
"""

from .delta import Delta, DeltaEffect, apply_delta, compose_deltas, validate_delta
from .engine import AlignmentService, DeltaReport
from .state import AlignmentState, latest_version, load_state, save_state

__all__ = [
    "Delta",
    "DeltaEffect",
    "apply_delta",
    "compose_deltas",
    "validate_delta",
    "AlignmentService",
    "DeltaReport",
    "AlignmentState",
    "save_state",
    "load_state",
    "latest_version",
]
