"""Incremental alignment service — PARIS as a resident process.

The paper targets living knowledge bases that change continuously; this
package turns the batch reproduction into a long-running service:

``repro.service.delta``
    Triple-level delta batches (add/remove, both ontologies, JSON
    codec) and their application to the indexed stores, computing the
    dirty frontier the warm-start fixpoint re-scores.
``repro.service.state``
    Versioned snapshot/restore of the full alignment state (ontologies,
    equivalences, relation/class matrices) via pickle.
``repro.service.engine``
    :class:`AlignmentService` — owns the state, the functionality /
    literal-index invalidation, the incremental relation matrices, and
    drives :meth:`repro.core.aligner.ParisAligner.warm_align` per delta.
``repro.service.server``
    A stdlib ``ThreadingHTTPServer`` front-end (``POST /delta``,
    ``GET /pair/<x>/<x'>``, ``GET /alignment``, ``GET /healthz``,
    ``GET /stats``), wired into the CLI as ``repro serve``.
``repro.service.stream``
    Streaming ingestion in front of the engine — source → WAL →
    batcher → engine: NDJSON file tailers and spool directories feed
    the same bounded queue as ``POST /delta``; accepted deltas are
    write-ahead-logged (fsync'd, optionally group-committed) before
    application and snapshots record the absorbed WAL offset, so a
    restart replays exactly the un-snapshotted suffix; the coalescing
    batcher merges queued deltas
    (:func:`~repro.service.delta.compose_deltas`) so one warm pass
    absorbs many small writes; admission control rejects overload with
    429 + ``Retry-After`` and per-source sequence numbers make
    redelivery idempotent.  The WAL rotates into sealed segment files
    (``--wal-segment-bytes``) and compaction drops segments a durable
    snapshot covers, so the log's disk footprint is bounded.
``repro.service.replica``
    Multi-replica serving over that WAL — it doubles as the
    replication log: one primary ingests writes, N read replicas
    bootstrap from its snapshot and tail the WAL (shared files or the
    ``GET /wal`` log-shipping endpoint) into their own engines, and a
    read router (``repro route``) fans ``GET /pair`` /
    ``GET /alignment`` across healthy replicas, forwards writes to the
    primary, and honors bounded-staleness reads (``?min_offset=`` /
    ``?max_lag_ms=``, 503 + ``Retry-After`` when no replica is fresh
    enough).  See that package's docstring for the architecture
    diagram and the staleness contract.

Observability (:mod:`repro.obs`, stdlib-only): every role — primary,
replica, router — serves ``GET /metrics`` in the Prometheus text
format from one process-wide registry; a shared handler mixin
(:mod:`repro.obs.http`) emits a structured access-log line and the
``repro_requests_total`` / ``repro_request_duration_seconds`` series
per request with paths normalized to a bounded route set.  The fixpoint
itself is traced with spans (``align.cold``/``align.warm`` →
``pass.*`` → ``kernel.build/score/merge``): each span feeds the
``repro_span_duration_seconds`` histogram, logs a line at debug level,
and the most recent align's whole tree is served as
``last_align_profile`` in ``GET /stats``.  WAL durability
(appended/durable/applied offsets, fsync count and latency), batcher
queue depth/admission counters, replica lag (records and ms) and
router backend health/ejections are all exported — the full metric
name list and the logging contract live in ROADMAP.md's
"Observability" section.  Diagnostics go through the structured
``repro.*`` logger hierarchy (``--log-format json|text``,
``--log-level``); with JSON selected nothing in the stack writes bare
text to stderr.

Guarantees: after each delta, the served scores equal a cold
``score_stationarity`` realignment of the updated ontologies within
1e-9 (enforced by ``tests/test_warm_start.py`` and the
``benchmarks/test_microbench_incremental.py`` latency bench); a delta
stream ingested through watch-file/WAL/batcher produces scores equal
within 1e-9 to the same deltas applied one-by-one via ``POST /delta``,
and a crash mid-batch followed by snapshot + WAL replay reaches that
same state (``tests/test_stream.py``); every replica at WAL offset K
serves scores equal within 1e-9 to the primary at offset K, across
crash resume and WAL compaction (``tests/test_replica.py``).
"""

from .delta import Delta, DeltaEffect, apply_delta, compose_deltas, validate_delta
from .engine import AlignmentService, DeltaReport
from .state import AlignmentState, latest_version, load_state, save_state

__all__ = [
    "Delta",
    "DeltaEffect",
    "apply_delta",
    "compose_deltas",
    "validate_delta",
    "AlignmentService",
    "DeltaReport",
    "AlignmentState",
    "save_state",
    "load_state",
    "latest_version",
]
