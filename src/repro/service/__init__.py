"""Incremental alignment service — PARIS as a resident process.

The paper targets living knowledge bases that change continuously; this
package turns the batch reproduction into a long-running service:

``repro.service.delta``
    Triple-level delta batches (add/remove, both ontologies, JSON
    codec) and their application to the indexed stores, computing the
    dirty frontier the warm-start fixpoint re-scores.
``repro.service.state``
    Versioned snapshot/restore of the full alignment state (ontologies,
    equivalences, relation/class matrices) via pickle.
``repro.service.engine``
    :class:`AlignmentService` — owns the state, the functionality /
    literal-index invalidation, the incremental relation matrices, and
    drives :meth:`repro.core.aligner.ParisAligner.warm_align` per delta.
``repro.service.server``
    A stdlib ``ThreadingHTTPServer`` front-end (``POST /delta``,
    ``GET /pair/<x>/<x'>``, ``GET /alignment``, ``GET /healthz``),
    wired into the CLI as ``repro serve``.

Guarantee: after each delta, the served scores equal a cold
``score_stationarity`` realignment of the updated ontologies within
1e-9 (enforced by ``tests/test_warm_start.py`` and the
``benchmarks/test_microbench_incremental.py`` latency bench).
"""

from .delta import Delta, DeltaEffect, apply_delta, validate_delta
from .engine import AlignmentService, DeltaReport
from .state import AlignmentState, latest_version, load_state, save_state

__all__ = [
    "Delta",
    "DeltaEffect",
    "apply_delta",
    "validate_delta",
    "AlignmentService",
    "DeltaReport",
    "AlignmentState",
    "save_state",
    "load_state",
    "latest_version",
]
