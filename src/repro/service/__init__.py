"""Incremental alignment service — PARIS as a resident process.

The paper targets living knowledge bases that change continuously; this
package turns the batch reproduction into a long-running service:

``repro.service.delta``
    Triple-level delta batches (add/remove, both ontologies, JSON
    codec) and their application to the indexed stores, computing the
    dirty frontier the warm-start fixpoint re-scores.
``repro.service.state``
    Versioned snapshot/restore of the full alignment state (ontologies,
    equivalences, relation/class matrices) via pickle.
``repro.service.engine``
    :class:`AlignmentService` — owns the state, the functionality /
    literal-index invalidation, the incremental relation matrices, and
    drives :meth:`repro.core.aligner.ParisAligner.warm_align` per delta.
``repro.service.server``
    A stdlib ``ThreadingHTTPServer`` front-end (``POST /delta``,
    ``GET /pair/<x>/<x'>``, ``GET /alignment``, ``GET /healthz``,
    ``GET /stats``), wired into the CLI as ``repro serve``.
``repro.service.stream``
    Streaming ingestion in front of the engine — source → WAL →
    batcher → engine: NDJSON file tailers and spool directories feed
    the same bounded queue as ``POST /delta``; accepted deltas are
    write-ahead-logged (fsync'd) before application and snapshots
    record the absorbed WAL offset, so a restart replays exactly the
    un-snapshotted suffix; the coalescing batcher merges queued deltas
    (:func:`~repro.service.delta.compose_deltas`) so one warm pass
    absorbs many small writes; admission control rejects overload with
    429 + ``Retry-After`` and per-source sequence numbers make
    redelivery idempotent.

Guarantees: after each delta, the served scores equal a cold
``score_stationarity`` realignment of the updated ontologies within
1e-9 (enforced by ``tests/test_warm_start.py`` and the
``benchmarks/test_microbench_incremental.py`` latency bench); a delta
stream ingested through watch-file/WAL/batcher produces scores equal
within 1e-9 to the same deltas applied one-by-one via ``POST /delta``,
and a crash mid-batch followed by snapshot + WAL replay reaches that
same state (``tests/test_stream.py``).
"""

from .delta import Delta, DeltaEffect, apply_delta, compose_deltas, validate_delta
from .engine import AlignmentService, DeltaReport
from .state import AlignmentState, latest_version, load_state, save_state

__all__ = [
    "Delta",
    "DeltaEffect",
    "apply_delta",
    "compose_deltas",
    "validate_delta",
    "AlignmentService",
    "DeltaReport",
    "AlignmentState",
    "save_state",
    "load_state",
    "latest_version",
]
