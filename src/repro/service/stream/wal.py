"""Write-ahead log for streaming delta ingestion.

Format: NDJSON, one record per *accepted* delta, in admission order::

    {"delta": {...}, "offset": 17, "source": "file:deltas.ndjson", "seq": 17}

``offset`` is the 1-based record index (the WAL's own consistency
check); ``delta`` is the JSON wire form of :mod:`repro.service.delta`
— whose terms :func:`~repro.service.delta.validate_delta` has already
checked round-trip the N-Triples codec, so a WAL never holds a delta a
restarted process cannot re-parse; ``source``/``seq`` carry the
per-source sequence numbers the batcher's idempotent-redelivery check
is recovered from.

Durability contract
-------------------
:meth:`WriteAheadLog.append` writes the record, flushes and fsyncs
before returning: once a writer's delta is acknowledged it survives a
process crash.  A *torn* trailing record (crash mid-append) is
detected on open and truncated away — its delta was never
acknowledged, so dropping it is correct.  A malformed record *before*
the tail is real corruption and raises :class:`WalCorruptionError`
instead of silently skipping history.

Exactly-once replay
-------------------
:func:`replay_wal` reapplies the suffix of records beyond a state's
``wal_offset`` (see :class:`repro.service.state.AlignmentState`).
Triple adds and removes have set semantics, so replaying records that
were already (fully or partially) applied before a crash is
idempotent at the ontology level, and the warm fixpoint converges to
the numeric fixpoint of the final graphs: a SIGKILL mid-batch followed
by snapshot + WAL replay reaches the same scores (within 1e-9) as a
run that never crashed.  Enforced by the crash-recovery test in
``tests/test_stream.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from ..delta import Delta


class WalCorruptionError(ValueError):
    """A WAL record before the tail cannot be decoded."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL entry."""

    offset: int
    source: str
    seq: Optional[int]
    delta: Delta


def _decode_record(line: str, expected_offset: int) -> WalRecord:
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("WAL record must be a JSON object")
    offset = payload["offset"]
    if offset != expected_offset:
        raise ValueError(f"offset {offset} where {expected_offset} was expected")
    seq = payload.get("seq")
    if seq is not None and not isinstance(seq, int):
        raise ValueError(f"non-integer seq {seq!r}")
    return WalRecord(
        offset=offset,
        source=payload.get("source", ""),
        seq=seq,
        delta=Delta.from_json(payload["delta"]),
    )


class WriteAheadLog:
    """Append-only NDJSON log of accepted deltas (see module docstring).

    Parameters
    ----------
    path:
        Log file; created (with parents) on the first append.
    read_only:
        Open for replay only: a torn tail is ignored instead of
        truncated, and :meth:`append` raises.  ``repro replay`` uses
        this so inspecting a WAL never mutates it.
    """

    def __init__(self, path: Union[str, Path], read_only: bool = False) -> None:
        self.path = Path(path)
        self.read_only = read_only
        self._stream: Optional[TextIO] = None
        self._offset, self._last_seqs, good_bytes = self._scan()
        if not read_only:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists() and self.path.stat().st_size > good_bytes:
                # Torn tail from a crash mid-append: the record was
                # never acknowledged, so cutting it is the correct (and
                # required) recovery — appending after torn bytes would
                # corrupt the next record too.
                with self.path.open("r+b") as stream:
                    stream.truncate(good_bytes)

    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Offset of the newest appended record (0 when empty)."""
        return self._offset

    @property
    def last_seqs(self) -> Dict[str, int]:
        """Highest sequence number appended per source (a copy)."""
        return dict(self._last_seqs)

    def _walk(self) -> Iterator[Tuple[WalRecord, int]]:
        """Decode the log front to back: ``(record, end byte offset)``.

        The single reader behind :meth:`replay` and the open-time scan,
        so torn-tail and corruption handling cannot drift apart.  Stops
        silently at an unterminated tail: each record is one write of a
        newline-terminated line, so a crash mid-append leaves a strict
        prefix without the trailing newline — torn, never acknowledged,
        safe to drop.  A newline-terminated record that does not decode
        was fully written, so the log is genuinely corrupt and
        :class:`WalCorruptionError` raises.
        """
        if not self.path.exists():
            return
        with self.path.open("rb") as stream:
            raw = stream.read()
        position = 0
        offset = 0
        while position < len(raw):
            end = raw.find(b"\n", position)
            if end < 0:
                break  # torn tail
            line = raw[position : end + 1]
            try:
                record = _decode_record(line.decode("utf-8"), offset + 1)
            except (ValueError, KeyError, UnicodeDecodeError) as error:
                raise WalCorruptionError(
                    f"{self.path}: record {offset + 1} is corrupt: {error}"
                ) from error
            offset += 1
            position = end + 1
            yield record, position

    def _scan(self) -> Tuple[int, Dict[str, int], int]:
        """Walk the log once: offset, per-source seqs, good byte count."""
        offset = 0
        last_seqs: Dict[str, int] = {}
        good_bytes = 0
        for record, end_byte in self._walk():
            offset = record.offset
            good_bytes = end_byte
            if record.seq is not None:
                previous = last_seqs.get(record.source)
                if previous is None or record.seq > previous:
                    last_seqs[record.source] = record.seq
        return offset, last_seqs, good_bytes

    # ------------------------------------------------------------------

    def append(self, delta: Delta, source: str, seq: Optional[int] = None) -> int:
        """Durably append one accepted delta; returns its offset.

        The record is flushed and fsync'd before this returns, so an
        acknowledged delta is never lost to a process crash.
        """
        if self.read_only:
            raise RuntimeError(f"{self.path} was opened read-only")
        if self._stream is None:
            self._stream = self.path.open("a", encoding="utf-8")
        record = {"offset": self._offset + 1, "source": source, "delta": delta.to_json()}
        if seq is not None:
            record["seq"] = seq
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._offset += 1
        if seq is not None:
            previous = self._last_seqs.get(source)
            if previous is None or seq > previous:
                self._last_seqs[source] = seq
        return self._offset

    def replay(self, after_offset: int = 0) -> Iterator[WalRecord]:
        """Decoded records with ``offset > after_offset``, in order.

        A torn tail yields nothing for the torn record (it was never
        acknowledged); corruption before the tail raises (see
        :meth:`_walk`).
        """
        for record, _end_byte in self._walk():
            if record.offset > after_offset:
                yield record

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def replay_wal(service, wal: WriteAheadLog, max_batch: int = 256) -> int:
    """Reapply the un-snapshotted WAL suffix to a service.

    Records beyond ``service.state.wal_offset`` are composed into
    batches of at most ``max_batch`` (order preserved, so the final
    graph state — and therefore the fixpoint — is exactly that of the
    original stream) and pushed through the engine; the state's
    ``wal_offset`` advances with each applied batch.  Returns the
    number of records replayed.
    """
    from ..delta import compose_deltas

    replayed = 0
    pending: List[WalRecord] = []

    def flush() -> None:
        if not pending:
            return
        composed = compose_deltas(record.delta for record in pending)
        service.apply_delta(composed, wal_offset=pending[-1].offset)
        pending.clear()

    for record in wal.replay(after_offset=service.state.wal_offset):
        pending.append(record)
        replayed += 1
        if len(pending) >= max_batch:
            flush()
    flush()
    return replayed
