"""Write-ahead log for streaming delta ingestion and replication.

Format: NDJSON, one record per *accepted* delta, in admission order::

    {"delta": {...}, "offset": 17, "source": "file:deltas.ndjson", "seq": 17}

``offset`` is the 1-based record index (the WAL's own consistency
check); ``delta`` is the JSON wire form of :mod:`repro.service.delta`
— whose terms :func:`~repro.service.delta.validate_delta` has already
checked round-trip the N-Triples codec, so a WAL never holds a delta a
restarted process cannot re-parse; ``source``/``seq`` carry the
per-source sequence numbers the batcher's idempotent-redelivery check
is recovered from.

Schema v2 (PR 9) adds optional per-record *provenance*::

    {"delta": {...}, "offset": 18, "source": "http", "v": 2,
     "prov": {"trace": "<request id>", "ingest_ts": ..., "enqueue_ts": ...}}

``prov`` carries the delta's trace id and the wall-clock stamps known
at append time (see :mod:`repro.obs.provenance`; the fsync stamp
cannot be in the record — it is written *before* the fsync — so the
durable/applied stamps live in the engine's provenance ring, and the
``GET /wal`` endpoint folds them into shipped records).  The bump is
per-record and strictly additive: records without ``v``/``prov``
(schema v1 — every pre-PR-9 log) parse, replay, and replicate exactly
as before, and old readers ignore the new keys.

Segments
--------
The log is a *sequence of segment files*.  ``path`` (conventionally
``state-dir/wal.ndjson``) is the **active** segment new records are
appended to; once it reaches ``segment_bytes`` it is *sealed* — fsync'd
and renamed to ``<stem>-<first offset, 16 digits><suffix>`` (e.g.
``wal-0000000000000001.ndjson``) — and a fresh active file starts.
Sealed segments are immutable and their name carries the offset of
their first record, so readers can skip whole segments without
decoding them, and compaction can drop them without renumbering.  A
pre-segment single-file WAL is simply an active segment that never
rotated: the format is unchanged and old logs replay as-is.

Rotation happens *on append* (the record that would overflow the
segment opens the next one), so the active segment always holds at
least one record after a rotation and the log's current offset is
recoverable from the files alone after any crash.

Compaction
----------
:meth:`WriteAheadLog.compact` deletes sealed segments whose *entire*
offset range is at or below a covered offset — the WAL offset recorded
by a durable snapshot (:class:`repro.service.state.AlignmentState`),
which by construction absorbed every record up to it.  The active
segment is never deleted, and when the active file is empty the newest
sealed segment is kept even if covered, so the current offset always
remains recoverable from disk.  Compacted records take their per-source
sequence numbers with them: a redelivery older than the snapshot is
re-admitted instead of acked as duplicate, which is safe — triple
changes are idempotent sets and the warm fixpoint converges on the
final graphs.

Durability contract
-------------------
:meth:`WriteAheadLog.append` (with the default ``sync=True``) writes
the record, flushes and fsyncs before returning: once a writer's delta
is acknowledged it survives a process crash.  ``sync=False`` splits
the two halves — buffered append now, explicit :meth:`sync` before the
ack — which is what *group commit* builds on: when many writers
:meth:`sync` concurrently, one of them becomes the fsync leader,
optionally waits ``group_commit`` seconds for stragglers to buffer
their records, and a single fsync makes the whole group durable.  The
per-delta semantics are unchanged (no append is acknowledged before an
fsync covered it); only the fsync *count* is amortized.

A *torn* trailing record (crash mid-append) is detected on open and
truncated away — its delta was never acknowledged, so dropping it is
correct; torn tails can only occur in the active segment, because
sealing fsyncs before the rename.  A malformed record anywhere else is
real corruption and raises :class:`WalCorruptionError` instead of
silently skipping history.

Replication
-----------
The WAL doubles as the replication log: read replicas open it
``read_only`` (directly on shared storage, or over the primary's
``GET /wal`` endpoint — see :mod:`repro.service.replica`) and tail
:meth:`replay` from their applied offset.  A read-only reader
re-discovers segments on every walk, so rotation under its feet is
safe; a reader asking for records that compaction already dropped gets
:class:`WalGapError` and must re-bootstrap from a newer snapshot.

Exactly-once replay
-------------------
:func:`replay_wal` reapplies the suffix of records beyond a state's
``wal_offset`` (see :class:`repro.service.state.AlignmentState`).
Triple adds and removes have set semantics, so replaying records that
were already (fully or partially) applied before a crash is
idempotent at the ontology level, and the warm fixpoint converges to
the numeric fixpoint of the final graphs: a SIGKILL mid-batch followed
by snapshot + WAL replay reaches the same scores (within 1e-9) as a
run that never crashed.  Enforced by the crash-recovery test in
``tests/test_stream.py``.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from ..delta import Delta
from ...obs import get_event_logger
from ...obs.metrics import REGISTRY
from ...obs.trace import span

_log = get_event_logger("repro.wal")

APPENDED_OFFSET = REGISTRY.gauge(
    "repro_wal_appended_offset",
    "Offset of the newest record appended to the write-ahead log.",
)
DURABLE_OFFSET = REGISTRY.gauge(
    "repro_wal_durable_offset",
    "Highest WAL offset an fsync has covered (never leads appended).",
)
WAL_RECORDS = REGISTRY.counter(
    "repro_wal_records_total",
    "Records appended to the write-ahead log.",
)
WAL_FSYNCS = REGISTRY.counter(
    "repro_wal_fsyncs_total",
    "fsync calls issued by the write-ahead log (group commit shares them).",
)
FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "Duration of one WAL flush+fsync syscall pair.",
)


class WalCorruptionError(ValueError):
    """A WAL record before the tail cannot be decoded."""


class WalGapError(ValueError):
    """The requested replay suffix starts below the oldest retained
    record — compaction dropped it.  Re-bootstrap from a newer
    snapshot instead of replaying."""

    def __init__(self, requested_after: int, oldest: int) -> None:
        super().__init__(
            f"WAL records after offset {requested_after} were requested, but "
            f"the oldest retained record is {oldest} (the prefix was "
            "compacted away); bootstrap from a snapshot covering at least "
            f"offset {oldest - 1}"
        )
        self.requested_after = requested_after
        self.oldest = oldest


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL entry."""

    offset: int
    source: str
    seq: Optional[int]
    delta: Delta
    #: Schema-v2 provenance (trace id + stage timestamps), ``None`` for
    #: v1 records — see the module docstring.
    prov: Optional[dict] = None

    def to_json(self) -> dict:
        """Wire form — identical to the on-disk record, so the
        ``GET /wal`` log-shipping endpoint and the files themselves
        speak one format.  The ``prov`` dict is copied so callers
        (log shipping augments it with ring stamps) can mutate the
        payload without aliasing the record."""
        payload: dict = {
            "offset": self.offset,
            "source": self.source,
            "delta": self.delta.to_json(),
        }
        if self.seq is not None:
            payload["seq"] = self.seq
        if self.prov is not None:
            payload["v"] = 2
            payload["prov"] = dict(self.prov)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "WalRecord":
        if not isinstance(payload, dict):
            raise ValueError("WAL record must be a JSON object")
        offset = payload["offset"]
        if not isinstance(offset, int) or offset < 1:
            raise ValueError(f"bad record offset {offset!r}")
        seq = payload.get("seq")
        if seq is not None and not isinstance(seq, int):
            raise ValueError(f"non-integer seq {seq!r}")
        version = payload.get("v", 1)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"bad record schema version {version!r}")
        prov = payload.get("prov")
        if prov is not None and not isinstance(prov, dict):
            raise ValueError(f"non-object prov {prov!r}")
        return cls(
            offset=offset,
            source=payload.get("source", ""),
            seq=seq,
            delta=Delta.from_json(payload["delta"]),
            prov=dict(prov) if prov else None,
        )


def _decode_record(line: str, expected_offset: Optional[int]) -> WalRecord:
    record = WalRecord.from_json(json.loads(line))
    if expected_offset is not None and record.offset != expected_offset:
        raise ValueError(
            f"offset {record.offset} where {expected_offset} was expected"
        )
    return record


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only segmented NDJSON log (see module docstring).

    Parameters
    ----------
    path:
        Active segment file; created (with parents) on the first
        append.  Sealed segments live next to it, named
        ``<stem>-<first offset:016d><suffix>``.
    read_only:
        Open for replay only: a torn active tail is ignored instead of
        truncated, :meth:`append` raises, and segments are
        re-discovered on every walk so a live writer can rotate and
        compact underneath the reader.
    segment_bytes:
        Seal the active segment once it holds at least this many bytes
        (``None``/``0``: never rotate — the single-file behaviour).
    group_commit:
        Seconds an fsync leader waits for concurrent writers to join
        its group before the shared fsync (``0``: sync immediately;
        the wait is skipped when no other writer is in :meth:`sync`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        read_only: bool = False,
        segment_bytes: Optional[int] = None,
        group_commit: float = 0.0,
    ) -> None:
        self.path = Path(path)
        self.read_only = read_only
        self.segment_bytes = int(segment_bytes) if segment_bytes else 0
        if group_commit < 0:
            raise ValueError("group_commit must be >= 0")
        self.group_commit = group_commit
        self._stream: Optional[TextIO] = None
        # _write_lock orders appends/rotations; _commit takes over for
        # the durable-offset bookkeeping and fsync leader election.
        # Never acquire _write_lock while holding _commit.
        self._write_lock = threading.RLock()
        self._commit = threading.Condition()
        self._syncing = False
        self._sync_waiters = 0
        self.fsyncs = 0
        #: Optional :class:`repro.obs.provenance.ProvenanceRing` — when
        #: set (the serving stack wires the engine's ring in), every
        #: fsync stamps ``durable`` on the offsets it covered.
        self.provenance = None
        scan = self._scan()
        self._offset, self._last_seqs, active_bytes, active_base = scan
        self._active_base = active_base
        self._active_bytes = active_bytes
        self._durable_offset = self._offset
        if not read_only:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists() and self.path.stat().st_size > active_bytes:
                # Torn tail from a crash mid-append: the record was
                # never acknowledged, so cutting it is the correct (and
                # required) recovery — appending after torn bytes would
                # corrupt the next record too.
                with self.path.open("r+b") as stream:
                    stream.truncate(active_bytes)
            # Whatever the recovery scan found *is* the log now; tell
            # file-tailing readers so they are not stuck on a marker
            # from before the crash.
            self._publish_durable(self._offset)

    # ------------------------------------------------------------------
    # segment discovery
    # ------------------------------------------------------------------

    @property
    def _sealed_pattern(self) -> "re.Pattern[str]":
        return re.compile(
            re.escape(self.path.stem) + r"-(\d{16})" + re.escape(self.path.suffix) + r"$"
        )

    def sealed_segments(self) -> List[Tuple[int, Path]]:
        """Sealed segment files as ``(first offset, path)``, in order."""
        pattern = self._sealed_pattern
        found = []
        if self.path.parent.is_dir():
            for candidate in self.path.parent.iterdir():
                match = pattern.match(candidate.name)
                if match is not None:
                    found.append((int(match.group(1)), candidate))
        return sorted(found)

    def _sealed_name(self, first_offset: int) -> Path:
        return self.path.with_name(
            f"{self.path.stem}-{first_offset:016d}{self.path.suffix}"
        )

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Offset of the newest appended record (0 when empty)."""
        return self._offset

    @property
    def durable_offset(self) -> int:
        """Highest offset an fsync has covered (== :attr:`offset` right
        after a synchronous append)."""
        return self._durable_offset

    @property
    def _durable_marker_path(self) -> Path:
        return self.path.with_name(self.path.name + ".durable")

    def _publish_durable(self, offset: int) -> None:
        """Advertise the fsync-covered offset to file-tailing readers.

        Written (atomically, *after* the fsync, under ``_write_lock``)
        so the marker can trail reality but never lead it: a reader
        capping at the marker never applies a record a primary crash
        could still lose.  The marker itself is advisory and not
        fsync'd — losing it only delays readers until the next commit.
        """
        DURABLE_OFFSET.set(offset)
        marker_tmp = self._durable_marker_path.with_name(
            self._durable_marker_path.name + ".tmp"
        )
        try:
            marker_tmp.write_text(f"{offset}\n", encoding="utf-8")
            os.replace(marker_tmp, self._durable_marker_path)
        except OSError:  # pragma: no cover - advisory only
            pass

    def durable_marker(self) -> Optional[int]:
        """The durable offset the writer last published (reader side).

        ``None`` when no marker exists — a log written before markers
        existed, or by a writer that never group-commits.  A marker
        that exists but cannot be read or parsed *raises* (``OSError``
        / ``ValueError``): mapping it to a number would either trust
        unfsync'd bytes (too high) or make a backlogged replica look
        caught-up at a fake head (too low) — the poll must fail
        visibly and retry instead.
        """
        try:
            text = self._durable_marker_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        return int(text.strip())

    @property
    def last_seqs(self) -> Dict[str, int]:
        """Highest sequence number appended per source (a copy)."""
        return dict(self._last_seqs)

    def _iter_file(
        self,
        path: Path,
        expected: Optional[int],
        allow_torn: bool,
        missing_ok: bool = True,
    ) -> Iterator[Tuple[WalRecord, int]]:
        """Decode one segment file: ``(record, end byte offset)``.

        Stops silently at an unterminated tail when ``allow_torn``:
        each record is one write of a newline-terminated line, so a
        crash (or a concurrent writer) leaves a strict prefix without
        the trailing newline — torn, never acknowledged, safe to
        ignore.  A newline-terminated record that does not decode was
        fully written, so the log is genuinely corrupt and
        :class:`WalCorruptionError` raises.  ``missing_ok=False``
        propagates ``FileNotFoundError`` (a listed sealed segment that
        vanished means a compactor won a race — silently yielding
        nothing would let a reader skip the segment's offset range).
        """
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            if not missing_ok:
                raise
            return
        position = 0
        while position < len(raw):
            end = raw.find(b"\n", position)
            if end < 0:
                if allow_torn:
                    break
                raise WalCorruptionError(
                    f"{path}: torn record in a sealed segment"
                )
            line = raw[position : end + 1]
            try:
                record = _decode_record(line.decode("utf-8"), expected)
            except (ValueError, KeyError, UnicodeDecodeError) as error:
                raise WalCorruptionError(
                    f"{path}: record after byte {position} is corrupt: {error}"
                ) from error
            expected = record.offset + 1
            position = end + 1
            yield record, position

    def _walk(
        self, after_offset: int = 0, check_gap: bool = False
    ) -> Iterator[Tuple[WalRecord, bool, int]]:
        """Decode the log front to back:
        ``(record, in active segment, end byte offset in its file)``.

        The single reader behind :meth:`replay` and the open-time scan,
        so torn-tail, corruption and rotation handling cannot drift
        apart.  The first retained record (compaction may have dropped
        a prefix) defines the starting offset; continuity is enforced
        from there, within and across segments.  Sealed segments whose
        entire range sits at or below ``after_offset`` are skipped by
        name, without decoding (their end is the next segment's base
        minus one).  With ``check_gap``, a first retained record above
        ``after_offset + 1`` raises :class:`WalGapError` — replay
        wants that, the open-time scan of a compacted log does not.

        For read-only readers, a live writer rotating mid-walk is
        handled: the just-sealed file (it holds the tail we were about
        to read from the active path) is picked up on a refreshed
        listing, already-yielded offsets are filtered out, and the walk
        continues into the new active file.
        """
        expected: Optional[int] = None
        first_retained: Optional[int] = None
        walked: set = set()

        def note_first(offset: int) -> None:
            nonlocal first_retained
            if first_retained is None:
                first_retained = offset
                if check_gap and first_retained > after_offset + 1:
                    raise WalGapError(after_offset, first_retained)

        while True:
            sealed = [
                (base, path)
                for base, path in self.sealed_segments()
                if base not in walked
            ]
            for index, (base, path) in enumerate(sealed):
                note_first(base)
                walked.add(base)
                next_base = sealed[index + 1][0] if index + 1 < len(sealed) else None
                if next_base is None and after_offset >= base:
                    # The newest sealed segment has no successor to
                    # name its end; the active file's first record
                    # bounds it instead, so a tailing reader is not
                    # forced to re-decode a full segment per poll.
                    active_first = self._first_offset_in(self.path)
                    if active_first > base:
                        next_base = active_first
                if (
                    next_base is not None
                    and next_base - 1 <= after_offset
                    and (expected is None or base == expected)
                ):
                    # Whole segment at or below after_offset: skip it
                    # undecoded (its end is next_base - 1).
                    expected = next_base
                    continue
                if expected is not None and base > expected:
                    raise WalCorruptionError(
                        f"{path}: segment starts at {base} "
                        f"where {expected} was expected"
                    )
                try:
                    for record, end_byte in self._iter_file(
                        path, base, False, missing_ok=False
                    ):
                        if expected is not None and record.offset < expected:
                            continue  # yielded while this file was active
                        expected = record.offset + 1
                        yield record, False, end_byte
                except FileNotFoundError:
                    # A compactor deleted the segment between our
                    # listing and the read: its range is gone, which a
                    # reader must treat as a gap — never as an empty
                    # segment it may silently step over.
                    remaining = [
                        other_base
                        for other_base, _path in self.sealed_segments()
                        if other_base > base
                    ]
                    raise WalGapError(
                        after_offset, min(remaining) if remaining else base + 1
                    ) from None
            try:
                for record, end_byte in self._iter_file(self.path, expected, True):
                    note_first(record.offset)
                    expected = record.offset + 1
                    yield record, True, end_byte
            except WalCorruptionError:
                if self._newly_sealed(walked):
                    # The writer (this process's batcher thread, for
                    # the GET /wal handler walking its own live log, or
                    # another process, for a read-only reader) sealed
                    # the file we were reading as the active segment;
                    # loop to pick the records up from the sealed
                    # listing instead.
                    continue
                raise
            if self._newly_sealed(walked):
                continue
            return

    def _newly_sealed(self, walked: set) -> bool:
        return any(base not in walked for base, _path in self.sealed_segments())

    def _scan(self) -> Tuple[int, Dict[str, int], int, int]:
        """Walk the log once: offset, per-source seqs, good active
        bytes, and the active segment's first offset."""
        offset = 0
        last_seqs: Dict[str, int] = {}
        active_bytes = 0
        active_base: Optional[int] = None
        for record, in_active, end_byte in self._walk():
            offset = record.offset
            if in_active:
                active_bytes = end_byte
                if active_base is None:
                    active_base = record.offset
            if record.seq is not None:
                previous = last_seqs.get(record.source)
                if previous is None or record.seq > previous:
                    last_seqs[record.source] = record.seq
        if active_base is None:
            active_base = offset + 1
        return offset, last_seqs, active_bytes, active_base

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append(
        self,
        delta: Delta,
        source: str,
        seq: Optional[int] = None,
        sync: bool = True,
        prov: Optional[dict] = None,
    ) -> int:
        """Append one accepted delta; returns its offset.

        With ``sync=True`` (default) the record is fsync'd before this
        returns, so an acknowledged delta is never lost to a process
        crash.  With ``sync=False`` the record is only buffered — call
        :meth:`sync` with the returned offset before acknowledging the
        delta to anyone (the batcher does, sharing one group fsync
        across concurrent writers).

        ``prov`` (trace id + ingest/enqueue stamps) makes this a
        schema-v2 record; without it the record is byte-identical to
        the v1 format.
        """
        if self.read_only:
            raise RuntimeError(f"{self.path} was opened read-only")
        with self._write_lock:
            if (
                self.segment_bytes
                and self._active_bytes >= self.segment_bytes
                and self._offset >= self._active_base
            ):
                self._rotate_locked()
            if self._stream is None:
                self._stream = self.path.open("a", encoding="utf-8")
            offset = self._offset + 1
            record = {"offset": offset, "source": source, "delta": delta.to_json()}
            if seq is not None:
                record["seq"] = seq
            if prov is not None:
                record["v"] = 2
                record["prov"] = dict(prov)
            line = json.dumps(record, sort_keys=True) + "\n"
            self._stream.write(line)
            self._offset = offset
            self._active_bytes += len(line.encode("utf-8"))
            if seq is not None:
                previous = self._last_seqs.get(source)
                if previous is None or seq > previous:
                    self._last_seqs[source] = seq
            WAL_RECORDS.inc()
            APPENDED_OFFSET.set(offset)
        if sync:
            self.sync(offset)
        return offset

    def sync(self, offset: Optional[int] = None) -> None:
        """Block until an fsync covered ``offset`` (default: every
        appended record).  Concurrent callers share one fsync: the
        first becomes the leader, optionally waits ``group_commit``
        seconds for more writers to buffer their records, then flushes
        and fsyncs once for the whole group.
        """
        if self.read_only:
            raise RuntimeError(f"{self.path} was opened read-only")
        if offset is None:
            offset = self._offset
        # The span covers the whole wait: leader election, the group-
        # commit gather window, and queuing behind another leader.
        with span("wal.sync"):
            self._sync_wait(offset)

    def _sync_wait(self, offset: int) -> None:
        with self._commit:
            self._sync_waiters += 1
        try:
            while True:
                with self._commit:
                    if self._durable_offset >= offset:
                        return
                    if self._syncing:
                        self._commit.wait(0.05)
                        continue
                    self._syncing = True
                    gather = self.group_commit > 0 and self._sync_waiters > 1
                covered = self._durable_offset
                try:
                    if gather:
                        # Group-commit window: let concurrent appends
                        # buffer their records so one fsync covers all.
                        time.sleep(self.group_commit)
                    with self._write_lock:
                        target = self._offset
                        if self._stream is not None:
                            fsync_started = time.perf_counter()
                            self._stream.flush()
                            os.fsync(self._stream.fileno())
                            self.fsyncs += 1
                            WAL_FSYNCS.inc()
                            FSYNC_SECONDS.observe(time.perf_counter() - fsync_started)
                        # Only reached when the fsync (if any was
                        # needed) succeeded; a stream-less log has
                        # everything on disk already (rotation and
                        # close fsync before releasing the handle).
                        covered = target
                        if covered > self._durable_offset:
                            self._publish_durable(covered)
                        if self.provenance is not None:
                            self.provenance.stamp_upto("durable", covered)
                finally:
                    with self._commit:
                        if covered > self._durable_offset:
                            self._durable_offset = covered
                        self._syncing = False
                        self._commit.notify_all()
        finally:
            with self._commit:
                self._sync_waiters -= 1

    def _rotate_locked(self) -> None:
        """Seal the active segment (fsync, rename) and start a new one.
        Caller holds ``_write_lock``."""
        if self._stream is not None:
            self._stream.flush()
            os.fsync(self._stream.fileno())
            self.fsyncs += 1
            WAL_FSYNCS.inc()
            self._stream.close()
            self._stream = None
        sealed = self._sealed_name(self._active_base)
        os.replace(self.path, sealed)
        _fsync_directory(self.path.parent)
        with self._commit:
            if self._offset > self._durable_offset:
                self._durable_offset = self._offset
        self._publish_durable(self._offset)
        if self.provenance is not None:
            self.provenance.stamp_upto("durable", self._offset)
        self._active_base = self._offset + 1
        self._active_bytes = 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def replay(self, after_offset: int = 0) -> Iterator[WalRecord]:
        """Decoded records with ``offset > after_offset``, in order.

        Sealed segments entirely at or below ``after_offset`` are
        skipped by name, without decoding.  A torn active tail yields
        nothing for the torn record (it was never acknowledged);
        corruption before the tail raises; a request below the oldest
        retained record (compacted prefix) raises
        :class:`WalGapError`.
        """
        for record, _in_active, _end_byte in self._walk(
            after_offset=after_offset, check_gap=True
        ):
            if record.offset > after_offset:
                yield record

    def current_offset(self) -> int:
        """The newest record offset *on disk right now*.

        For a writer this equals :attr:`offset`; a read-only reader
        derives it from the *tail line of the newest file* — O(one
        segment read), not a decode of the whole log — so a replica
        polling for the head every few milliseconds stays cheap no
        matter how large the log has grown.
        """
        if not self.read_only:
            return self._offset
        last = self._last_offset_in(self.path)
        if last:
            return last
        for _base, path in reversed(self.sealed_segments()):
            last = self._last_offset_in(path)
            if last:
                return last
        return 0

    def _first_offset_in(self, path: Path) -> int:
        """Offset of the first *complete* record line of one file (0
        when missing, empty, or torn before its first newline)."""
        try:
            with path.open("rb") as stream:
                line = stream.readline()
        except FileNotFoundError:
            return 0
        if not line.endswith(b"\n"):
            return 0
        try:
            return _decode_record(line.decode("utf-8"), None).offset
        except (ValueError, KeyError, UnicodeDecodeError):
            return 0

    def _last_offset_in(self, path: Path) -> int:
        """Offset of the last *complete* record line of one file (0
        when the file is missing, empty, or all-torn).  Reads a
        bounded tail window, not the whole file — this probe runs on
        every replica poll, and a nearly-full active segment must not
        cost a full-segment read to find one newline.  Trusts the
        record's own offset field — the full continuity check belongs
        to :meth:`replay`, not the head probe."""
        try:
            with path.open("rb") as stream:
                stream.seek(0, os.SEEK_END)
                size = stream.tell()
                window = 1 << 16
                while True:
                    start = max(0, size - window)
                    stream.seek(start)
                    raw = stream.read(size - start)
                    end = raw.rfind(b"\n")
                    if end < 0:
                        if start == 0:
                            return 0
                        window *= 2  # one line outgrew the window
                        continue
                    begin = raw.rfind(b"\n", 0, end) + 1
                    if begin == 0 and start > 0:
                        window *= 2  # the line starts before the window
                        continue
                    line = raw[begin : end + 1]
                    break
        except FileNotFoundError:
            return 0
        try:
            return _decode_record(line.decode("utf-8"), None).offset
        except (ValueError, KeyError, UnicodeDecodeError):
            return 0

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self, covered_offset: int) -> Tuple[int, List[Path]]:
        """Delete sealed segments fully covered by ``covered_offset``.

        ``covered_offset`` must come from a *durable* snapshot's
        ``wal_offset``: those records' effects are inside the pickled
        state, so the log no longer needs them for recovery or replica
        bootstrap.  The active segment is never deleted; when the
        active file holds no records, the newest sealed segment is
        retained even if covered, so the current offset stays
        recoverable from disk after a crash.  Returns ``(bytes
        reclaimed, deleted paths)``.

        Works on a ``read_only`` handle too — that is how the offline
        ``repro wal compact`` stays safe against a still-running
        primary (a writer-mode open would truncate what it takes for a
        torn tail and republish the durable marker, both of which are
        wrong while the real writer lives).  Deleting covered sealed
        segments is safe concurrently: the writer never reopens them,
        and readers hitting the vanished file fall into the
        :class:`WalGapError` re-bootstrap path.
        """
        with self._write_lock:
            sealed = self.sealed_segments()
            if not sealed:
                return 0, []
            # Segment i spans [base_i, base_{i+1} - 1]; the last sealed
            # segment ends just below the active segment's first record
            # (a reader derives it from the file, a writer knows it).
            ends: List[Optional[int]] = [base - 1 for base, _path in sealed[1:]]
            if self.read_only:
                active_first = self._first_offset_in(self.path)
                active_has_records = active_first > 0
                ends.append(active_first - 1 if active_has_records else None)
            else:
                active_has_records = self._offset >= self._active_base
                ends.append(self._active_base - 1)
            reclaimed = 0
            deleted: List[Path] = []
            for (base, path), end in zip(sealed, ends):
                if end is None or end > covered_offset:
                    break
                if not active_has_records and (base, path) == sealed[-1]:
                    break  # keep the offset recoverable from disk
                try:
                    size = path.stat().st_size
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover - racing compactor
                    continue
                reclaimed += size
                deleted.append(path)
            if deleted:
                _fsync_directory(self.path.parent)
            return reclaimed, deleted

    def size_bytes(self) -> int:
        """Total on-disk bytes across all retained segments."""
        total = 0
        for _base, path in self.sealed_segments():
            try:
                total += path.stat().st_size
            except FileNotFoundError:  # pragma: no cover - racing compactor
                pass
        try:
            total += self.path.stat().st_size
        except FileNotFoundError:
            pass
        return total

    def close(self) -> None:
        if self._stream is not None:
            with self._write_lock:
                if self._stream is not None:
                    self._stream.flush()
                    os.fsync(self._stream.fileno())
                    self.fsyncs += 1
                    WAL_FSYNCS.inc()
                    self._stream.close()
                    self._stream = None
                    self._publish_durable(self._offset)
                    if self.provenance is not None:
                        self.provenance.stamp_upto("durable", self._offset)
            with self._commit:
                if self._offset > self._durable_offset:
                    self._durable_offset = self._offset


def replay_wal(service, wal: WriteAheadLog, max_batch: int = 256) -> int:
    """Reapply the un-snapshotted WAL suffix to a service.

    Records beyond ``service.state.wal_offset`` are composed into
    batches of at most ``max_batch`` (order preserved, so the final
    graph state — and therefore the fixpoint — is exactly that of the
    original stream) and pushed through the engine; the state's
    ``wal_offset`` advances with each applied batch.  Returns the
    number of records replayed.

    Replayed records are registered in the service's provenance ring
    as *non-live* timelines: ``GET /provenance`` can still reconstruct
    them (flagged ``replayed``), but the stage histograms are not
    re-observed — a restart must not double-count latencies the first
    life of the process already recorded.
    """
    from ..delta import compose_deltas

    ring = getattr(service, "provenance", None)
    replayed = 0
    pending: List[WalRecord] = []

    def flush() -> None:
        if not pending:
            return
        if ring is not None:
            traces = []
            for record in pending:
                ring.register_record(record, live=False)
                if record.prov and record.prov.get("trace"):
                    traces.append(record.prov["trace"])
            ring.note_merge(traces)
        composed = compose_deltas(record.delta for record in pending)
        service.apply_delta(composed, wal_offset=pending[-1].offset)
        pending.clear()

    for record in wal.replay(after_offset=service.state.wal_offset):
        pending.append(record)
        replayed += 1
        if len(pending) >= max_batch:
            flush()
    flush()
    if replayed:
        # Replay self-check: the incrementally-maintained digest after
        # reapplying the suffix must equal a full recompute over the
        # caught-up assignment — warm application is deterministic, so
        # a mismatch here means the replayed state cannot be trusted.
        from ...obs.audit import (
            AUDIT_CHECKS,
            AUDIT_MISMATCH,
            digest_assignment,
            format_digest,
        )

        AUDIT_CHECKS.inc(kind="replay")
        with service.lock:
            incremental = service.digests.digest
            recomputed = digest_assignment(service._assignment12)
        if recomputed != incremental:
            AUDIT_MISMATCH.inc(kind="replay")
            _log.error(
                "replayed state failed the digest self-check",
                incremental=format_digest(incremental),
                recomputed=format_digest(recomputed),
                offset=service.state.wal_offset,
            )
    return replayed
