"""Streaming delta ingestion — source → WAL → batcher → engine.

PARIS computes alignments by fixpoint over whole ontologies; the
resident service absorbs deltas through a warm-start fixpoint that is
orders of magnitude faster than the cold run — fast enough that the
bottleneck becomes *getting deltas in*: one synchronous HTTP POST (and
one warm pass, and optionally one snapshot) per writer batch.  This
package puts a streaming ingestion pipeline in front of the engine:

``repro.service.stream.sources``
    Where deltas come from: an NDJSON append-only file tailer and a
    watched spool directory, feeding the same internal queue as
    ``POST /delta``.
``repro.service.stream.wal``
    Durability: every *accepted* delta is appended (fsync'd) to a
    segmented write-ahead log before application; snapshots record the
    WAL offset they absorbed, so a restart replays exactly the
    un-snapshotted suffix (:func:`replay_wal`).  Group commit
    (``--wal-group-commit-ms``) lets concurrent writers share one
    fsync at unchanged per-delta durability; segment rotation
    (``--wal-segment-bytes``) plus compaction (``repro wal compact``,
    or automatically after each snapshot) bound the log's disk
    footprint.  The WAL doubles as the replication log read replicas
    tail (:mod:`repro.service.replica`).
``repro.service.stream.batcher``
    Coalescing + admission control: queued deltas are merged
    (:func:`repro.service.delta.compose_deltas` — add/remove of the
    same triple cancel) so one warm pass absorbs many small writes;
    a bounded queue rejects overload with
    :class:`~repro.service.stream.batcher.QueueFullError` (HTTP 429 +
    ``Retry-After``), and per-source sequence numbers make redelivery
    idempotent.

Exactly-once-replay guarantee: a delta stream ingested through any
combination of watch-file, WAL, and batcher produces scores equal
(within 1e-9) to the same deltas applied one-by-one via
``POST /delta``; and a crash mid-batch followed by snapshot + WAL
replay reaches that same state — triple changes are idempotent sets
and the warm fixpoint converges on the *final* graphs, so coalescing,
reordering-free replay, and partial reapplication all land on the same
numeric fixpoint.  Enforced by the coalescing hypothesis property and
the crash-recovery test in ``tests/test_stream.py``.

Wired into the CLI as ``repro serve --watch PATH --wal --max-batch N
--max-lag-ms M --max-queue Q`` and the offline ``repro replay WAL
--state-dir DIR`` recovery tool; observable through ``GET /stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .batcher import DeltaBatcher, QueueFullError
from .sources import (
    NdjsonFileTailer,
    SpoolDirectorySource,
    decode_stream_line,
    make_source,
)
from .wal import WalCorruptionError, WalGapError, WalRecord, WriteAheadLog, replay_wal


@dataclass
class StreamStack:
    """One serve process's ingestion plumbing, started/stopped as one.

    ``stop`` tears down in dependency order: sources first (no new
    submissions), then the batcher (drains the queue through the
    engine), then the WAL file handle — after which a final snapshot
    records the fully-applied WAL offset.
    """

    batcher: DeltaBatcher
    wal: Optional[WriteAheadLog] = None
    sources: List = field(default_factory=list)

    def start(self) -> "StreamStack":
        self.batcher.start()
        for source in self.sources:
            source.start()
        return self

    def stop(self) -> None:
        for source in self.sources:
            source.stop()
        self.batcher.close(drain=True)
        if self.wal is not None:
            self.wal.close()

    def stats(self) -> dict:
        payload = self.batcher.stats()
        if self.sources:
            payload["sources"] = [source.stats() for source in self.sources]
        return payload


__all__ = [
    "DeltaBatcher",
    "QueueFullError",
    "NdjsonFileTailer",
    "SpoolDirectorySource",
    "decode_stream_line",
    "make_source",
    "StreamStack",
    "WalCorruptionError",
    "WalGapError",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
]
