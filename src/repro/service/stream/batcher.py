"""Coalescing batcher with admission control.

The single funnel in front of the engine: HTTP writers and streaming
sources all :meth:`DeltaBatcher.submit` into one bounded queue.  A
submitted delta is validated, deduplicated (per-source sequence
numbers), admission-checked, durably WAL-appended — in that order —
and then waits in the queue until the flush loop coalesces it with its
neighbours (:func:`repro.service.delta.compose_deltas`) and applies
one composed batch through
:meth:`repro.service.engine.AlignmentService.apply_delta`, so one warm
fixpoint pass absorbs many small writes.

Flush policy: a batch closes when it holds ``max_batch`` deltas or
when the oldest queued delta has waited ``max_lag`` seconds, whichever
comes first — the two knobs trade ingest throughput against freshness.

Admission control: when the queue already holds ``max_queue`` deltas,
:meth:`submit` raises :class:`QueueFullError` (the HTTP front-end maps
it to ``429`` with a ``Retry-After`` header) *before* touching the
WAL, so back-pressured writers retry without consuming durability.

Idempotent redelivery: a writer may tag each delta with a
monotonically increasing per-source sequence number; a redelivered
(``seq`` at or below the source's high-water mark) delta is
acknowledged but dropped.  The high-water marks are recovered from the
WAL on restart, so redelivery stays idempotent across crashes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ...obs import get_event_logger
from ...obs.metrics import REGISTRY
from ...obs.provenance import new_trace_id
from ...obs.trace import span
from ..delta import Delta, compose_deltas, validate_delta
from ..engine import AlignmentService, DeltaReport
from .wal import WriteAheadLog

_log = get_event_logger("repro.batcher")

QUEUE_DEPTH = REGISTRY.gauge(
    "repro_batcher_queue_depth",
    "Deltas admitted but not yet applied (queued + in-flight).",
)
ACCEPTED = REGISTRY.counter(
    "repro_batcher_accepted_total",
    "Deltas admitted into the ingest queue.",
)
DUPLICATES = REGISTRY.counter(
    "repro_batcher_duplicates_total",
    "Redelivered deltas acknowledged but dropped (seq at or below high-water).",
)
REJECTED = REGISTRY.counter(
    "repro_batcher_rejected_total",
    "Deltas rejected by admission control (queue full).",
)
BATCHES = REGISTRY.counter(
    "repro_batcher_batches_total",
    "Composed batches successfully applied to the engine.",
)
COALESCED = REGISTRY.counter(
    "repro_batcher_coalesced_total",
    "Deltas absorbed by successfully applied batches.",
)


class QueueFullError(RuntimeError):
    """Admission control rejected a delta: the ingest queue is full."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"ingest queue is full ({depth} deltas pending); "
            f"retry in {retry_after:g}s"
        )
        self.depth = depth
        self.retry_after = retry_after


@dataclass
class _Pending:
    """One queued delta and its completion slot."""

    delta: Delta
    wal_offset: Optional[int]
    enqueued_at: float
    source: str = "http"
    seq: Optional[int] = None
    trace: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)
    report: Optional[DeltaReport] = None
    error: Optional[BaseException] = None


class DeltaBatcher:
    """Bounded ingest queue + coalescing flush loop (module docstring).

    Parameters
    ----------
    service:
        The engine consuming composed batches.
    wal:
        Optional write-ahead log; when given, every accepted delta is
        fsync'd before it is queued, and the per-source sequence
        high-water marks are recovered from it.
    max_queue:
        Admission bound: queued-but-unapplied deltas beyond this are
        rejected with :class:`QueueFullError`.
    max_batch:
        Most deltas composed into one engine batch.
    max_lag:
        Longest time (seconds) the oldest queued delta may wait before
        its batch is flushed regardless of size.
    retry_after:
        The back-off hint carried by :class:`QueueFullError`.
    on_batch_applied:
        Called once per successfully applied batch with its
        :class:`~repro.service.engine.DeltaReport` — the snapshot
        policy hook (``repro serve`` wires ``--snapshot-every``
        through it, so one batch triggers at most one snapshot no
        matter how many HTTP waiters shared it).  Failures are logged,
        never propagated: the batch itself already applied.
    """

    def __init__(
        self,
        service: AlignmentService,
        wal: Optional[WriteAheadLog] = None,
        max_queue: int = 256,
        max_batch: int = 32,
        max_lag: float = 0.05,
        retry_after: float = 1.0,
        on_batch_applied: Optional[Callable[[DeltaReport], None]] = None,
    ) -> None:
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        self.service = service
        self.wal = wal
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.max_lag = max_lag
        self.retry_after = retry_after
        self.on_batch_applied = on_batch_applied
        self._queue: Deque[_Pending] = deque()
        self._ready = threading.Condition()
        self._last_seqs: Dict[str, int] = wal.last_seqs if wal is not None else {}
        self._in_flight = 0
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        # Cumulative counters (read via stats()).
        self.accepted = 0
        self.duplicates = 0
        self.rejected = 0
        self.batches = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def submit(
        self,
        delta: Delta,
        source: str = "http",
        seq: Optional[int] = None,
        wait: bool = False,
        timeout: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> Optional[DeltaReport]:
        """Admit one delta into the ingest queue.

        Raises ``ValueError`` for an invalid delta (nothing consumed),
        :class:`QueueFullError` when admission control rejects it, and
        ``RuntimeError`` after :meth:`close`.  Returns ``None`` for a
        duplicate (``seq`` at or below the source's high-water mark) or
        a fire-and-forget submit; with ``wait=True`` it blocks until
        the delta's batch was applied and returns that batch's
        :class:`~repro.service.engine.DeltaReport` (re-raising the
        batch's failure, if any).

        ``trace`` is the delta's provenance id (the HTTP front-end
        passes the request id, streaming sources synthesize one per
        record); when omitted one is generated, so every admitted
        delta has a reconstructable timeline.
        """
        validate_delta(delta)
        ingest_ts = time.time()
        if trace is None:
            trace = new_trace_id()
        offset = None
        duplicate = False
        with self._ready:
            if self._closed:
                raise RuntimeError("delta batcher is closed")
            if seq is not None:
                last = self._last_seqs.get(source)
                duplicate = last is not None and seq <= last
            if duplicate:
                self.duplicates += 1
                DUPLICATES.inc()
            else:
                # Pending = queued + popped-but-still-applying: the
                # bound measures what stats() reports as queue_depth.
                depth = len(self._queue) + self._in_flight
                if depth >= self.max_queue:
                    self.rejected += 1
                    REJECTED.inc()
                    raise QueueFullError(depth, self.retry_after)
                # Buffered append under the queue lock keeps WAL order
                # == application order; the fsync happens below,
                # outside the lock, so concurrent writers can share
                # one group commit.
                enqueue_ts = time.time()
                prov = {
                    "trace": trace,
                    "ingest_ts": ingest_ts,
                    "enqueue_ts": enqueue_ts,
                }
                offset = (
                    self.wal.append(delta, source, seq, sync=False, prov=prov)
                    if self.wal is not None
                    else None
                )
                ring = getattr(self.service, "provenance", None)
                if ring is not None:
                    ring.admit(
                        trace,
                        source=source,
                        seq=seq,
                        offset=offset,
                        ingest_ts=ingest_ts,
                        enqueue_ts=enqueue_ts,
                    )
                if seq is not None and self.wal is not None:
                    # With a WAL the delta is durable the moment it is
                    # admitted: a redelivery may be acked as duplicate
                    # even if this batch later fails, because restart
                    # replays it from the log.  Without a WAL the mark
                    # only moves after a successful apply (see _apply)
                    # — otherwise a failed batch + retry would be
                    # acked as "duplicate" and the delta silently lost.
                    self._last_seqs[source] = seq
                pending = _Pending(delta, offset, time.monotonic(), source, seq, trace)
                self._queue.append(pending)
                self.accepted += 1
                ACCEPTED.inc()
                QUEUE_DEPTH.set(len(self._queue) + self._in_flight)
                self._ready.notify_all()
        if duplicate:
            if self.wal is not None:
                # The original record may still be buffered (its
                # submitter is inside its group fsync): acking the
                # duplicate promises durability, so join the fsync
                # before answering.
                self.wal.sync()
            return None
        if offset is not None:
            # Durability point: after this sync returns, the delta
            # survives a crash (replayed from the WAL on restart).
            # Concurrent submitters share the leader's fsync (see
            # WriteAheadLog.sync), so per-delta ack-after-fsync costs
            # one group commit, not one fsync each.
            self.wal.sync(offset)
        if not wait:
            return None
        if not pending.done.wait(timeout):
            raise TimeoutError("timed out waiting for the delta's batch")
        if pending.error is not None:
            raise pending.error
        return pending.report

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until everything queued so far has been applied."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while self._queue or self._in_flight:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._ready.wait(remaining if remaining is not None else 0.1)
        return True

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def start(self) -> "DeltaBatcher":
        """Start the flush loop thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-delta-batcher", daemon=True
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the flush loop; by default after draining the queue."""
        with self._ready:
            self._closed = True
            if not drain:
                for pending in self._queue:
                    pending.error = RuntimeError("batcher closed before this delta ran")
                    pending.done.set()
                self._queue.clear()
            self._ready.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=120)
            self._thread = None

    def _take_batch(self) -> List[_Pending]:
        """Wait for work, honour the flush policy, pop one batch."""
        with self._ready:
            while not self._queue and not self._closed:
                self._ready.wait(0.1)
            if not self._queue:
                return []
            deadline = self._queue[0].enqueued_at + self.max_lag
            while len(self._queue) < self.max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._ready.wait(remaining)
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch))
            ]
            self._in_flight += len(batch)
            return batch

    def _finish(self, batch: List[_Pending]) -> None:
        with self._ready:
            self._in_flight -= len(batch)
            QUEUE_DEPTH.set(len(self._queue) + self._in_flight)
            self._ready.notify_all()
        for pending in batch:
            pending.done.set()

    def _apply(self, batch: List[_Pending]) -> None:
        composed = compose_deltas(pending.delta for pending in batch)
        wal_offset = batch[-1].wal_offset
        try:
            if wal_offset is not None:
                # Never apply records an fsync has not covered: a crash
                # after apply + snapshot but before the fsync would
                # leave a snapshot claiming WAL offsets the log does
                # not hold.  Inside the try: an fsync failure must
                # reach the batch's waiters as an error, not kill the
                # flush loop and hand them a success-shaped None.
                self.wal.sync(wal_offset)
            report = self.service.apply_delta(composed, wal_offset=wal_offset)
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            # The engine poisoned itself if mutation had started; every
            # waiter of this batch gets the failure, and later batches
            # fail fast on the engine's fail-stop check.
            for pending in batch:
                pending.error = error
            return
        self.batches += 1
        self.coalesced += len(batch)
        BATCHES.inc()
        COALESCED.inc(len(batch))
        ring = getattr(self.service, "provenance", None)
        if ring is not None:
            # Coalescing provenance: every member of the batch learns
            # which traces shared its warm pass; without a WAL the
            # engine has no offset to stamp, so applied is stamped here
            # by trace instead.
            traces = [pending.trace for pending in batch if pending.trace]
            ring.note_merge(traces)
            if wal_offset is None:
                ring.stamp_traces("applied", traces)
        if self.wal is None:
            # WAL-less mode: the batch is now the durable fact, so the
            # redelivery high-water marks may advance (admission-time
            # marking would falsely ack deltas of a failed batch).
            with self._ready:
                for pending in batch:
                    if pending.seq is None:
                        continue
                    last = self._last_seqs.get(pending.source)
                    if last is None or pending.seq > last:
                        self._last_seqs[pending.source] = pending.seq
        for pending in batch:
            pending.report = report
        if self.on_batch_applied is not None:
            try:
                self.on_batch_applied(report)
            except Exception as error:  # noqa: BLE001 - policy hook only
                # The batch applied; a failing side-effect (e.g. a full
                # disk under the snapshot) must not kill the flush loop
                # or mark the batch failed.
                _log.warning("on_batch_applied failed", error=str(error))

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                return  # closed and drained
            try:
                with span("batcher.flush", deltas=len(batch)):
                    self._apply(batch)
            finally:
                self._finish(batch)

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue/WAL/coalescing counters for ``GET /stats``."""
        with self._ready:
            return {
                "queue_depth": len(self._queue) + self._in_flight,
                "accepted": self.accepted,
                "duplicates": self.duplicates,
                "rejected": self.rejected,
                "batches": self.batches,
                "coalesced_deltas": self.coalesced,
                "wal_appended": self.wal.offset if self.wal is not None else None,
                "max_queue": self.max_queue,
                "max_batch": self.max_batch,
                "max_lag_ms": self.max_lag * 1000.0,
            }
