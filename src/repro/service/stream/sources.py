"""Streaming delta sources: NDJSON file tailer and spool directory.

Both sources feed :meth:`repro.service.stream.batcher.DeltaBatcher.submit`
— the same queue ``POST /delta`` enqueues into — from a polling thread
(stdlib only; no inotify dependency).

Line format (shared): one JSON object per line, either a bare delta in
the ``POST /delta`` wire form (``{"left": {...}, "right": {...}}``) or
an envelope ``{"delta": {...}, "seq": 7}`` carrying an explicit
sequence number.  Lines without an explicit ``seq`` get their 1-based
line/record index as sequence number automatically, so a restarted
process that re-reads the file from the start redelivers idempotently
(the batcher drops already-ingested sequence numbers, recovered from
the WAL).  Implicit and explicit sequence numbers live in separate
per-source namespaces, so the two forms can be mixed in one file
without an envelope's large ``seq`` swallowing later bare lines.

* :class:`NdjsonFileTailer` tails one append-only file: it remembers
  its byte position, consumes only complete (newline-terminated)
  lines, and survives the file not existing yet.  On back-pressure
  (:class:`~repro.service.stream.batcher.QueueFullError`) it stops
  advancing and retries the same line on the next poll.  Rotation —
  an inode change (rename + recreate) or in-place shrinking — makes
  the tailer re-read from the top while its record counter keeps
  running, so the new file's lines get fresh implicit sequence
  numbers.  Rotation hand-off is the *writer's* contract: rotate only
  once the tailer caught up (``GET /stats`` shows the source's
  ingested count / the applied WAL offset) — lines still unread in
  the renamed-away file are not followed, as with any polling tailer.
  Writers that rotate *and* restart the service should use explicit
  ``seq`` envelopes (the implicit numbering is only restart-stable
  for append-only files); writers that cannot honor either contract
  should hand whole files to a spool directory instead, whose
  rename-to-``.done`` protocol is loss-free per file.
* :class:`SpoolDirectorySource` watches a directory for NDJSON files
  (``*.json`` / ``*.ndjson``), ingests each completely, then renames
  it to ``<name>.done``.  Writers must place files atomically (write
  to a temp name, then rename into the directory).  A file that hits
  back-pressure midway is retried wholesale on a later poll; its
  already-ingested lines are dropped as duplicates by their sequence
  numbers, which live in a namespace keyed on the file's name *and
  inode* — so a later file reusing a processed name is new data, not
  a redelivery.

Malformed lines — undecodable JSON as well as decodable deltas the
engine would reject (:func:`~repro.service.delta.validate_delta`) —
are counted (``decode_errors`` in :meth:`stats`) and skipped, so one
bad record cannot wedge the stream behind it or kill the source
thread.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ...obs import get_event_logger
from ...obs.provenance import new_trace_id
from ..delta import Delta
from .batcher import DeltaBatcher, QueueFullError

_log = get_event_logger("repro.stream")

#: Spool file suffixes considered ingestible.
SPOOL_SUFFIXES = (".json", ".ndjson")

#: Suffix a fully ingested spool file is renamed to.
SPOOL_DONE_SUFFIX = ".done"


def decode_stream_line(line: str) -> Tuple[Optional[int], Delta]:
    """Decode one NDJSON line into ``(explicit seq or None, delta)``."""
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("stream record must be a JSON object")
    if "delta" in payload:
        unknown = set(payload) - {"delta", "seq", "source"}
        if unknown:
            raise ValueError(f"unknown stream record keys: {sorted(unknown)}")
        seq = payload.get("seq")
        if seq is not None and not isinstance(seq, int):
            raise ValueError(f"non-integer seq {seq!r}")
        return seq, Delta.from_json(payload["delta"])
    return None, Delta.from_json(payload)


class _PollingSource:
    """Base: a daemon thread calling :meth:`_poll` until stopped."""

    def __init__(self, batcher: DeltaBatcher, poll_interval: float = 0.1) -> None:
        self.batcher = batcher
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.ingested = 0
        self.decode_errors = 0

    #: Identifier used as the batcher's per-source sequence namespace.
    source_id: str = ""

    def start(self) -> "_PollingSource":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"repro-source-{self.source_id}", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._poll()
            except QueueFullError:
                pass  # back-pressure: nothing advanced, retry later
            except OSError as error:  # pragma: no cover - environment races
                _log.warning("poll failed", source=self.source_id, error=str(error))
            self._stop.wait(self.poll_interval)

    def _poll(self) -> None:
        raise NotImplementedError

    def _submit(
        self,
        delta: Delta,
        record_number: int,
        seq: Optional[int],
        source: Optional[str] = None,
    ) -> None:
        """Admit one record under the right sequence namespace.

        Implicit sequence numbers (the running record count) and
        explicit ``seq`` envelopes live in *separate* namespaces: in a
        file mixing both forms, one large explicit seq must not raise
        the high-water mark that later bare lines (numbered 1, 2, …)
        are deduplicated against.

        There is no client request to carry a trace context here, so
        each record gets a synthesized trace id — tailed and spooled
        deltas are reconstructable from ``GET /provenance`` just like
        POSTed ones.
        """
        base = source if source is not None else self.source_id
        trace = new_trace_id()
        if seq is None:
            self.batcher.submit(delta, source=base, seq=record_number, trace=trace)
        else:
            self.batcher.submit(
                delta, source=base + "#explicit", seq=seq, trace=trace
            )

    def _skip_bad_line(self, error: Exception, where: str) -> None:
        self.decode_errors += 1
        _log.warning(
            "skipping bad record",
            source=self.source_id,
            where=where,
            error=str(error),
        )

    def stats(self) -> Dict[str, object]:
        return {
            "source": self.source_id,
            "ingested": self.ingested,
            "decode_errors": self.decode_errors,
        }


class NdjsonFileTailer(_PollingSource):
    """Tail one append-only NDJSON file of deltas (module docstring)."""

    #: Bytes read per chunk: bounds the memory of one poll even when
    #: the tailer starts behind a huge backlog (the chunk loop keeps
    #: consuming until it catches up; a single over-long line widens
    #: the window geometrically just for that read).
    READ_CHUNK = 1 << 20

    def __init__(
        self,
        batcher: DeltaBatcher,
        path: Union[str, Path],
        poll_interval: float = 0.1,
    ) -> None:
        super().__init__(batcher, poll_interval)
        self.path = Path(path)
        # The full resolved path, not the basename: two watched files
        # that happen to share a name (repeatable --watch) must not
        # share a sequence-dedup namespace.
        self.source_id = f"file:{self.path.resolve()}"
        self._position = 0
        self._inode: Optional[int] = None
        #: Running count of consumed records — also the implicit
        #: sequence number, so it keeps counting across rotations.
        self._record_number = 0

    def _poll(self) -> None:
        try:
            status = self.path.stat()
        except FileNotFoundError:
            return
        if self._inode is None:
            self._inode = status.st_ino
        if status.st_ino != self._inode or status.st_size < self._position:
            # Rotated: either the path now names a different file
            # (rename + recreate — the inode changed, regardless of
            # how large the new file already grew) or the same file
            # was truncated in place.  Re-read from the top, but keep
            # the running record counter — the rotated file's lines
            # are *new* data and must get sequence numbers above the
            # already-ingested high-water mark, not collide with (and
            # be deduplicated against) the old file's.  Note the
            # counter lives in this process: a writer that rotates
            # *and* wants redelivery across tailer restarts should
            # carry explicit ``seq`` envelopes instead of relying on
            # the implicit line numbering (which is only
            # restart-stable for append-only files).
            _log.info(
                "file was rotated; re-reading from the top",
                source=self.source_id,
                old_inode=self._inode,
                new_inode=status.st_ino,
                position=self._position,
                size=status.st_size,
            )
            self._inode = status.st_ino
            self._position = 0
        while status.st_size > self._position and not self._stop.is_set():
            chunk = self._read_chunk()
            if not self._consume_chunk(chunk):
                return

    def _read_chunk(self) -> bytes:
        """One bounded read from the current position; the window
        widens geometrically only when a single line outgrows it
        (otherwise the consume loop could never advance)."""
        window = self.READ_CHUNK
        while True:
            with self.path.open("rb") as stream:
                stream.seek(self._position)
                chunk = stream.read(window)
            if b"\n" in chunk or len(chunk) < window:
                return chunk
            window *= 2

    def _consume_chunk(self, chunk: bytes) -> bool:
        """Submit the chunk's complete lines; True while progressing.

        A chunk ending mid-line is normal while working through a
        backlog — the poll loop re-reads from the advanced position.
        False (stop polling for now) only when *no* line completed:
        :meth:`_read_chunk` widens until a newline or EOF, so zero
        progress means the file currently ends in a partial line —
        wait for the writer to finish it.
        """
        position = 0
        while not self._stop.is_set():
            end = chunk.find(b"\n", position)
            if end < 0:
                return position > 0
            line = chunk[position : end + 1]
            record_number = self._record_number + 1
            if line.strip():
                try:
                    seq, delta = decode_stream_line(line.decode("utf-8"))
                    # QueueFullError (a RuntimeError) propagates
                    # *before* the position advances, so the line is
                    # retried next poll; a ValueError — undecodable
                    # JSON above, or a decodable delta that fails
                    # validate_delta inside submit — skips just this
                    # line instead of killing the source thread.
                    self._submit(delta, record_number, seq)
                    self.ingested += 1
                except (ValueError, KeyError, UnicodeDecodeError) as error:
                    self._skip_bad_line(error, f"{self.path}:record {record_number}")
            self._record_number = record_number
            position = end + 1
            self._position += len(line)
        return False


class SpoolDirectorySource(_PollingSource):
    """Ingest whole NDJSON files dropped into a directory (docstring)."""

    def __init__(
        self,
        batcher: DeltaBatcher,
        directory: Union[str, Path],
        poll_interval: float = 0.25,
    ) -> None:
        super().__init__(batcher, poll_interval)
        self.directory = Path(directory)
        # Full resolved path for the same non-collision reason as the
        # file tailer's source id.
        self.source_id = f"spool:{self.directory.resolve()}"
        self.files_done = 0

    def _spool_files(self):
        if not self.directory.is_dir():
            return []
        return sorted(
            path
            for path in self.directory.iterdir()
            if path.is_file() and path.suffix.lower() in SPOOL_SUFFIXES
        )

    def _ingest_file(self, path: Path) -> None:
        # The sequence namespace is keyed on the file's *incarnation*
        # (name + inode), not the name alone: a writer reusing a spool
        # filename later must get a fresh namespace, or the batcher's
        # WAL-recovered high-water mark would drop the new file's
        # lines as duplicates.  The inode is stable for the file's
        # lifetime, so back-pressure retries and restarts mid-file
        # still deduplicate correctly.
        source = f"{self.source_id}/{path.name}@{path.stat().st_ino}"
        # Bytes in, decoded per line: one undecodable line (bad UTF-8
        # included) must skip, not kill the source thread on the read.
        lines = path.read_bytes().splitlines()
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                seq, delta = decode_stream_line(line.decode("utf-8"))
                # A QueueFullError here aborts the file un-renamed; the
                # retry resubmits every line and the per-file sequence
                # numbers drop the ones that already made it in.  A
                # ValueError — undecodable line, or a delta that fails
                # validate_delta inside submit — skips just this line.
                self._submit(delta, line_number, seq, source=source)
                self.ingested += 1
            except (ValueError, KeyError, UnicodeDecodeError) as error:
                self._skip_bad_line(error, f"{path}:{line_number}")
                continue
        path.rename(path.with_name(path.name + SPOOL_DONE_SUFFIX))
        self.files_done += 1

    def _poll(self) -> None:
        for path in self._spool_files():
            if self._stop.is_set():
                return
            self._ingest_file(path)

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload["files_done"] = self.files_done
        return payload


def make_source(
    batcher: DeltaBatcher, path: Union[str, Path], poll_interval: float = 0.1
) -> _PollingSource:
    """Pick the right source for ``--watch PATH``: an existing
    directory gets the spool treatment, anything else is tailed as an
    append-only NDJSON file (created later is fine)."""
    target = Path(path)
    if target.is_dir():
        return SpoolDirectorySource(batcher, target, poll_interval=max(poll_interval, 0.25))
    return NdjsonFileTailer(batcher, target, poll_interval=poll_interval)
