"""Change subscriptions: long-poll watches and webhook deliveries.

The engine emits a :class:`~repro.service.query.ChangeEvent` batch for
every applied delta (the same net change log that maintains the
secondary query indexes).  :class:`SubscriptionManager` turns that log
into a push surface:

* **Long-poll** — ``GET /watch?entity=X&epsilon=ε`` parks the request
  on a condition variable until some alignment involving ``X`` moves by
  more than ``ε`` (or its counterpart changes), then answers with one
  *collapsed* notification: all buffered events for the entity since
  the client's cursor fold into a single net change, so a subscriber
  sees exactly one notification per crossing, not one per fixpoint
  wobble.
* **Webhooks** — ``POST /subscribe`` registers a URL; a delivery
  thread POSTs the same collapsed notification shape whenever a
  registered entity crosses its ε.  Deliveries are deduped per
  subscriber per cycle and the per-subscriber cursor is persisted
  (``subscriptions.json`` in the state directory), so a restarted
  server — whose WAL replay regenerates the un-snapshotted tail of the
  change log — resumes deliveries without loss *and* without
  duplicates.

Cursors are **state versions**, not process-local sequence numbers:
the engine stamps every event with the monotone state version (and WAL
offset) of the batch that produced it, versions survive restarts via
snapshots, and WAL replay re-derives events for exactly the versions
the snapshot missed.  A subscriber at version V therefore needs — and
receives — precisely the events with version > V.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Union

from ..obs import get_event_logger
from ..obs.metrics import REGISTRY
from .query import ChangeEvent

_log = get_event_logger("repro.subs")

SUBSCRIPTIONS_ACTIVE = REGISTRY.gauge(
    "repro_subscriptions_active",
    "Registered webhook subscriptions.",
)
NOTIFICATIONS_TOTAL = REGISTRY.counter(
    "repro_notifications_total",
    "Collapsed change notifications delivered, by transport.",
    labelnames=("transport",),
)


def collapse_events(events: Sequence[ChangeEvent]) -> List[dict]:
    """Fold an entity's event run into one net change per side.

    The first event contributes the *previous* state, the last the
    *current* one; intermediate wobble (a score that moved and moved
    back within the window) cancels out, which is what makes the
    ε test below a test on the **net** movement.
    """
    by_side: Dict[str, List[ChangeEvent]] = {}
    for event in events:
        by_side.setdefault(event.side, []).append(event)
    changes = []
    for side in sorted(by_side):
        run = by_side[side]
        first, last = run[0], run[-1]
        changes.append(
            {
                "side": side,
                "entity": last.entity,
                "counterpart": last.counterpart,
                "probability": last.probability,
                "previous_counterpart": first.previous_counterpart,
                "previous_probability": first.previous_probability,
                "magnitude": abs(last.probability - first.previous_probability),
                "counterpart_changed": first.previous_counterpart != last.counterpart,
                "events_collapsed": len(run),
            }
        )
    return changes


def _qualifies(changes: List[dict], epsilon: float) -> bool:
    return any(
        change["magnitude"] > epsilon or change["counterpart_changed"]
        for change in changes
    )


class SubscriptionManager:
    """Ring-buffered change log with long-poll and webhook consumers.

    One manager serves one node (primary or replica); the engine —
    every engine, across replica re-bootstraps — publishes into it via
    :meth:`publish`, which the service wires up as a change listener.
    """

    #: Default long-poll park time (seconds); clients re-poll on None.
    DEFAULT_WAIT = 30.0

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        buffer_size: int = 65536,
        webhook_timeout: float = 5.0,
    ) -> None:
        self._cond = threading.Condition()
        self._events: Deque[ChangeEvent] = deque(maxlen=buffer_size)
        #: Highest state version whose events have been published (also
        #: advanced by event-free batches, so cursors never stall).
        self._version = 0
        self._wal_offset = 0
        self._webhooks: Dict[str, dict] = {}
        self._next_id = 1
        self._closed = False
        self.webhook_timeout = webhook_timeout
        self._path = (
            Path(state_dir) / "subscriptions.json" if state_dir is not None else None
        )
        #: Optional :class:`repro.obs.provenance.ProvenanceRing` of the
        #: engine this manager listens to (wired by the server/CLI):
        #: publishing events for a WAL offset stamps ``notified`` on the
        #: deltas it covers — the moment watchers woke for them.
        self.provenance = None
        self._load()
        SUBSCRIPTIONS_ACTIVE.set_callback(lambda: float(len(self._webhooks)))
        self._delivery_thread = threading.Thread(
            target=self._delivery_loop, name="subs-delivery", daemon=True
        )
        self._delivery_thread.start()

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        if self._path is None or not self._path.exists():
            return
        try:
            payload = json.loads(self._path.read_text("utf-8"))
            self._webhooks = {
                str(key): dict(value)
                for key, value in payload.get("subscriptions", {}).items()
            }
            self._next_id = int(payload.get("next_id", len(self._webhooks) + 1))
        except (ValueError, OSError) as error:
            _log.warning("unreadable subscriptions file", error=str(error))

    def _persist_locked(self) -> None:
        if self._path is None:
            return
        payload = {"subscriptions": self._webhooks, "next_id": self._next_id}
        tmp = self._path.with_suffix(".json.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1), "utf-8")
            tmp.replace(self._path)
        except OSError as error:
            _log.warning("could not persist subscriptions", error=str(error))

    # -- the publish side (engine change listener) ---------------------

    def publish(
        self, events: Sequence[ChangeEvent], version: int, wal_offset: int
    ) -> None:
        """Append one applied batch's events and wake every waiter.

        Called from the engine's change-listener hook (engine lock
        held; this condition is leaf-level, so the ordering is
        acyclic).  Events must arrive in version order, which serial
        delta application guarantees.
        """
        with self._cond:
            # Replay after restart re-derives events for versions the
            # persisted cursors may already cover; buffering them is
            # harmless (consumers filter by version) but never move the
            # cursor backwards.
            self._events.extend(events)
            if version > self._version:
                self._version = version
            if wal_offset > self._wal_offset:
                self._wal_offset = wal_offset
            self._cond.notify_all()
        if events and self.provenance is not None:
            # Outside the condition (ring lock is leaf-level too, but
            # waiters are already awake — stamping must not delay them).
            self.provenance.stamp_upto("notified", wal_offset)

    def advance(self, version: int, wal_offset: int) -> None:
        """Advance the cursor without events (attach/no-op batches)."""
        self.publish((), version, wal_offset)

    # -- long-poll -----------------------------------------------------

    def current_version(self) -> int:
        with self._cond:
            return self._version

    def _notification_locked(
        self, entity: str, epsilon: float, after: int
    ) -> Optional[dict]:
        matching = [
            event
            for event in self._events
            if event.entity == entity and event.version > after
        ]
        if not matching:
            return None
        changes = collapse_events(matching)
        if not _qualifies(changes, epsilon):
            return None
        return {
            "entity": entity,
            "epsilon": epsilon,
            "changes": changes,
            "version": max(event.version for event in matching),
            "wal_offset": max(event.wal_offset for event in matching),
        }

    def wait(
        self,
        entity: str,
        epsilon: float = 0.0,
        after: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Optional[dict]:
        """Block until ``entity`` nets a change > ``epsilon`` past
        version ``after`` (default: from now), or ``timeout`` expires.

        Returns the collapsed notification, or ``None`` on timeout —
        the long-poll 204.  Clients resume with ``after=<version>``
        from the last notification; missed-while-away changes answer
        immediately from the buffer.
        """
        deadline = time.monotonic() + (
            self.DEFAULT_WAIT if timeout is None else timeout
        )
        with self._cond:
            if after is None:
                after = self._version
            while True:
                notification = self._notification_locked(entity, epsilon, after)
                if notification is not None:
                    NOTIFICATIONS_TOTAL.inc(transport="longpoll")
                    return notification
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return None
                self._cond.wait(timeout=min(remaining, 1.0))

    # -- webhooks ------------------------------------------------------

    def subscribe(self, url: str, entity: str, epsilon: float = 0.0) -> dict:
        """Register a webhook; deliveries start after the current version."""
        with self._cond:
            sub_id = f"sub-{self._next_id}"
            self._next_id += 1
            record = {
                "id": sub_id,
                "url": url,
                "entity": entity,
                "epsilon": epsilon,
                "delivered_version": self._version,
            }
            self._webhooks[sub_id] = record
            self._persist_locked()
            self._cond.notify_all()
            return dict(record)

    def unsubscribe(self, sub_id: str) -> bool:
        with self._cond:
            removed = self._webhooks.pop(sub_id, None)
            if removed is not None:
                self._persist_locked()
            return removed is not None

    def subscriptions(self) -> List[dict]:
        with self._cond:
            return [dict(record) for record in self._webhooks.values()]

    def _pending_deliveries_locked(self) -> List[dict]:
        pending = []
        for record in self._webhooks.values():
            notification = self._notification_locked(
                record["entity"],
                float(record["epsilon"]),
                int(record["delivered_version"]),
            )
            if notification is not None:
                pending.append({"record": record, "notification": notification})
        return pending

    def _delivery_loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                pending = self._pending_deliveries_locked()
                if not pending:
                    self._cond.wait(timeout=1.0)
                    continue
            for item in pending:
                self._deliver(item["record"], item["notification"])

    def _deliver(self, record: dict, notification: dict) -> None:
        body = json.dumps(notification).encode("utf-8")
        request = urllib.request.Request(
            record["url"],
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.webhook_timeout):
                pass
        except (urllib.error.URLError, OSError, ValueError) as error:
            # Cursor stays put: the delivery retries on the next cycle,
            # so a flapping endpoint loses nothing (it may later get a
            # *wider* collapsed window — still one deduped POST).
            _log.warning(
                "webhook delivery failed",
                subscription=record["id"],
                url=record["url"],
                error=str(error),
            )
            return
        with self._cond:
            # Re-check: an unsubscribe may have raced the POST.
            live = self._webhooks.get(record["id"])
            if live is not None and notification["version"] > int(
                live["delivered_version"]
            ):
                live["delivered_version"] = notification["version"]
                self._persist_locked()
        NOTIFICATIONS_TOTAL.inc(transport="webhook")

    # -- lifecycle -----------------------------------------------------

    def stats(self) -> dict:
        with self._cond:
            return {
                "subscriptions": len(self._webhooks),
                "buffered_events": len(self._events),
                "version": self._version,
                "wal_offset": self._wal_offset,
            }

    def close(self) -> None:
        """Stop the delivery thread and release every parked waiter."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._delivery_thread.join(timeout=5.0)
