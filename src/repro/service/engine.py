"""The alignment service engine.

:class:`AlignmentService` is the resident-process core behind
``repro serve``: it owns an :class:`~repro.service.state.AlignmentState`,
keeps the derived structures (functionality oracles, literal indexes,
incremental relation matrices) in sync with delta batches, computes the
dirty instance frontier a delta induces, and drives
:meth:`repro.core.aligner.ParisAligner.warm_align`.

Frontier computation (the 1-hop invalidation contract)
------------------------------------------------------
A left instance must be re-scored when any input of its Eq. 13
computation changed:

* its own statements (delta endpoints on the left side);
* the candidate sets of a neighbouring literal (tracked through the
  blocking keys of the literal similarity, on either side's index);
* a statement of a *right* node it can reach — covered by dirtying the
  1-hop neighbours of every left equivalent of the touched right nodes;
* an inverse functionality of one of its relations (left-side
  functionality changes dirty the relation's subjects; right-side
  changes fall back to a full pass, since their reach crosses the
  candidate frontier);
* a relation-matrix row of one of its relations — handled inside the
  warm loop by diffing the incrementally refreshed rows.

All queries and delta applications are serialized behind one lock;
reads between deltas are cheap dictionary lookups.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.aligner import ParisAligner
from ..core.config import ParisConfig
from ..core.incremental import (
    IncrementalRelationPass,
    RestrictedViewMaintainer,
    current_assignments,
)
from ..core.result import Assignment, AssignmentDelta, assignment_delta
from ..core.subclasses import IncrementalClassPass
from ..obs import get_event_logger
from ..obs.audit import (
    AUDIT_CHECKS,
    AUDIT_MISMATCH,
    DigestMaintainer,
    digest_assignment,
    format_digest,
    range_digest,
)
from ..obs.metrics import REGISTRY
from ..obs.provenance import ProvenanceRing, set_active_ring
from ..rdf.ontology import Ontology
from ..rdf.terms import Literal, Node, Resource
from .delta import Delta, DeltaEffect, apply_delta, validate_delta
from .query import ChangeEvent, QueryIndex
from .state import AlignmentState, save_state

_log = get_event_logger("repro.engine")

DELTAS_APPLIED = REGISTRY.counter(
    "repro_deltas_applied_total",
    "Delta batches fully absorbed by the engine's warm fixpoint.",
)
PAIRS_TOUCHED = REGISTRY.counter(
    "repro_pairs_touched_total",
    "Store/view entry writes performed by warm passes (O(frontier) work).",
)
DELTA_SECONDS = REGISTRY.histogram(
    "repro_delta_apply_seconds",
    "End-to-end time to absorb one delta batch (warm fixpoint included).",
)
INSTANCE_PAIRS = REGISTRY.gauge(
    "repro_instance_pairs",
    "Instance pairs currently held in the equivalence store.",
)
APPLIED_OFFSET = REGISTRY.gauge(
    "repro_wal_applied_offset",
    "Last WAL offset whose effects the engine has fully applied.",
)


@dataclass
class DeltaReport:
    """Outcome of one applied delta batch."""

    version: int
    applied_add: int
    applied_remove: int
    dirty: int
    passes: int
    seconds: float
    converged: bool
    #: Store/view entry writes the warm fixpoint performed — the
    #: O(frontier) work metric (compare against ``store_pairs``).
    pairs_touched: int = 0
    #: Stored instance pairs after the delta, for the ratio.
    store_pairs: int = 0

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "applied_add": self.applied_add,
            "applied_remove": self.applied_remove,
            "dirty": self.dirty,
            "passes": self.passes,
            "seconds": self.seconds,
            "converged": self.converged,
            "pairs_touched": self.pairs_touched,
            "store_pairs": self.store_pairs,
        }


class AlignmentService:
    """A live alignment over two evolving ontologies.

    Construct via :meth:`cold_start` (align from scratch, stationarity
    mode) or :meth:`from_state` (resume a snapshot); then feed
    :class:`~repro.service.delta.Delta` batches through
    :meth:`apply_delta` and read pairs/alignments between them.
    """

    def __init__(self, state: AlignmentState) -> None:
        self.state = state
        self.lock = threading.RLock()
        #: Set when a delta failed *after* mutation started: the live
        #: structures may be inconsistent, so the service fail-stops
        #: (every further call raises) rather than serving — and
        #: snapshotting — a corrupted mix.  Restart from the last
        #: snapshot to recover.
        self.poisoned: Optional[str] = None
        #: Cumulative work counters across this process's lifetime
        #: (reset on restart; exposed via :meth:`stats` / ``GET /stats``).
        self.deltas_applied = 0
        self.total_pairs_touched = 0
        self.aligner = ParisAligner(state.ontology1, state.ontology2, state.config)
        config = state.config
        # Resident restricted-view maintainer: built once (O(store)) at
        # attach, then warm passes fold their touched rows into it in
        # O(frontier) instead of rebuilding the Section 5.2 restriction
        # from all pairs.
        if config.restrict_to_maximal_assignment:
            self._view_maintainer: Optional[RestrictedViewMaintainer] = (
                RestrictedViewMaintainer(state.store)
            )
            view = self.aligner.make_view(self._view_maintainer.view_store)
        else:
            self._view_maintainer = None
            view = self.aligner.make_view(state.store)
        self._assignment12, self._assignment21 = current_assignments(
            self._view_maintainer, state.store
        )
        # Order-insensitive state digest (PR 10): recomputed in full at
        # attach, then maintained O(changes) per delta.  A snapshot that
        # carried a digest is integrity-checked here — the bootstrap
        # audit — before this engine trusts (and extends) its state.
        self.digests = DigestMaintainer(self._assignment12, state.wal_offset)
        if state.digest is not None:
            AUDIT_CHECKS.inc(kind="bootstrap")
            if state.digest != self.digests.digest:
                AUDIT_MISMATCH.inc(kind="bootstrap")
                _log.error(
                    "snapshot digest mismatch at attach",
                    expected=format_digest(state.digest),
                    recomputed=format_digest(self.digests.digest),
                    wal_offset=state.wal_offset,
                )
        state.digest = self.digests.digest
        self._rel12 = IncrementalRelationPass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=config.theta,
            max_pairs=config.max_pairs_per_relation,
            bootstrap_theta=config.theta,
        )
        self._rel21 = IncrementalRelationPass(
            state.ontology2,
            state.ontology1,
            view,
            truncation_threshold=config.theta,
            max_pairs=config.max_pairs_per_relation,
            reverse=True,
            bootstrap_theta=config.theta,
        )
        # Resident class-row caches (delta-aware Eq. 17): rows survive
        # across deltas and are invalidated by class reach, not
        # recomputed wholesale per warm run.
        self._classes12 = IncrementalClassPass(
            state.ontology1,
            state.ontology2,
            truncation_threshold=config.theta,
            max_instances=config.max_pairs_per_relation,
        )
        self._classes21 = IncrementalClassPass(
            state.ontology2,
            state.ontology1,
            truncation_threshold=config.theta,
            max_instances=config.max_pairs_per_relation,
            reverse=True,
        )
        # Production read path: the sorted secondary index paginated /
        # top-k reads are served from (its own lock — readers never
        # contend with a warm pass), plus the change listeners the
        # subscription surface hangs off.  Both are fed the net
        # per-delta change log in :meth:`_publish_changes`.
        self.query_index = QueryIndex()
        self.query_index.rebuild(
            self._assignment12, version=state.version, wal_offset=state.wal_offset
        )
        self.change_listeners: List = []
        self._pending_changes: Optional[
            Tuple[AssignmentDelta, AssignmentDelta, Assignment, Assignment]
        ] = None
        # Per-delta provenance timelines (PR 9): the batcher admits,
        # the WAL stamps durable, apply_delta stamps applied, the
        # subscription manager stamps notified.  A replica node swaps
        # in its own longer-lived ring (one per node, across engine
        # re-bootstraps); the newest ring feeds the process freshness
        # gauges.
        self.provenance = ProvenanceRing()
        set_active_ring(self.provenance)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def cold_start(
        cls,
        ontology1: Ontology,
        ontology2: Ontology,
        config: Optional[ParisConfig] = None,
    ) -> "AlignmentService":
        """Align from scratch and wrap the result as a service.

        The cold run is forced into ``score_stationarity`` mode: the
        warm-start fixpoint converges to numeric stationarity, so the
        baseline it extends must sit at the same kind of fixpoint for
        the incremental-equals-cold guarantee to hold.
        """
        config = replace(config or ParisConfig(), score_stationarity=True)
        cold_aligner = ParisAligner(ontology1, ontology2, config)
        result = cold_aligner.align()
        service = cls(AlignmentState.from_result(ontology1, ontology2, config, result))
        # The service builds its own resident aligner; carry the cold
        # run's span tree over so /stats serves it until the first delta.
        service.aligner._last_align_span = cold_aligner._last_align_span
        return service

    @classmethod
    def from_state(cls, state: AlignmentState) -> "AlignmentService":
        return cls(state)

    # ------------------------------------------------------------------
    # delta ingestion
    # ------------------------------------------------------------------

    def _instance_neighbours1(self, node: Node) -> Iterable[Resource]:
        for _relation, other in self.state.ontology1.statements_about(node):
            if isinstance(other, Resource):
                yield other

    def _similar_literals(self, literal: Literal, own_index) -> Set[Literal]:
        """Literals of one side's index that can interact with ``literal``."""
        similar: Set[Literal] = set()
        for key in self.aligner.config.literal_similarity.keys(literal):
            similar |= own_index.bucket_members(key)
        return similar

    def _check_consistent(self) -> None:
        if self.poisoned is not None:
            raise RuntimeError(
                "alignment service is fail-stopped after a mid-delta "
                f"failure ({self.poisoned}); restart from the last snapshot"
            )

    def apply_delta(self, delta: Delta, wal_offset: Optional[int] = None) -> DeltaReport:
        """Absorb a delta batch and warm-start the fixpoint over it.

        Validation failures (bad triples) raise ``ValueError`` before
        anything is touched.  A failure *after* mutation started (e.g.
        a broken worker pool mid-warm-pass) poisons the service: the
        in-memory structures may be inconsistent, so every later call
        fails fast instead of silently serving — or snapshotting — a
        corrupted state.

        ``wal_offset`` is the write-ahead-log offset of the last record
        this batch covers (the streaming batcher passes it); it is
        recorded on the state only once the batch fully applied, so a
        snapshot never claims WAL records whose effects it might miss.
        """
        with self.lock:
            self._check_consistent()
            # Validate before the poisoning scope: a rejected batch
            # raises ValueError here with the state untouched and the
            # service still healthy.
            validate_delta(delta)
            try:
                report = self._apply_delta_locked(delta)
            except BaseException as error:
                self.poisoned = repr(error)
                raise
            self.deltas_applied += 1
            self.total_pairs_touched += report.pairs_touched
            if wal_offset is not None:
                self.state.wal_offset = wal_offset
            DELTAS_APPLIED.inc()
            PAIRS_TOUCHED.inc(report.pairs_touched)
            DELTA_SECONDS.observe(report.seconds)
            INSTANCE_PAIRS.set(report.store_pairs)
            # Identical on primary and replica: whoever applies WAL
            # records owns the applied-offset gauge.
            APPLIED_OFFSET.set(self.state.wal_offset)
            # Provenance: local entries get their "applied" stamp,
            # replica-registered entries their "replica_applied" one.
            self.provenance.stamp_applied_upto(wal_offset)
            # Read-side fan-out runs after the WAL offset is recorded,
            # so index stamps and change events carry the offset the
            # batch is durable under.
            self._publish_changes()
            return report

    def _apply_delta_locked(self, delta: Delta) -> DeltaReport:
        state = self.state
        config = state.config
        tolerance = config.warm_tolerance
        started = time.perf_counter()
        effect = apply_delta(state.ontology1, state.ontology2, delta, validated=True)
        if effect.is_noop():
            return DeltaReport(
                version=state.version,
                applied_add=0,
                applied_remove=0,
                dirty=0,
                passes=0,
                seconds=time.perf_counter() - started,
                converged=state.converged,
                pairs_touched=0,
                store_pairs=len(state.store),
            )
        dirty, seed1, seed2, full = self._invalidate(effect, tolerance)
        if full:
            dirty |= state.ontology1.instances
        result = self.aligner.warm_align(
            state.store,
            self._rel12,
            self._rel21,
            dirty_instances=dirty,
            seed_nodes1=seed1,
            seed_nodes2=seed2,
            delta_statements1=effect.statements1,
            delta_statements2=effect.statements2,
            view_maintainer=self._view_maintainer,
            class12_cache=self._classes12,
            class21_cache=self._classes21,
            # The engine owns the store: touched rows fold back in
            # place, so a warm pass never copies the full store.
            mutate_store=True,
        )
        state.absorb(result)
        # Net change log of this batch, O(frontier): the snapshot-delta
        # merge when the run kept snapshots, a full diff otherwise.
        # Stashed (with the pre-delta assignments, for the "previous"
        # side of change events) and published by apply_delta once the
        # WAL offset is recorded.
        net = result.net_assignment_changes()
        if net is None:
            net = (
                assignment_delta(self._assignment12, result.assignment12),
                assignment_delta(self._assignment21, result.assignment21),
            )
        self._pending_changes = (net[0], net[1], self._assignment12, self._assignment21)
        self._assignment12 = result.assignment12
        self._assignment21 = result.assignment21
        return DeltaReport(
            version=state.version,
            applied_add=effect.applied_add,
            applied_remove=effect.applied_remove,
            dirty=len(dirty),
            passes=len(result.iterations),
            seconds=time.perf_counter() - started,
            converged=result.converged,
            pairs_touched=result.pairs_touched,
            store_pairs=len(state.store),
        )

    def _invalidate(
        self, effect: DeltaEffect, tolerance: float
    ) -> Tuple[Set[Resource], Set[Node], Set[Node], bool]:
        """Refresh derived structures; compute the initial dirty frontier.

        Returns ``(dirty instances, seed nodes left, seed nodes right,
        full-pass flag)`` — see the module docstring for the contract.
        """
        aligner = self.aligner
        store = self.state.store
        dirty: Set[Resource] = set(effect.touched_instances1)
        seed1: Set[Node] = set()
        seed2: Set[Node] = set()
        full = False
        # Class caches (delta-aware Eq. 17).  A subclass-edge change
        # invalidates the *other* direction's closure wholesale; an
        # rdf:type change invalidates the touched class's own row, the
        # touched instance's closed class set on the other side, and
        # the rows of classes whose members are matched to it.
        if effect.subclass_changed1:
            self._classes21.invalidate_closure()
        if effect.subclass_changed2:
            self._classes12.invalidate_closure()
        self._classes12.invalidate_classes(effect.touched_classes1)
        self._classes21.invalidate_classes(effect.touched_classes2)
        for instance in effect.type_changed_instances1:
            self._classes21.refresh_other_member(instance)
            self._classes21.invalidate_members(store.equals_of(instance))
        for instance in effect.type_changed_instances2:
            self._classes12.refresh_other_member(instance)
            self._classes12.invalidate_members(store.equals_of_right(instance))
        # Literal-index postings: update both sides first, then derive
        # which query literals saw their candidate sets move.
        for literal in effect.removed_literals1:
            aligner.literals1.discard(literal)
        for literal in effect.added_literals1:
            aligner.literals1.add(literal)
        for literal in effect.removed_literals2:
            aligner.literals2.discard(literal)
        for literal in effect.added_literals2:
            aligner.literals2.add(literal)
        for literal in (*effect.added_literals2, *effect.removed_literals2):
            # Right-side postings changed: left query literals sharing a
            # blocking key now see different candidates.
            for query in self._similar_literals(literal, aligner.literals1):
                seed1.add(query)
                dirty.update(self._instance_neighbours1(query))
        for literal in (*effect.added_literals1, *effect.removed_literals1):
            for query in self._similar_literals(literal, aligner.literals2):
                seed2.add(query)
        # Functionalities (Section 5.1 computes them upfront; a delta
        # is exactly the event that invalidates that assumption).
        fun1_changes = aligner.fun1.invalidate(effect.touched_relations1)
        for relation, (old, new) in fun1_changes.items():
            if abs(new - old) > tolerance:
                # fun1 enters Eq. 13 as fun⁻¹(r) = fun(r⁻): a changed
                # fun(u) re-prices the statements of u's inverse.
                dirty.update(aligner._instance_subjects(relation.inverse))
        fun2_changes = aligner.fun2.invalidate(effect.touched_relations2)
        if any(abs(new - old) > tolerance for old, new in fun2_changes.values()):
            # fun2 weighs candidate statements of arbitrary right
            # instances; its reach cannot be bounded by one hop.
            full = True
        # Right-side statement changes reach left scores through the
        # equivalents of their endpoints.
        for _relation, subject, obj in effect.statements2:
            for node in (subject, obj):
                if isinstance(node, Literal):
                    for query in self._similar_literals(node, aligner.literals1):
                        seed1.add(query)
                        dirty.update(self._instance_neighbours1(query))
                else:
                    for left in store.equals_of_right(node):
                        seed1.add(left)
                        dirty.update(self._instance_neighbours1(left))
        # Left-side statement changes reach the reverse relation matrix
        # through the equivalents of their endpoints.
        for _relation, subject, obj in effect.statements1:
            for node in (subject, obj):
                if isinstance(node, Literal):
                    for query in self._similar_literals(node, aligner.literals2):
                        seed2.add(query)
                else:
                    seed2.update(store.equals_of(node))
        return dirty, seed1, seed2, full

    # ------------------------------------------------------------------
    # read-side fan-out (query index + change subscriptions)
    # ------------------------------------------------------------------

    def add_change_listener(self, listener) -> None:
        """Register ``listener(events, version, wal_offset)`` — called
        after every applied batch with its net :class:`ChangeEvent` log
        (possibly empty).  Listener failures are logged, never poison
        the engine, and never fail the delta."""
        self.change_listeners.append(listener)

    @staticmethod
    def _events_for(
        side: str,
        changes: AssignmentDelta,
        old: Assignment,
        wal_offset: int,
        version: int,
    ) -> Iterable[ChangeEvent]:
        for entity, match in sorted(changes.items(), key=lambda item: item[0].name):
            previous = old.get(entity)
            yield ChangeEvent(
                side=side,
                entity=entity.name,
                counterpart=match[0].name if match is not None else None,
                probability=match[1] if match is not None else 0.0,
                previous_counterpart=previous[0].name if previous is not None else None,
                previous_probability=previous[1] if previous is not None else 0.0,
                wal_offset=wal_offset,
                version=version,
            )

    def _publish_changes(self) -> None:
        """Fold the stashed net change log into the query index and
        fan it out to the change listeners (no-op batches still advance
        the index/listener cursors so ETags and watch cursors track the
        applied offset)."""
        pending = self._pending_changes
        self._pending_changes = None
        version = self.state.version
        wal_offset = self.state.wal_offset
        events: List[ChangeEvent] = []
        if pending is not None:
            changes12, changes21, old12, old21 = pending
            # Digest maintenance rides the same O(changes) log: XOR the
            # old pair hash out, the new one in, checkpoint at the
            # offset the batch is durable under.
            self.digests.apply(changes12, old12, wal_offset)
            self.query_index.apply_changes(
                changes12, version=version, wal_offset=wal_offset
            )
            events.extend(
                self._events_for("left", changes12, old12, wal_offset, version)
            )
            events.extend(
                self._events_for("right", changes21, old21, wal_offset, version)
            )
        else:
            self.digests.advance(wal_offset)
            self.query_index.apply_changes({}, version=version, wal_offset=wal_offset)
        # Mirror onto the state so every snapshot carries the digest it
        # was taken at — the bootstrap integrity check on the far side.
        self.state.digest = self.digests.digest
        for listener in self.change_listeners:
            try:
                listener(events, version, wal_offset)
            except Exception as error:  # noqa: BLE001 - listener isolation
                _log.warning("change listener failed", error=repr(error))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def neighborhood(self, name: str) -> Dict[str, object]:
        """Every stored equivalence involving one entity, both roles.

        Serves ``GET /alignment?entity=X``: the store is already
        indexed per entity on both sides, so this is a dictionary
        lookup plus a sort of that entity's own candidates — never a
        table scan.
        """
        resource = Resource(name)
        with self.lock:
            self._check_consistent()
            as_left = sorted(
                self.state.store.equals_of(resource).items(),
                key=lambda item: (-item[1], item[0].name),
            )
            as_right = sorted(
                self.state.store.equals_of_right(resource).items(),
                key=lambda item: (-item[1], item[0].name),
            )
            best12 = self._assignment12.get(resource)
            best21 = self._assignment21.get(resource)
        payload: Dict[str, object] = {
            "entity": name,
            "as_left": [
                {"right": other.name, "probability": probability}
                for other, probability in as_left
            ],
            "as_right": [
                {"left": other.name, "probability": probability}
                for other, probability in as_right
            ],
        }
        if best12 is not None:
            payload["best_counterpart_as_left"] = {
                "right": best12[0].name,
                "probability": best12[1],
            }
        if best21 is not None:
            payload["best_counterpart_as_right"] = {
                "left": best21[0].name,
                "probability": best21[1],
            }
        return payload

    def pair(self, left_name: str, right_name: str) -> Dict[str, object]:
        """Probability and assignment context for one instance pair."""
        left = Resource(left_name)
        right = Resource(right_name)
        with self.lock:
            self._check_consistent()
            probability = self.state.store.get(left, right)
            best12 = self._assignment12.get(left)
            best21 = self._assignment21.get(right)
        payload: Dict[str, object] = {
            "left": left_name,
            "right": right_name,
            "probability": probability,
        }
        if best12:
            payload["best_counterpart_of_left"] = {
                "right": best12[0].name,
                "probability": best12[1],
            }
        if best21:
            payload["best_counterpart_of_right"] = {
                "left": best21[0].name,
                "probability": best21[1],
            }
        return payload

    def alignment(self, threshold: float = 0.0) -> List[Tuple[str, str, float]]:
        """Maximal-assignment pairs with probability ≥ ``threshold``."""
        with self.lock:
            self._check_consistent()
            pairs = [
                (left.name, counterpart.name, probability)
                for left, (counterpart, probability) in self._assignment12.items()
                if probability >= threshold
            ]
        pairs.sort(key=lambda row: (-row[2], row[0], row[1]))
        return pairs

    def digest_payload(
        self,
        offset: Optional[int] = None,
        lo: Optional[str] = None,
        hi: Optional[str] = None,
        verify: bool = False,
    ) -> Dict[str, object]:
        """The state digest surface behind ``GET /digest``.

        * no params — the current ``(wal_offset, digest)``;
        * ``offset=K`` — the digest as of WAL offset K, from the bounded
          checkpoint history (``KeyError`` once aged out → HTTP 409);
        * ``lo=``/``hi=`` — a live entity-range sub-digest, the probe
          ``repro doctor`` binary-searches divergence with;
        * ``verify`` — full recompute alongside the incremental digest,
          so one request both reads and self-checks.
        """
        with self.lock:
            self._check_consistent()
            wal_offset, digest = self.digests.snapshot()
            payload: Dict[str, object] = {
                "wal_offset": wal_offset,
                "digest": format_digest(digest),
                "version": self.state.version,
                "pairs": len(self._assignment12),
            }
            if offset is not None and offset != wal_offset:
                at = self.digests.at_offset(offset)
                if at is None:
                    raise KeyError(
                        f"offset {offset} not in digest history "
                        f"(current {wal_offset})"
                    )
                payload["at_offset"] = {"wal_offset": offset, "digest": format_digest(at)}
            if lo is not None or hi is not None:
                payload["range"] = range_digest(self._assignment12, lo, hi)
            if verify:
                recomputed = digest_assignment(self._assignment12)
                AUDIT_CHECKS.inc(kind="digest")
                if recomputed != digest:
                    AUDIT_MISMATCH.inc(kind="digest")
                    _log.error(
                        "incremental digest diverged from full recompute",
                        incremental=format_digest(digest),
                        recomputed=format_digest(recomputed),
                        wal_offset=wal_offset,
                    )
                payload["recomputed"] = format_digest(recomputed)
                payload["verified"] = recomputed == digest
            return payload

    def health(self) -> Dict[str, object]:
        with self.lock:
            state = self.state
            return {
                "status": "ok" if self.poisoned is None else "inconsistent",
                # The fail-stop reason, verbatim (None while healthy):
                # probes alert on it without scraping /stats.
                "degraded": self.poisoned,
                "version": state.version,
                "converged": state.converged,
                "left": state.ontology1.name,
                "right": state.ontology2.name,
                "facts_left": state.ontology1.num_facts,
                "facts_right": state.ontology2.num_facts,
                "instance_pairs": len(state.store),
                "matched_left": len(self._assignment12),
                "matched_right": len(self._assignment21),
            }

    def stats(self) -> Dict[str, object]:
        """Work/ingestion counters for monitoring (``GET /stats``).

        Deliberately *not* guarded by the fail-stop check: operators
        need the counters most while diagnosing a poisoned engine.
        """
        with self.lock:
            state = self.state
            return {
                "status": "ok" if self.poisoned is None else "inconsistent",
                "version": state.version,
                "wal_offset": state.wal_offset,
                "deltas_applied": self.deltas_applied,
                "pairs_touched_total": self.total_pairs_touched,
                "instance_pairs": len(state.store),
                "converged": state.converged,
                "digest": format_digest(self.digests.digest),
                "digest_offset": self.digests.wal_offset,
                # Span tree of the most recent cold/warm align — the
                # staged kernel build/score/merge profile, live.
                "last_align_profile": self.aligner.last_profile,
            }

    def snapshot(self, directory: Union[str, Path]) -> Path:
        """Persist the current state (see :mod:`repro.service.state`)."""
        with self.lock:
            self._check_consistent()
            return save_state(self.state, directory)
