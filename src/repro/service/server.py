"""HTTP front-end for the alignment service (stdlib only).

A :class:`ThreadingHTTPServer` over :class:`~repro.service.engine.AlignmentService`:

* ``GET  /healthz``                  — liveness + state summary, WAL
  applied/appended/durable offsets, and the engine's ``degraded``
  reason (non-null after a fail-stop), so probes need not parse
  ``/stats``
* ``GET  /metrics``                  — Prometheus text exposition of the
  process :data:`~repro.obs.metrics.REGISTRY` (request latencies, WAL
  offsets, span durations, …; see ROADMAP.md "Observability")
* ``GET  /stats``                    — ingestion/work counters (queue depth,
  WAL offsets, cumulative ``pairs_touched``).  Always carries an
  ``ingest`` sub-payload: without a stream stack it reports a zero
  queue and the engine's WAL offset, so routers and monitors read one
  shape whether or not ``--watch``/``--wal`` are on.  A replica server
  adds a ``replication`` sub-payload (applied/source offsets,
  ``lag_ms``).
* ``GET  /pair/<left>/<right>``      — one pair's probability (URL-quoted names)
* ``GET  /alignment``                — the maximal assignment, served from the
  engine's secondary :class:`~repro.service.query.QueryIndex`:
  ``?limit=N&cursor=…`` keyset pages, ``?top=K`` best-K, ``?entity=X``
  per-entity neighborhood, ``?threshold=T`` filter on all shapes,
  ``?format=tsv`` TSV; the unpaginated dump streams chunk-wise.  See
  ``docs/api.md`` for the full parameter/caching reference.
* ``GET  /watch?entity=X&epsilon=E`` — long-poll change notification
  (:mod:`repro.service.subs`); ``GET /subscriptions`` lists webhooks,
  ``POST /subscribe`` / ``POST /unsubscribe`` manage them (primary)

Every read endpoint sends a weak ``ETag`` derived from the applied WAL
offset and honours ``If-None-Match`` with a 304 (``docs/api.md``,
"Caching").
* ``GET  /wal?from=K&limit=N``       — log shipping for replicas without
  shared storage: NDJSON WAL records beyond offset K, capped at the
  durable offset, primary's head in ``X-Wal-Offset``; ``410`` when the
  suffix was compacted away (re-bootstrap from a snapshot)
* ``GET  /snapshot/latest``          — the newest snapshot file verbatim
  (replica bootstrap; pickle, trusted-cluster only)
* ``POST /delta``                    — apply a JSON delta batch (see
  :meth:`repro.service.delta.Delta.from_json`), warm-start the fixpoint,
  snapshot the new state if a state directory is configured.  With a
  streaming batcher attached the delta goes through the shared ingest
  queue instead (same queue as the ``--watch`` sources): it is WAL'd,
  coalesced with its neighbours, and the response carries its *batch's*
  report.  Optional ``?source=<id>&seq=<n>`` query parameters tag the
  delta for idempotent redelivery (a duplicate gets ``{"duplicate":
  true}``), and a full queue answers ``429`` with a ``Retry-After``
  header.
* ``POST /snapshot``                 — force a snapshot

A server built with a :class:`~repro.service.replica.ReplicaNode` is a
*read replica*: every ``POST`` answers ``403`` pointing writers at the
primary, and the engine is resolved through the node per request so a
re-bootstrap (after WAL compaction outran the replica) swaps it
atomically under the readers.

Concurrency: request handlers run on one thread each; the engine
serializes mutation and reads behind its own lock, so a long warm pass
never corrupts a concurrent query (it just waits).

``run_server`` adds the process plumbing for ``repro serve``: SIGTERM /
SIGINT stop the streaming sources, drain the ingest queue, take a final
snapshot and exit cleanly, which is what the CI service-smoke job
asserts.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, unquote, urlparse

from .delta import Delta
from .engine import AlignmentService
from .query import (
    CACHE_HITS,
    READ_ROWS,
    READS_TOTAL,
    CursorError,
    etag_matches,
    iter_row_chunks,
    make_cursor,
    parse_cursor,
    read_etag,
)
from .stream import QueueFullError, StreamStack
from .subs import SubscriptionManager
from ..io.alignment_io import render_assignment_rows
from ..obs import get_event_logger
from ..obs.http import ObservedHandlerMixin, route_label

_log = get_event_logger("repro.serve")

#: Default page size of ``GET /alignment?limit=…`` (cap in
#: :data:`repro.service.query.MAX_PAGE_LIMIT`).
DEFAULT_PAGE_LIMIT = 100

#: Route inventory of the primary/replica server.  ``tests/test_docs.py``
#: asserts every entry — and every literal the dispatch below matches —
#: is documented in ``docs/api.md``.
ROUTES = {
    "GET /healthz": "liveness, state summary, WAL applied/appended/durable offsets",
    "GET /metrics": "Prometheus text exposition of the process registry",
    "GET /stats": "ingestion/work counters (+replication lag on replicas)",
    "GET /wal": "NDJSON log shipping for replica catch-up",
    "GET /snapshot/latest": "newest snapshot file (replica bootstrap)",
    "GET /pair/<left>/<right>": "one instance pair's probability and context",
    "GET /alignment": "maximal assignment: paginated, top-k, per-entity, or streamed dump",
    "GET /watch": "long-poll for changes to one entity's alignments",
    "GET /provenance": "one delta's stage timeline, by ?trace= or ?offset=",
    "GET /digest": "offset-keyed state digest (+range sub-digests, +self-verify)",
    "GET /subscriptions": "registered webhook subscriptions",
    "POST /delta": "apply a JSON delta batch (primary only)",
    "POST /snapshot": "force a snapshot (primary only)",
    "POST /subscribe": "register a change webhook (primary only)",
    "POST /unsubscribe": "remove a webhook subscription (primary only)",
}


def _row_objects(rows) -> list:
    return [
        {"left": left, "right": right, "probability": probability}
        for left, right, probability in rows
    ]


def _alignment_json_chunks(keys, threshold: float, meta: dict):
    """Chunked JSON body of the unpaginated alignment dump — same
    object shape as before, produced without ever holding the full
    serialized document."""
    prefix = (
        json.dumps({"threshold": threshold, **meta})[:-1] + ', "pairs": ['
    ).encode("utf-8")
    yield prefix
    state = {"first": True}

    def render(rows) -> bytes:
        if not rows:
            return b""
        text = ", ".join(json.dumps(obj) for obj in _row_objects(rows))
        if state["first"]:
            state["first"] = False
            return text.encode("utf-8")
        return (", " + text).encode("utf-8")

    yield from iter_row_chunks(keys, render)
    yield b"]}"


def _should_snapshot(report, snapshot_every: int) -> bool:
    """The one snapshot policy, shared by the synchronous POST path
    and the streaming batcher's per-batch hook: snapshot versions that
    actually changed something, every ``snapshot_every``-th version."""
    return (
        snapshot_every > 0
        and report.applied_add + report.applied_remove > 0
        and report.version % snapshot_every == 0
    )


class AlignmentRequestHandler(ObservedHandlerMixin, BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`AlignmentService`."""

    server_version = "repro-serve/1.0"
    #: HTTP/1.1 for chunked transfer-encoding: the unpaginated
    #: alignment dump streams its body instead of materializing it.
    protocol_version = "HTTP/1.1"
    #: Upper bound on accepted delta payloads (64 MiB).
    MAX_BODY = 64 * 1024 * 1024
    #: Socket timeout per request (seconds).  Handler threads are a
    #: finite resource: a client that sends ``Content-Length: N`` and
    #: then stalls must not pin one forever on ``rfile.read``.
    timeout = 30.0

    def setup(self) -> None:
        # Per-server override (None disables the deadline entirely).
        self.timeout = getattr(self.server, "handler_timeout", self.timeout)
        super().setup()

    @property
    def service(self) -> AlignmentService:
        replica = self.server.replica  # type: ignore[attr-defined]
        if replica is not None:
            # Resolved per request: a re-bootstrap after a WAL gap
            # swaps the replica's engine, and readers must follow it.
            return replica.service
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # BaseHTTPRequestHandler's own logging (errors, send_error);
        # the structured access log comes from ObservedHandlerMixin.
        if self.server.verbose:  # type: ignore[attr-defined]
            _log.debug("http", detail=format % args)

    # -- helpers -------------------------------------------------------

    def _send_bytes(
        self,
        body: bytes,
        content_type: str,
        status: int = 200,
        headers: Optional[dict] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, payload: object, status: int = 200, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(body, "application/json", status, headers)

    def _send_text(self, text: str, status: int = 200) -> None:
        self._send_bytes(text.encode("utf-8"), "text/plain; charset=utf-8", status)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    # -- caching / streaming helpers -----------------------------------

    def _state_etag(self) -> str:
        """Read tag of the engine-locked read endpoints (healthz,
        stats, pair, entity neighborhood)."""
        state = self.service.state
        return read_etag(state.version, state.wal_offset)

    @staticmethod
    def _cache_headers(etag: str, extra: Optional[dict] = None) -> dict:
        # no-cache = "revalidate every time": with the WAL-offset ETag
        # a revalidation round-trip is the proof of currency the
        # bounded-staleness contract promises, and a 304 costs no body.
        headers = {"ETag": etag, "Cache-Control": "no-cache"}
        if extra:
            headers.update(extra)
        return headers

    def _maybe_not_modified(self, etag: str) -> bool:
        """Answer 304 when the client's ``If-None-Match`` is current."""
        if not etag_matches(self.headers.get("If-None-Match"), etag):
            return False
        CACHE_HITS.inc(route=route_label(self.path))
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        return True

    def _stream_chunks(self, chunks, content_type: str, headers: dict) -> None:
        """Write a chunked (HTTP/1.1 transfer-encoding) response body:
        the full payload never exists in memory."""
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for chunk in chunks:
            if not chunk:
                continue
            self.wfile.write(b"%x\r\n" % len(chunk))
            self.wfile.write(chunk)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _read_body(self, length: int) -> Optional[bytes]:
        """The declared request body, or ``None`` after answering the
        client.  A stalled sender hits the socket timeout → 408; a
        sender that closed early delivers a short read → 400.  Either
        way the connection is closed: the request framing is broken,
        so nothing further on this socket can be trusted."""
        try:
            body = self.rfile.read(length)
        except TimeoutError:
            self._error(408, "timed out reading request body")
            self.close_connection = True
            return None
        if len(body) < length:
            self._error(400, f"short body: got {len(body)} of {length} declared bytes")
            self.close_connection = True
            return None
        return body

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route_get()
        except RuntimeError as error:
            # The engine fail-stopped after a mid-delta failure.
            self._error(503, str(error))

    def _route_get(self) -> None:
        url = urlparse(self.path)
        parts = [unquote(part) for part in url.path.split("/") if part]
        replica = self.server.replica  # type: ignore[attr-defined]
        if parts == ["healthz"]:
            auditor = getattr(self.server, "auditor", None)
            audit_degraded = auditor.degraded() if auditor is not None else None
            etag = self._state_etag()
            # A latched audit mismatch must reach probes immediately:
            # the state ETag did not move, so the 304 path is skipped.
            if audit_degraded is None and self._maybe_not_modified(etag):
                return
            payload = self.service.health()
            payload["role"] = "replica" if replica is not None else "primary"
            if audit_degraded is not None and payload["status"] == "ok":
                payload["status"] = "degraded"
                payload["degraded"] = audit_degraded
            # Probes get the WAL position without parsing /stats: what
            # the engine applied, and (with a log attached) what the
            # primary appended / made durable.
            wal_info = {"applied_offset": self.service.state.wal_offset}
            stream = self.server.stream  # type: ignore[attr-defined]
            wal = stream.wal if stream is not None else None
            if wal is not None:
                wal_info["appended_offset"] = wal.offset
                wal_info["durable_offset"] = wal.durable_offset
            payload["wal"] = wal_info
            self._send_json(payload, headers=self._cache_headers(etag))
            return
        if parts == ["metrics"]:
            self.serve_metrics()
            return
        if parts == ["stats"]:
            etag = self._state_etag()
            if self._maybe_not_modified(etag):
                return
            payload = self.service.stats()
            payload["role"] = "replica" if replica is not None else "primary"
            stream = self.server.stream  # type: ignore[attr-defined]
            if stream is not None:
                payload["ingest"] = stream.stats()
            else:
                # No stream stack: report the same shape with a zero
                # queue and the engine's own WAL offset, so routers and
                # monitors never special-case plain servers.
                payload["ingest"] = {
                    "queue_depth": 0,
                    "streaming": False,
                    "wal_appended": payload["wal_offset"],
                }
            if replica is not None:
                payload["replication"] = replica.stats()
            auditor = getattr(self.server, "auditor", None)
            if auditor is not None:
                payload["audit"] = auditor.stats()
            self._send_json(payload, headers=self._cache_headers(etag))
            return
        if parts == ["digest"]:
            self._route_get_digest(url)
            return
        if parts == ["wal"]:
            self._route_get_wal(url)
            return
        if parts == ["snapshot", "latest"]:
            self._route_get_snapshot()
            return
        if len(parts) == 3 and parts[0] == "pair":
            etag = self._state_etag()
            if self._maybe_not_modified(etag):
                return
            READS_TOTAL.inc(kind="pair")
            self._send_json(
                self.service.pair(parts[1], parts[2]),
                headers=self._cache_headers(etag),
            )
            return
        if parts == ["alignment"]:
            self._route_get_alignment(url)
            return
        if parts == ["watch"]:
            self._route_get_watch(url)
            return
        if parts == ["provenance"]:
            self._route_get_provenance(url)
            return
        if parts == ["subscriptions"]:
            subs = self.server.subs  # type: ignore[attr-defined]
            self._send_json({"subscriptions": subs.subscriptions()})
            return
        self._error(404, f"no such resource: {url.path}")

    def _route_get_digest(self, url) -> None:
        """``GET /digest`` — the state digest `repro doctor` compares.

        ``?offset=K`` answers from the bounded checkpoint history (409
        once K aged out, so the doctor knows to re-quiesce);
        ``?lo=&hi=`` serves a live entity-range sub-digest for the
        divergence binary search; ``?verify=1`` recomputes the digest
        in full alongside the incremental one.
        """
        # keep_blank_values: `?lo=` (the empty string, sorting before
        # every name) is how the doctor asks for the unbounded range.
        query = parse_qs(url.query, keep_blank_values=True)
        offset: Optional[int] = None
        if "offset" in query:
            try:
                offset = int(query["offset"][0])
            except ValueError:
                self._error(400, f"invalid offset {query['offset'][0]!r}")
                return
        lo = query.get("lo", [None])[0]
        hi = query.get("hi", [None])[0]
        verify = query.get("verify", ["0"])[0] not in ("0", "", "false")
        etag = self._state_etag()
        if self._maybe_not_modified(etag):
            return
        try:
            payload = self.service.digest_payload(
                offset=offset, lo=lo, hi=hi, verify=verify
            )
        except KeyError as error:
            self._error(409, str(error.args[0]))
            return
        payload["role"] = (
            "replica"
            if self.server.replica is not None  # type: ignore[attr-defined]
            else "primary"
        )
        self._send_json(payload, headers=self._cache_headers(etag))

    def _route_get_alignment(self, url) -> None:
        """The alignment read surface: keyset pages, top-k, per-entity
        neighborhoods, and the streamed full dump — all served from the
        engine's secondary :class:`~repro.service.query.QueryIndex`
        (the neighborhood from the per-entity store indexes), never by
        sorting the full table per request."""
        query = parse_qs(url.query)
        try:
            threshold = float(query.get("threshold", ["0.0"])[0])
        except ValueError:
            self._error(400, "threshold must be a number")
            return
        entity = query.get("entity", [None])[0]
        if entity is not None:
            etag = self._state_etag()
            if self._maybe_not_modified(etag):
                return
            payload = self.service.neighborhood(entity)
            READS_TOTAL.inc(kind="entity")
            READ_ROWS.inc(
                len(payload["as_left"]) + len(payload["as_right"]), kind="entity"
            )
            self._send_json(payload, headers=self._cache_headers(etag))
            return
        # Index-served reads bypass the engine lock but must still
        # refuse on a fail-stopped engine (503 via do_GET).
        self.service._check_consistent()
        index = self.service.query_index
        version, wal_offset = index.read_tag()
        etag = read_etag(version, wal_offset)
        meta = {"version": version, "wal_offset": wal_offset}
        if "top" in query:
            try:
                count = int(query["top"][0])
            except ValueError:
                self._error(400, "top must be an integer")
                return
            if count <= 0:
                self._error(400, "top must be positive")
                return
            if self._maybe_not_modified(etag):
                return
            rows = index.top(count, threshold)
            READS_TOTAL.inc(kind="top")
            READ_ROWS.inc(len(rows), kind="top")
            self._send_json(
                {
                    "threshold": threshold,
                    "top": count,
                    "pairs": _row_objects(rows),
                    **meta,
                },
                headers=self._cache_headers(etag),
            )
            return
        if "cursor" in query or "limit" in query:
            try:
                limit = int(query.get("limit", [str(DEFAULT_PAGE_LIMIT)])[0])
            except ValueError:
                self._error(400, "limit must be an integer")
                return
            if limit <= 0:
                self._error(400, "limit must be positive")
                return
            after = None
            changed = False
            cursor_text = query.get("cursor", [None])[0]
            if cursor_text:
                try:
                    after, minted_tag = parse_cursor(cursor_text, threshold)
                except CursorError as error:
                    self._error(400, str(error))
                    return
                # The keyset stays valid across deltas; the flag tells
                # the client its walk now spans more than one state.
                changed = tuple(minted_tag) != (version, wal_offset)
            if self._maybe_not_modified(etag):
                return
            rows, next_key = index.page(threshold, after, limit)
            READS_TOTAL.inc(kind="page")
            READ_ROWS.inc(len(rows), kind="page")
            self._send_json(
                {
                    "threshold": threshold,
                    "limit": limit,
                    "pairs": _row_objects(rows),
                    "next_cursor": (
                        make_cursor(next_key, threshold, (version, wal_offset))
                        if next_key is not None
                        else None
                    ),
                    "changed_since_cursor": changed,
                    **meta,
                },
                headers=self._cache_headers(etag),
            )
            return
        # Unpaginated dump: a consistent key snapshot (tuple refs, not
        # rendered rows), streamed chunk-wise — the response body never
        # materializes in memory.
        if self._maybe_not_modified(etag):
            return
        keys = index.snapshot_keys(threshold)
        READS_TOTAL.inc(kind="dump")
        READ_ROWS.inc(len(keys), kind="dump")
        if query.get("format", ["json"])[0] == "tsv":
            # render_assignment_rows orders by (left, right): pre-sort
            # the keys so per-chunk rendering concatenates to the exact
            # bytes the single-shot renderer produced.
            tsv_keys = sorted(keys, key=lambda key: (key[1], key[2], -key[0]))
            self._stream_chunks(
                iter_row_chunks(
                    tsv_keys,
                    lambda rows: render_assignment_rows(rows).encode("utf-8"),
                ),
                "text/plain; charset=utf-8",
                self._cache_headers(etag),
            )
            return
        self._stream_chunks(
            _alignment_json_chunks(keys, threshold, meta),
            "application/json",
            self._cache_headers(etag),
        )

    def _route_get_watch(self, url) -> None:
        """Long-poll: park until the entity's alignment moves > ε."""
        query = parse_qs(url.query)
        entity = query.get("entity", [None])[0]
        if not entity:
            self._error(400, "watch requires an entity query parameter")
            return
        try:
            epsilon = float(query.get("epsilon", ["0.0"])[0])
            after = int(query["after"][0]) if "after" in query else None
            timeout = float(query.get("timeout", ["25"])[0])
        except ValueError:
            self._error(400, "epsilon/timeout must be numbers, after an integer")
            return
        timeout = max(0.0, min(timeout, 60.0))
        subs = self.server.subs  # type: ignore[attr-defined]
        notification = subs.wait(entity, epsilon=epsilon, after=after, timeout=timeout)
        if notification is None:
            # Timed out with no qualifying change; the version is the
            # cursor to resume from (pass it back as ``after=``).
            self._send_json(
                {"entity": entity, "timeout": True, "version": subs.current_version()}
            )
            return
        self._send_json(notification)

    def _route_get_provenance(self, url) -> None:
        """Debug endpoint: one delta's stage timeline, reconstructed
        from the engine's provenance ring (plus, for an offset the ring
        has already evicted, the stamps the WAL record itself carries).
        Served by the primary and by replicas (each reports its own
        view; ``repro trace`` merges them); the router forwards it to
        the primary via its wildcard ``GET *`` rule."""
        from .stream.wal import WalCorruptionError, WalGapError

        query = parse_qs(url.query)
        trace = query.get("trace", [None])[0]
        offset_raw = query.get("offset", [None])[0]
        if (trace is None) == (offset_raw is None):
            self._error(400, "pass exactly one of ?trace= or ?offset=")
            return
        offset = None
        if offset_raw is not None:
            try:
                offset = int(offset_raw)
            except ValueError:
                self._error(400, "offset must be an integer")
                return
        replica = self.server.replica  # type: ignore[attr-defined]
        role = "replica" if replica is not None else "primary"
        ring = getattr(self.service, "provenance", None)
        payload = None
        if ring is not None:
            payload = (
                ring.lookup_trace(trace)
                if trace is not None
                else ring.lookup_offset(offset)
            )
        if payload is None and offset is not None:
            # Ring miss (evicted, or a restart that never replayed this
            # far): fall back to the stamps the record itself carries —
            # a bounded read of one WAL suffix, not a full decode.
            stream = self.server.stream  # type: ignore[attr-defined]
            wal = stream.wal if stream is not None else None
            if wal is not None:
                try:
                    record = next(wal.replay(after_offset=offset - 1), None)
                except (WalGapError, WalCorruptionError):
                    record = None
                if record is not None and record.offset == offset:
                    prov = record.prov or {}
                    timeline = {
                        stage: prov[key]
                        for stage, key in (
                            ("ingest", "ingest_ts"),
                            ("enqueue", "enqueue_ts"),
                        )
                        if isinstance(prov.get(key), (int, float))
                    }
                    payload = {
                        "found": True,
                        "trace": prov.get("trace"),
                        "offset": record.offset,
                        "source": record.source,
                        "seq": record.seq,
                        "timeline": timeline,
                        "merged_traces": [],
                        "replayed": False,
                    }
        if payload is None:
            self._send_json(
                {"found": False, "role": role, "trace": trace, "offset": offset},
                status=404,
            )
            return
        payload["role"] = role
        self._send_json(payload)

    def _route_get_wal(self, url) -> None:
        """Log shipping: NDJSON WAL records for replica catch-up."""
        from .stream.wal import WalCorruptionError, WalGapError

        stream = self.server.stream  # type: ignore[attr-defined]
        wal = stream.wal if stream is not None else None
        if wal is None:
            self._error(404, "server runs without a write-ahead log")
            return
        query = parse_qs(url.query)
        try:
            after = int(query.get("from", ["0"])[0])
            limit = int(query.get("limit", ["1000"])[0])
        except ValueError:
            self._error(400, "from and limit must be integers")
            return
        limit = max(1, min(limit, 10_000))
        # Never ship past the durable offset: a record the primary has
        # not fsync'd could vanish in a crash, and a replica that
        # applied it would be ahead of the log it must converge to.
        durable = wal.durable_offset
        if after >= durable:
            # The caught-up steady state, O(1): no decode of the log
            # 20x/sec per replica just to ship an empty page.
            self._send_bytes(
                b"", "application/x-ndjson", headers={"X-Wal-Offset": str(durable)}
            )
            return
        lines = []
        ring = getattr(self.service, "provenance", None)
        try:
            for record in wal.replay(after_offset=after):
                if record.offset > durable or len(lines) >= limit:
                    break
                payload = record.to_json()
                if ring is not None and payload.get("prov") is not None:
                    # The on-disk record is written before its fsync and
                    # before its apply, so those stamps can only ride
                    # along at ship time, from the primary's ring.
                    payload["prov"].update(ring.offset_stamps(record.offset))
                lines.append(json.dumps(payload, sort_keys=True))
        except WalGapError as gap:
            self._send_json({"error": str(gap), "oldest": gap.oldest}, status=410)
            return
        except WalCorruptionError as error:
            # Never ship from a log we cannot decode — and never let
            # the exception tear the connection down without a status.
            self._error(500, f"write-ahead log is corrupt: {error}")
            return
        body = ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
        self._send_bytes(
            body, "application/x-ndjson", headers={"X-Wal-Offset": str(durable)}
        )

    def _route_get_snapshot(self) -> None:
        """Serve the newest snapshot file for replica bootstrap."""
        from .state import latest_version, snapshot_path

        state_dir = self.server.state_dir  # type: ignore[attr-defined]
        path = snapshot_path(state_dir) if state_dir is not None else None
        if path is None:
            self._error(404, "no snapshot available yet")
            return
        self._send_bytes(
            path.read_bytes(),
            "application/octet-stream",
            headers={"X-State-Version": str(latest_version(state_dir))},
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.server.replica is not None:  # type: ignore[attr-defined]
            # Read replica: its state is a function of the primary's
            # WAL; accepting a local write would fork it.
            self._error(403, "read-only replica; send writes to the primary")
            return
        try:
            self._route_post()
        except RuntimeError as error:
            self._error(503, str(error))

    def _route_post(self) -> None:
        url = urlparse(self.path)
        if url.path == "/snapshot":
            state_dir = self.server.state_dir  # type: ignore[attr-defined]
            if state_dir is None:
                self._error(409, "server runs without a state directory")
                return
            # Captured before the snapshot: the ingest thread may apply
            # further batches while we persist, and compaction must
            # never outrun what this snapshot actually covers.
            covered = self.service.state.wal_offset
            try:
                path = self.service.snapshot(state_dir)
            except OSError as error:
                self._error(500, f"snapshot failed: {error}")
                return
            reclaimed = maybe_compact_wal(
                self.service,
                self.server.stream,  # type: ignore[attr-defined]
                covered=covered,
            )
            self._send_json({"snapshot": str(path), "wal_bytes_compacted": reclaimed})
            return
        if url.path in ("/subscribe", "/unsubscribe"):
            self._route_post_subscription(url.path)
            return
        if url.path != "/delta":
            self._error(404, f"no such resource: {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > self.MAX_BODY:
            self._error(400, "delta body must be non-empty JSON")
            return
        query = parse_qs(url.query)
        source = query.get("source", ["http"])[0]
        try:
            seq = int(query["seq"][0]) if "seq" in query else None
        except ValueError:
            self._error(400, "seq must be an integer")
            return
        stream = self.server.stream  # type: ignore[attr-defined]
        raw = self._read_body(length)
        if raw is None:
            return
        try:
            payload = json.loads(raw.decode("utf-8"))
            delta = Delta.from_json(payload)
            if stream is not None:
                # Shared ingest queue: WAL'd, coalesced, admission-
                # controlled; the response is the composed batch's
                # report (None = idempotently dropped duplicate).  The
                # request id becomes the delta's provenance trace.
                report = stream.batcher.submit(
                    delta, source=source, seq=seq, wait=True, trace=self.request_id
                )
                if report is None:
                    self._send_json({"duplicate": True, "source": source, "seq": seq})
                    return
            else:
                # apply_delta validates the whole batch before
                # mutating, so a rejected delta leaves the live state
                # untouched.
                report = self.service.apply_delta(delta)
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, f"bad delta: {error}")
            return
        except QueueFullError as error:
            self._send_json(
                {"error": str(error)},
                status=429,
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
            return
        except RuntimeError as error:
            # Engine fail-stopped (this or an earlier delta died
            # mid-mutation): refuse rather than serve inconsistency.
            self._error(503, str(error))
            return
        except Exception as error:  # noqa: BLE001 - fail-stop surface
            # The engine just poisoned itself for this unexpected
            # failure; report it instead of killing the handler thread.
            self._error(500, f"delta failed mid-apply: {error!r}")
            return
        state_dir = self.server.state_dir  # type: ignore[attr-defined]
        snapshot_every = self.server.snapshot_every  # type: ignore[attr-defined]
        payload = report.to_json()
        if (
            # With a streaming batcher the snapshot policy runs once
            # per applied batch in the batcher's on_batch_applied hook;
            # snapshotting here would repeat it for every HTTP waiter
            # that shared the batch.
            stream is None
            and state_dir is not None
            and _should_snapshot(report, snapshot_every)
        ):
            try:
                self.service.snapshot(state_dir)
            except OSError as error:
                # The delta itself succeeded; tell the client both
                # facts instead of dropping the connection.
                payload["snapshot_error"] = str(error)
        self._send_json(payload)

    def _route_post_subscription(self, path: str) -> None:
        """Webhook registry: register / remove a change subscription."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > 1024 * 1024:
            self._error(400, "subscription body must be non-empty JSON")
            return
        raw = self._read_body(length)
        if raw is None:
            return
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, f"bad subscription body: {error}")
            return
        if not isinstance(payload, dict):
            self._error(400, "subscription body must be a JSON object")
            return
        subs = self.server.subs  # type: ignore[attr-defined]
        if path == "/unsubscribe":
            sub_id = payload.get("id")
            if not isinstance(sub_id, str):
                self._error(400, "unsubscribe requires a string id")
                return
            self._send_json({"id": sub_id, "removed": subs.unsubscribe(sub_id)})
            return
        url = payload.get("url")
        entity = payload.get("entity")
        epsilon = payload.get("epsilon", 0.0)
        if not isinstance(url, str) or not url.startswith(("http://", "https://")):
            self._error(400, "subscribe requires an http(s) url")
            return
        if not isinstance(entity, str) or not entity:
            self._error(400, "subscribe requires an entity")
            return
        if not isinstance(epsilon, (int, float)) or epsilon < 0:
            self._error(400, "epsilon must be a non-negative number")
            return
        self._send_json(subs.subscribe(url, entity, float(epsilon)), status=201)


def maybe_compact_wal(
    service: AlignmentService,
    stream: Optional[StreamStack],
    covered: Optional[int] = None,
) -> int:
    """Auto-compaction trigger: after a snapshot made ``wal_offset``
    durable, sealed WAL segments at or below it are dead weight.  Only
    fires on a segmented log (``--wal-segment-bytes``); returns the
    bytes reclaimed.

    ``covered`` must be an offset some *persisted* snapshot covers.
    Callers racing the ingest thread (``POST /snapshot``) capture it
    *before* snapshotting — the snapshot can only cover more, so the
    compaction stays conservative; reading ``state.wal_offset`` after
    the snapshot could see a newer offset no snapshot has persisted
    yet and delete segments a crash-restart still needs."""
    wal = stream.wal if stream is not None else None
    if wal is None or not wal.segment_bytes:
        return 0
    if covered is None:
        covered = service.state.wal_offset
    reclaimed, _deleted = wal.compact(covered)
    return reclaimed


def build_server(
    service: Optional[AlignmentService],
    host: str = "127.0.0.1",
    port: int = 0,
    state_dir: Optional[Union[str, Path]] = None,
    verbose: bool = False,
    snapshot_every: int = 1,
    stream: Optional[StreamStack] = None,
    replica=None,
    handler_timeout: Optional[float] = 30.0,
    subs: Optional[SubscriptionManager] = None,
    auditor=None,
) -> ThreadingHTTPServer:
    """Create (but do not start) the HTTP server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (the in-process tests do).
    ``handler_timeout`` bounds how long one handler thread waits on a
    client's socket (request line or body); a stalled upload gets a
    ``408`` instead of pinning the thread forever.  ``None`` disables
    the deadline (trusted-network deployments only).
    ``snapshot_every=N`` snapshots after every Nth version (a full
    state pickle is O(corpus), so large deployments raise this or set
    0 to snapshot only on shutdown / ``POST /snapshot`` — with a WAL
    attached, 0 is the natural choice: durability comes from the log).
    ``stream`` routes ``POST /delta`` through the streaming batcher's
    shared queue instead of applying synchronously (the caller starts
    and stops the stack); the ``snapshot_every`` policy then runs once
    per applied *batch* via the batcher's ``on_batch_applied`` hook —
    installed here unless the caller already set one — instead of in
    the request handler, where every HTTP waiter sharing a batch would
    repeat it.  Each policy snapshot also triggers WAL compaction
    (:func:`maybe_compact_wal`) on a segmented log.
    ``replica`` (a :class:`~repro.service.replica.ReplicaNode`) makes
    this a read-only replica server: the engine is resolved through
    the node per request and every ``POST`` answers 403.
    ``subs`` is the change-subscription manager behind ``GET /watch``
    and the webhook registry; when omitted, one is created on
    ``state_dir`` and wired to the engine here (callers that replay a
    WAL before serving — ``repro serve`` — construct and attach their
    own first, so replayed changes reach persisted subscribers).
    """
    if replica is not None and service is None:
        service = replica.service
    if subs is None:
        subs = SubscriptionManager(state_dir=state_dir)
        if replica is not None:
            # Re-attached across re-bootstraps: the node swaps engines.
            replica.attach_subscriptions(subs)
        elif service is not None:
            service.add_change_listener(subs.publish)
            subs.advance(service.state.version, service.state.wal_offset)
    # Provenance wiring: the WAL stamps "durable" and the subscription
    # manager stamps "notified" into the engine's ring (on a replica,
    # the node's ring — replica.service.provenance already points at
    # it).
    if service is not None:
        if stream is not None and stream.wal is not None:
            stream.wal.provenance = service.provenance
        if subs.provenance is None:
            subs.provenance = service.provenance
    server = ThreadingHTTPServer((host, port), AlignmentRequestHandler)
    server.subs = subs  # type: ignore[attr-defined]
    server.service = service  # type: ignore[attr-defined]
    server.state_dir = Path(state_dir) if state_dir is not None else None  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.snapshot_every = snapshot_every  # type: ignore[attr-defined]
    server.stream = stream  # type: ignore[attr-defined]
    server.replica = replica  # type: ignore[attr-defined]
    server.handler_timeout = handler_timeout  # type: ignore[attr-defined]
    # The background correctness auditor (see repro.service.audit):
    # /healthz consults it for the degraded flip, /stats embeds its
    # counters.  Owned and started by the caller; None = not auditing.
    server.auditor = auditor  # type: ignore[attr-defined]
    server.daemon_threads = True
    if (
        stream is not None
        and state_dir is not None
        and snapshot_every > 0
        and stream.batcher.on_batch_applied is None
    ):
        def _snapshot_policy(report, _every=snapshot_every):
            if _should_snapshot(report, _every):
                covered = service.state.wal_offset
                service.snapshot(state_dir)
                maybe_compact_wal(service, stream, covered=covered)

        stream.batcher.on_batch_applied = _snapshot_policy
    return server


def serve_until_signalled(server: ThreadingHTTPServer) -> None:
    """Serve until SIGTERM/SIGINT, then restore handlers and close.

    The one implementation of the signal dance every long-running
    ``repro`` process (``serve``, ``replica``, ``route``) shares:
    handlers are installed around ``serve_forever``, ``shutdown`` runs
    off the serving thread (it would deadlock on it), and the previous
    handlers are restored before the socket closes.
    """

    def _shutdown(signum, _frame) -> None:
        _log.info("received signal, shutting down", signal=signum)
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        server.server_close()


def run_server(
    service: AlignmentService,
    host: str,
    port: int,
    state_dir: Optional[Union[str, Path]] = None,
    verbose: bool = True,
    snapshot_every: int = 1,
    stream: Optional[StreamStack] = None,
    subs: Optional[SubscriptionManager] = None,
    auditor=None,
) -> int:
    """Serve until SIGTERM/SIGINT; snapshot on the way out.

    With a :class:`~repro.service.stream.StreamStack`, its sources and
    batcher run for the server's lifetime; shutdown stops the sources,
    drains the queue through the engine, and only then snapshots — so
    the final snapshot's WAL offset covers everything ingested.

    ``auditor`` (a :class:`~repro.service.audit.StateAuditor`) is
    started with the server and stopped with it; ``/healthz`` and
    ``/stats`` surface it via ``build_server``.

    Returns the process exit code (0 on a clean, signalled shutdown).
    """
    server = build_server(
        service,
        host,
        port,
        state_dir=state_dir,
        verbose=verbose,
        snapshot_every=snapshot_every,
        stream=stream,
        subs=subs,
        auditor=auditor,
    )
    actual_host, actual_port = server.server_address[:2]
    _log.info(
        "serving alignment",
        left=service.state.ontology1.name,
        right=service.state.ontology2.name,
        url=f"http://{actual_host}:{actual_port}",
        version=service.state.version,
    )

    if stream is not None:
        stream.start()
    if auditor is not None:
        auditor.start()
    try:
        serve_until_signalled(server)
    finally:
        if auditor is not None:
            auditor.stop()
        if stream is not None:
            # Sources stop, the queue drains through the engine, the
            # WAL closes — before the snapshot records the offset.
            stream.stop()
        server.subs.close()  # type: ignore[attr-defined]
        if state_dir is not None:
            path = service.snapshot(state_dir)
            _log.info("state saved", path=str(path))
            reclaimed = maybe_compact_wal(service, stream)
            if reclaimed:
                _log.info("compacted covered WAL segments", bytes=reclaimed)
    return 0
