"""Continuous correctness auditing of a live alignment engine.

:class:`StateAuditor` is a background thread that runs on the primary
and on every replica, turning the repo's central invariant — resident
state ≡ cold recompute within 1e-9 — into a runtime signal instead of
a test-suite-only promise:

* every interval it **samples K matched entities** and cold-recomputes
  their assignment rows against the resident equivalence store
  (:func:`repro.core.store.best_counterpart`, the same single
  definition the warm loop maintains incrementally), checking both the
  counterpart and the exact stored probability;
* every ``full_every``-th cycle it **fully recomputes the state
  digest** and compares it to the incrementally-maintained one
  (:class:`repro.obs.audit.DigestMaintainer`);
* any mismatch bumps ``repro_audit_mismatch_total``, latches a
  structured mismatch record — offending pair, WAL offset, and the
  provenance **trace ids of the deltas that last touched the pair**
  (PR 9's :class:`~repro.obs.provenance.ProvenanceRing`) — and flips
  the role's ``/healthz`` to degraded until an operator intervenes.

The auditor holds a ``get_service`` callable, not the engine itself,
so one auditor survives a replica's engine re-bootstraps the same way
the node-owned provenance ring does.  All checks run under the engine
lock (reads are cheap dictionary work; the full digest recompute is
O(matched) and rate-limited by ``full_every``).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.store import best_counterpart
from ..obs import get_event_logger
from ..obs.audit import (
    AUDIT_CHECKS,
    AUDIT_MISMATCH,
    SCORE_QUANTUM,
    digest_assignment,
    format_digest,
)

_log = get_event_logger("repro.audit")

#: Defaults for the CLI flags (``--audit-interval-ms``, ``--audit-sample``).
DEFAULT_INTERVAL_MS = 5000
DEFAULT_SAMPLE = 16
DEFAULT_FULL_EVERY = 10


class StateAuditor:
    """Background sampled cold-verification of one engine's state."""

    def __init__(
        self,
        get_service: Callable[[], Optional[object]],
        interval_ms: int = DEFAULT_INTERVAL_MS,
        sample: int = DEFAULT_SAMPLE,
        full_every: int = DEFAULT_FULL_EVERY,
        role: str = "primary",
        seed: Optional[int] = None,
    ) -> None:
        self._get_service = get_service
        self.interval_s = max(interval_ms, 1) / 1000.0
        self.sample = sample
        self.full_every = max(full_every, 1)
        self.role = role
        self._rng = random.Random(seed)
        self._cycle = 0
        self.checks = 0
        self.mismatches = 0
        self.last_audit_ts: Optional[float] = None
        #: Latched description of the first divergence seen — drives the
        #: degraded ``/healthz``.  Never cleared by the auditor itself:
        #: a state that diverged once cannot be trusted again without an
        #: operator (restart/re-bootstrap replaces the engine *and* the
        #: auditor latch is reset via :meth:`reset`).
        self.last_mismatch: Optional[Dict[str, object]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-auditor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def reset(self) -> None:
        """Clear the mismatch latch (a re-bootstrap replaced the state)."""
        self.last_mismatch = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.check_once()
            except Exception as error:  # noqa: BLE001 - never kill the loop
                _log.warning("audit cycle failed", error=repr(error))

    # ------------------------------------------------------------------
    # the checks
    # ------------------------------------------------------------------

    def _record_mismatch(
        self, service, kind: str, detail: Dict[str, object]
    ) -> None:
        self.mismatches += 1
        AUDIT_MISMATCH.inc(kind=kind)
        record: Dict[str, object] = {
            "kind": kind,
            "role": self.role,
            "wal_offset": service.digests.wal_offset,
            "ts": time.time(),
            **detail,
        }
        if self.last_mismatch is None:
            self.last_mismatch = record
        _log.error("state audit mismatch", **{
            key: value for key, value in record.items() if key != "ts"
        })

    def _trace_ids_for(self, service, entities) -> List[str]:
        """Provenance trace ids of the deltas that last touched
        ``entities`` — the PR 9 hook that turns "this pair is wrong"
        into "these writes made it wrong"."""
        traces: List[str] = []
        for offset in service.digests.offsets_touching(entities):
            found = service.provenance.lookup_offset(offset)
            if found is not None and found.get("trace"):
                traces.append(found["trace"])
        return traces

    def check_once(self) -> Optional[Dict[str, object]]:
        """Run one audit cycle; returns the first mismatch found (also
        latched), or ``None`` when the state checked out clean."""
        service = self._get_service()
        if service is None or getattr(service, "poisoned", None) is not None:
            return None
        self._cycle += 1
        first: Optional[Dict[str, object]] = None
        with service.lock:
            assignment = service._assignment12
            store = service.state.store
            matched = list(assignment)
            count = min(self.sample, len(matched))
            sampled = self._rng.sample(matched, count) if count else []
            for entity in sampled:
                self.checks += 1
                AUDIT_CHECKS.inc(kind="sample")
                maintained = assignment[entity]
                recomputed = best_counterpart(store.equals_of(entity))
                stored = store.get(entity, maintained[0])
                if recomputed is None or recomputed[0] != maintained[0]:
                    mismatch = {
                        "left": entity.name,
                        "right": maintained[0].name,
                        "maintained_probability": maintained[1],
                        "recomputed_counterpart": (
                            recomputed[0].name if recomputed else None
                        ),
                        "traces": self._trace_ids_for(service, [entity]),
                    }
                    self._record_mismatch(service, "sample", mismatch)
                    first = first or self.last_mismatch
                elif abs(stored - maintained[1]) > SCORE_QUANTUM:
                    mismatch = {
                        "left": entity.name,
                        "right": maintained[0].name,
                        "maintained_probability": maintained[1],
                        "stored_probability": stored,
                        "traces": self._trace_ids_for(service, [entity]),
                    }
                    self._record_mismatch(service, "sample", mismatch)
                    first = first or self.last_mismatch
            if self._cycle % self.full_every == 0:
                self.checks += 1
                AUDIT_CHECKS.inc(kind="digest")
                incremental = service.digests.digest
                recomputed_digest = digest_assignment(assignment)
                if recomputed_digest != incremental:
                    self._record_mismatch(
                        service,
                        "digest",
                        {
                            "incremental": format_digest(incremental),
                            "recomputed": format_digest(recomputed_digest),
                        },
                    )
                    first = first or self.last_mismatch
        self.last_audit_ts = time.time()
        return first

    # ------------------------------------------------------------------
    # surfaces
    # ------------------------------------------------------------------

    def degraded(self) -> Optional[str]:
        """The ``/healthz`` degradation reason, or ``None`` while clean."""
        if self.last_mismatch is None:
            return None
        mismatch = self.last_mismatch
        pair = ""
        if "left" in mismatch:
            pair = f" pair ({mismatch['left']}, {mismatch.get('right')})"
        return (
            f"audit mismatch ({mismatch['kind']}):{pair} "
            f"at wal offset {mismatch['wal_offset']}"
        )

    def stats(self) -> Dict[str, object]:
        """The auditor block of ``GET /stats`` (all three roles)."""
        service = self._get_service()
        payload: Dict[str, object] = {
            "last_audit_ts": self.last_audit_ts,
            "checks": self.checks,
            "mismatches": self.mismatches,
            "interval_ms": int(self.interval_s * 1000),
            "sample": self.sample,
        }
        if service is not None:
            offset, digest = service.digests.snapshot()
            payload["digest"] = format_digest(digest)
            payload["digest_offset"] = offset
        if self.last_mismatch is not None:
            payload["last_mismatch"] = self.last_mismatch
        return payload
