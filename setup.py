"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses PEP 517 editable builds, which require wheel;
offline boxes that lack it can fall back to `python setup.py develop`.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
