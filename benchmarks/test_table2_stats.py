"""Table 2 — ontology statistics (instances / classes / relations).

Paper values (full-scale dumps):

========  =========== ======== ==========
Ontology  #Instances  #Classes #Relations
========  =========== ======== ==========
yago       2,795,289   292,206     67
DBpedia    2,365,777       318   1,109
IMDb       4,842,323        15      24
========  =========== ======== ==========

Our laptop-scale reproduction keeps the *ratios* that matter: YAGO has
two orders of magnitude more classes than DBpedia and few relations;
IMDb is instance-heavy with a tiny schema.
"""

from __future__ import annotations

import pytest

from repro.datasets import yago_dbpedia_pair, yago_imdb_pair
from repro.rdf.stats import describe, statistics_table

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="table2")
def test_table2_statistics(benchmark):
    def build():
        kb = yago_dbpedia_pair()
        movies = yago_imdb_pair()
        return kb.ontology1, kb.ontology2, movies.ontology2

    yago, dbpedia, imdb = run_once(benchmark, build)
    save_artifact("table2_statistics", statistics_table([yago, dbpedia, imdb]))

    yago_stats = describe(yago)
    dbpedia_stats = describe(dbpedia)
    imdb_stats = describe(imdb)
    # YAGO: fine-grained taxonomy, few relations.
    assert yago_stats.num_classes > 8 * dbpedia_stats.num_classes
    assert yago_stats.num_relations < dbpedia_stats.num_relations
    # IMDb: instance-heavy, tiny schema.
    assert imdb_stats.num_classes < 20
    assert imdb_stats.num_relations < 30
    assert imdb_stats.num_instances > imdb_stats.num_classes * 50
