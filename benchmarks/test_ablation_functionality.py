"""Appendix A ablation — the choice of global-functionality definition.

The paper discusses five candidate definitions and picks the harmonic
mean (Eq. 2).  This bench runs the restaurant benchmark under each
implemented definition and reports alignment quality: the harmonic
mean should be at least as good as every alternative, and the
"treacherous" argument-ratio definition should not beat it.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.core.functionality import FunctionalityDefinition
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="ablation-functionality")
def test_ablation_functionality_definitions(benchmark):
    pair = restaurant_benchmark(seed=7)

    def sweep():
        results = {}
        for definition in FunctionalityDefinition:
            result = align(
                pair.ontology1,
                pair.ontology2,
                ParisConfig(functionality=definition),
            )
            results[definition] = evaluate_instances(
                result.assignment12, pair.gold
            )
        return results

    prfs = run_once(benchmark, sweep)
    rows = [
        [definition.value, f"{prf.precision:.0%}", f"{prf.recall:.0%}",
         f"{prf.f1:.0%}"]
        for definition, prf in prfs.items()
    ]
    save_artifact(
        "ablation_functionality",
        render_table(["Definition", "Prec", "Rec", "F"], rows),
    )

    harmonic = prfs[FunctionalityDefinition.HARMONIC]
    assert harmonic.f1 >= 0.85
    for definition, prf in prfs.items():
        # every definition still works on this benchmark ...
        assert prf.f1 >= 0.5, f"{definition.value} collapsed"
        # ... but none decisively beats the paper's choice
        assert prf.f1 <= harmonic.f1 + 0.05
