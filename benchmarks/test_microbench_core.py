"""Micro-benchmarks of the core substrate.

These time the hot paths of the Section 5.2 optimization — the indexed
statement traversal, functionality precomputation, a single instance
pass, and a single relation pass — so performance regressions in the
substrate show up even when end-to-end numbers drift.
"""

from __future__ import annotations

import pytest

from repro.core.equivalence import instance_equivalence_pass
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.store import EquivalenceStore
from repro.core.subrelations import subrelation_pass
from repro.core.view import EquivalenceView
from repro.datasets import yago_dbpedia_pair
from repro.literals import IdentitySimilarity


@pytest.fixture(scope="module")
def pair():
    return yago_dbpedia_pair(num_persons=600, num_works=300, seed=5)


@pytest.fixture(scope="module")
def view(pair):
    similarity = IdentitySimilarity()
    return EquivalenceView(
        EquivalenceStore(),
        LiteralIndex(pair.ontology2, similarity),
        LiteralIndex(pair.ontology1, similarity),
    )


@pytest.mark.benchmark(group="micro")
def test_bench_statement_traversal(benchmark, pair):
    onto = pair.ontology1

    def traverse():
        count = 0
        for instance in onto.instances:
            for _relation, _obj in onto.statements_about(instance):
                count += 1
        return count

    assert benchmark(traverse) > 0


@pytest.mark.benchmark(group="micro")
def test_bench_functionality_oracle(benchmark, pair):
    oracle = benchmark(lambda: FunctionalityOracle(pair.ontology1))
    assert oracle.fun(pair.ontology1.relations()[0]) >= 0


@pytest.mark.benchmark(group="micro")
def test_bench_literal_index_build(benchmark, pair):
    index = benchmark(lambda: LiteralIndex(pair.ontology2, IdentitySimilarity()))
    assert len(index) > 0


@pytest.mark.benchmark(group="micro")
def test_bench_instance_pass(benchmark, pair, view):
    fun1 = FunctionalityOracle(pair.ontology1)
    fun2 = FunctionalityOracle(pair.ontology2)
    rel12 = SubsumptionMatrix.bootstrap(0.1)
    rel21 = SubsumptionMatrix.bootstrap(0.1)

    store = benchmark.pedantic(
        lambda: instance_equivalence_pass(
            pair.ontology1, pair.ontology2, view, fun1, fun2, rel12, rel21,
            truncation_threshold=0.1,
        ),
        rounds=3,
        iterations=1,
    )
    assert len(store) > 0


@pytest.mark.benchmark(group="micro")
def test_bench_subrelation_pass(benchmark, pair, view):
    fun1 = FunctionalityOracle(pair.ontology1)
    fun2 = FunctionalityOracle(pair.ontology2)
    store = instance_equivalence_pass(
        pair.ontology1, pair.ontology2, view, fun1, fun2,
        SubsumptionMatrix.bootstrap(0.1), SubsumptionMatrix.bootstrap(0.1),
        truncation_threshold=0.1,
    )
    similarity = IdentitySimilarity()
    filled_view = EquivalenceView(
        store,
        LiteralIndex(pair.ontology2, similarity),
        LiteralIndex(pair.ontology1, similarity),
    )
    matrix = benchmark.pedantic(
        lambda: subrelation_pass(
            pair.ontology1, pair.ontology2, filled_view,
            truncation_threshold=0.1, max_pairs=10_000, bootstrap_theta=0.1,
        ),
        rounds=3,
        iterations=1,
    )
    assert len(matrix) > 0
