"""Figure 2 — number of yago classes with an assignment above threshold.

The paper's curve falls from ~20×10⁴ classes at threshold 0.1 to
~10×10⁴ at 0.9 — i.e. even at high confidence a large share of classes
keep at least one DBpedia counterpart.  We assert the same shape:
monotonically non-increasing counts, with a substantial fraction (at
least a third of the threshold-0.1 count) surviving at 0.9.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.datasets.kb import KB_EXCLUDED_CLASSES
from repro.evaluation import class_threshold_sweep, figure2_chart, render_threshold_sweep

from helpers import run_once, save_artifact

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@pytest.mark.benchmark(group="figure2")
def test_figure2_class_counts_vs_threshold(benchmark):
    pair = yago_dbpedia_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = align(pair.ontology1, pair.ontology2, config)
    points = run_once(
        benchmark,
        lambda: class_threshold_sweep(
            result.classes12,
            pair.gold,
            thresholds=THRESHOLDS,
            exclude=KB_EXCLUDED_CLASSES,
        ),
    )
    save_artifact(
        "figure2_class_counts", render_threshold_sweep(points) + "\n\n" + figure2_chart(points)
    )

    counts = [p.num_classes for p in points]
    # non-increasing, strictly falling overall
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] < counts[0]
    # a substantial share of classes survives at high confidence
    assert counts[-1] >= counts[0] / 10
    assert counts[0] > 50  # the fine-grained taxonomy is really exercised
