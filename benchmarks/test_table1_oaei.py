"""Table 1 — OAEI person & restaurant benchmarks, PARIS vs ObjectCoref.

Paper values:

======== =========== ===== ===== ===== ===== ====== =====
Dataset  System      GoldI P/R/F inst  GoldC P/R/F  GoldR
======== =========== ===== ===== ===== ===== ====== =====
Person   paris        500  100/100/100   4  100/100/100   20  100/100/100
Person   ObjCoref     500  100/100/100
Rest.    paris        112   95/88/91     4  100/100/100   12  100/66/88
Rest.    ObjCoref     112   -/-/90
======== =========== ===== ===== ===== ===== ====== =====

Expected reproduction: person ≈ perfect across the board; restaurant
instances in the low-to-mid 90s F, classes and relations clean; PARIS
F ≥ the ObjectCoref reported 90 % without any training data.
"""

from __future__ import annotations

import pytest

from repro import align
from repro.baselines import OBJECTCOREF_RESULTS
from repro.datasets import person_benchmark, restaurant_benchmark
from repro.evaluation import (
    Table1Row,
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
    render_table1,
)

from helpers import run_once, save_artifact


def _paris_row(pair, result, dataset: str) -> Table1Row:
    return Table1Row(
        dataset=dataset,
        system="paris",
        gold_instances=pair.gold.num_instances,
        instances=evaluate_instances(result.assignment12, pair.gold),
        gold_classes=4,
        classes=evaluate_classes(result.class_pairs(threshold=0.4), pair.gold),
        gold_relations=pair.gold.num_relations,
        relations=evaluate_relations(result.relation_pairs(), pair.gold),
    )


def _objectcoref_row(pair, dataset: str, key: str) -> Table1Row:
    reported = OBJECTCOREF_RESULTS[key]
    return Table1Row(
        dataset=dataset,
        system="ObjCoref",
        gold_instances=pair.gold.num_instances,
        instances=None,
        gold_classes=4,
        classes=None,
        gold_relations=pair.gold.num_relations,
        relations=None,
        reported=(reported.precision, reported.recall, reported.f1),
    )


@pytest.mark.benchmark(group="table1")
def test_table1_person(benchmark):
    pair = person_benchmark(num_persons=500, seed=42)
    result = run_once(benchmark, lambda: align(pair.ontology1, pair.ontology2))
    rows = [_paris_row(pair, result, "Person"), _objectcoref_row(pair, "Person", "person")]
    save_artifact("table1_person", render_table1(rows))
    instances = evaluate_instances(result.assignment12, pair.gold)
    assert instances.precision >= 0.99
    assert instances.recall >= 0.99
    relations = evaluate_relations(result.relation_pairs(), pair.gold)
    assert relations.precision == 1.0 and relations.recall == 1.0
    classes = evaluate_classes(result.class_pairs(0.4), pair.gold)
    assert classes.precision == 1.0
    assert result.num_iterations <= 4


@pytest.mark.benchmark(group="table1")
def test_table1_restaurant(benchmark):
    pair = restaurant_benchmark(seed=7)
    result = run_once(benchmark, lambda: align(pair.ontology1, pair.ontology2))
    rows = [_paris_row(pair, result, "Rest."), _objectcoref_row(pair, "Rest.", "restaurant")]
    save_artifact("table1_restaurant", render_table1(rows))
    instances = evaluate_instances(result.assignment12, pair.gold)
    # paper: P 95 / R 88 / F 91 — pin the neighbourhood and the ordering
    assert 0.85 <= instances.precision <= 1.0
    assert 0.80 <= instances.recall <= 0.97
    assert instances.f1 >= OBJECTCOREF_RESULTS["restaurant"].f1 - 0.02
    relations = evaluate_relations(result.relation_pairs(), pair.gold)
    assert relations.precision == 1.0
    classes = evaluate_classes(result.class_pairs(0.4), pair.gold)
    assert classes.precision == 1.0
