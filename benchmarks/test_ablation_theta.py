"""Section 6.3 ablation — θ-invariance.

"To measure the influence of θ on our algorithm, we ran paris with
θ = 0.001, 0.01, 0.05, 0.1, 0.2 on the restaurant dataset.  [...] the
final probability scores are the same, independently of θ."

We assert that the final maximal assignments (the quantity the paper
evaluates) are essentially identical across the θ sweep.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table

from helpers import run_once, save_artifact

THETAS = (0.01, 0.05, 0.1, 0.2)


@pytest.mark.benchmark(group="ablation-theta")
def test_ablation_theta_invariance(benchmark):
    pair = restaurant_benchmark(seed=7)

    def sweep():
        results = {}
        for theta in THETAS:
            result = align(
                pair.ontology1, pair.ontology2, ParisConfig(theta=theta)
            )
            results[theta] = result
        return results

    results = run_once(benchmark, sweep)

    rows = []
    assignments = {}
    for theta, result in results.items():
        prf = evaluate_instances(result.assignment12, pair.gold)
        assignments[theta] = {
            (l.name, r.name) for l, (r, _p) in result.assignment12.items()
        }
        rows.append(
            [f"{theta:g}", f"{prf.precision:.0%}", f"{prf.recall:.0%}",
             f"{prf.f1:.0%}", len(assignments[theta])]
        )
    save_artifact(
        "ablation_theta",
        render_table(["theta", "Prec", "Rec", "F", "#assignments"], rows),
    )

    reference = assignments[0.1]
    for theta, produced in assignments.items():
        overlap = len(reference & produced) / max(1, len(reference | produced))
        assert overlap >= 0.95, f"theta={theta} diverged (overlap {overlap:.2f})"
