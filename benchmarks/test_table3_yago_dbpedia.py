"""Table 3 — YAGO vs DBpedia alignment over iterations 1–4.

Paper values (instances):

====  ======  ====  ====  ====
iter  change  Prec  Rec   F
====  ======  ====  ====  ====
1     —       86 %  69 %  77 %
2     12.4 %  89 %  73 %  80 %
3     1.1 %   90 %  73 %  81 %
4     0.3 %   90 %  73 %  81 %
====  ======  ====  ====  ====

plus relation counts/precision per iteration (yago⊆DBp 30→33 at
93→100 %, DBp⊆yago 134→151 at 90→92 %) and, after the last iteration,
class alignments (137 k yago classes at 94 %, 149 DBpedia classes at
84 %, threshold 0.4).

Expected reproduction: precision ~85–95 % throughout, recall improving
over iterations then plateauing, change rate collapsing, relation
precision ≥ 90 % both ways, class precision at 0.4 ≥ 90 % with the
yago-side count far larger than the DBpedia-side count.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.evaluation import (
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
    render_iteration_table,
)

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="table3")
def test_table3_yago_dbpedia_iterations(benchmark):
    pair = yago_dbpedia_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = run_once(
        benchmark, lambda: align(pair.ontology1, pair.ontology2, config)
    )
    save_artifact(
        "table3_yago_dbpedia",
        render_iteration_table(result, pair.gold, class_threshold=0.4),
    )

    assert result.num_iterations == 4
    prfs = [
        evaluate_instances(snapshot.assignment12, pair.gold)
        for snapshot in result.iterations
    ]
    # precision band and recall improvement, as in the paper
    for prf in prfs:
        assert prf.precision >= 0.80
    assert prfs[-1].recall > prfs[0].recall
    assert prfs[-1].f1 >= 0.80
    # change rate decreases towards convergence
    changes = [s.change_fraction for s in result.iterations[1:]]
    assert changes[-1] < changes[0]
    # relations: high precision in both directions
    for reverse in (False, True):
        relations = evaluate_relations(
            result.relation_pairs(reverse=reverse), pair.gold, reverse=reverse
        )
        assert relations.precision >= 0.85
    # classes at threshold 0.4: many yago classes, far fewer dbp classes
    classes12 = result.class_pairs(0.4)
    classes21 = result.class_pairs(0.4, reverse=True)
    assert len(classes12) > 3 * len(classes21)
    assert evaluate_classes(classes12, pair.gold).precision >= 0.90
    assert evaluate_classes(classes21, pair.gold, reverse=True).precision >= 0.70
