"""Micro-benchmark: ingest throughput through the coalescing batcher.

The streaming subsystem's headline number: on the 1 %-delta family
fixture, a burst of small deltas through the WAL + coalescing batcher
(``repro.service.stream``) must sustain **≥ 3× the deltas/second** of
the one-synchronous-POST-per-delta path, *at equal per-delta
durability*:

* the status-quo path (what ``repro serve`` without streaming does,
  ``snapshot_every=1``) pays one warm convergence **and one O(corpus)
  state snapshot** per delta — the snapshot being its only durability
  between restarts;
* the streaming path pays one O(delta) fsync'd WAL append per delta —
  the same crash-durability point — and one warm fixpoint over the
  whole coalesced burst.

Both paths run on the same resident service against the same uniform
family corpus, alternating over :data:`ROUNDS` bursts with the *best*
round counting for each path (as in the incremental bench: a single
scheduler stall on a noisy machine must not decide the ratio).  The
wall-clock throughputs are machine-dependent: the in-test assertion is
skipped under ``BENCH_RELAX_WALLCLOCK=1`` (the CI bench-track mode, as
in the parallel bench) and the JSON ``floor`` keeps gating the
best-of-rounds value, which the ~7× measured margin over the 3×
requirement protects.  The *work* metrics — batches flushed, engine
batches, warm passes, pairs touched — are deterministic and
baseline-gated by ``benchmarks/compare_baseline.py``.  Score equality
of the final state against a cold realign is asserted here too, so
the throughput cannot be bought with wrong answers.
"""

from __future__ import annotations

import os
import time

from helpers import save_artifact, save_bench_json
from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.service import AlignmentService, Delta
from repro.service.stream import DeltaBatcher, WriteAheadLog

#: Families in the base corpus (3 instances, 8 facts each).
BASE_FAMILIES = 200

#: Families per delta — 1 % of the base corpus.
DELTA_FAMILIES = BASE_FAMILIES // 100

#: Deltas per burst (each path ingests one burst per round).
BURST = 8

#: Alternating rounds per path; the best round counts.
ROUNDS = 3

#: Required throughput advantage of the batcher over one-POST-per-delta.
MIN_SPEEDUP = 3.0

#: Required score equality against a cold realign of the final corpus.
SCORE_TOLERANCE = 1e-9


def burst_deltas(first_family: int) -> list:
    deltas = []
    for step in range(BURST):
        add1, add2 = family_addition(first_family + step * DELTA_FAMILIES, DELTA_FAMILIES)
        deltas.append(Delta(add1=tuple(add1), add2=tuple(add2)))
    return deltas


def test_batcher_throughput_vs_one_post_per_delta(tmp_path):
    left, right = family_pair(BASE_FAMILIES)
    service = AlignmentService.cold_start(left, right, ParisConfig())
    state_dir = tmp_path / "state"
    wal = WriteAheadLog(tmp_path / "wal.ndjson")

    next_family = BASE_FAMILIES
    sequence = 0
    passes_single = 0
    pairs_before = service.total_pairs_touched
    single_rounds = []
    batched_rounds = []
    batches = 0
    for _round in range(ROUNDS):
        # The status quo: one synchronous apply per delta plus the
        # per-delta snapshot that is its only durability (the default
        # POST /delta deployment, snapshot_every=1).
        singles = burst_deltas(next_family)
        next_family += BURST * DELTA_FAMILIES
        started = time.perf_counter()
        for delta in singles:
            report = service.apply_delta(delta)
            passes_single += report.passes
            service.snapshot(state_dir)
        single_rounds.append(time.perf_counter() - started)

        # The same burst shape through WAL + coalescing batcher: one
        # fsync'd append per delta, one warm fixpoint per burst.
        batched = burst_deltas(next_family)
        next_family += BURST * DELTA_FAMILIES
        batcher = DeltaBatcher(service, wal=wal, max_batch=BURST, max_lag=0.25)
        started = time.perf_counter()
        for delta in batched:
            sequence += 1
            batcher.submit(delta, source="bench", seq=sequence)
        batcher.start()
        assert batcher.flush(timeout=300)
        batched_rounds.append(time.perf_counter() - started)
        batches += batcher.stats()["batches"]
        batcher.close()
    wal.close()

    single_seconds = min(single_rounds)
    batched_seconds = min(batched_rounds)
    single_rate = BURST / single_seconds
    batched_rate = BURST / batched_seconds
    speedup = batched_rate / single_rate
    pairs_touched = service.total_pairs_touched - pairs_before

    # Correctness first: the mixed stream must land on the cold fixpoint.
    final_families = next_family
    reference = align(*family_pair(final_families), ParisConfig(score_stationarity=True))
    difference = service.state.store.max_difference(reference.instances)

    rows = [
        f"base corpus:        {BASE_FAMILIES} families x 2 sides "
        f"({8 * BASE_FAMILIES * 2} triples)",
        f"burst:              {BURST} deltas x {DELTA_FAMILIES} families "
        f"({8 * DELTA_FAMILIES * 2} triples each, "
        f"{DELTA_FAMILIES / BASE_FAMILIES:.1%} of corpus), "
        f"{ROUNDS} rounds per path",
        f"one-POST-per-delta: {single_seconds:8.3f} s best of "
        f"{[f'{seconds:.3f}' for seconds in single_rounds]} "
        f"({single_rate:6.1f} deltas/s, snapshot per delta)",
        f"batcher (WAL'd):    {batched_seconds:8.3f} s best of "
        f"{[f'{seconds:.3f}' for seconds in batched_rounds]} "
        f"({batched_rate:6.1f} deltas/s, fsync per delta)",
        f"throughput gain:    {speedup:8.1f} x ({batches} batches for "
        f"{ROUNDS * BURST} batched deltas)",
        f"max score diff:     {difference:.3e} (tolerance {SCORE_TOLERANCE:.0e})",
    ]
    save_artifact("microbench_stream", "\n".join(rows))
    save_bench_json(
        "stream",
        {
            # Deterministic metrics: gated against the committed
            # baseline by benchmarks/compare_baseline.py (CI bench-track).
            "batches": {"value": batches, "higher_is_better": False},
            "pairs_touched_batched": {
                "value": pairs_touched,
                "higher_is_better": False,
            },
            "warm_passes_single": {
                "value": passes_single,
                "higher_is_better": False,
            },
            # Wall-clock metrics: machine-dependent; the acceptance
            # floor on the (best-of-rounds) speedup is gated regardless
            # of the baseline.
            "speedup": {
                "value": speedup,
                "higher_is_better": True,
                "informational": True,
                "floor": MIN_SPEEDUP,
            },
            "single_deltas_per_sec": {
                "value": single_rate,
                "higher_is_better": True,
                "informational": True,
            },
            "batched_deltas_per_sec": {
                "value": batched_rate,
                "higher_is_better": True,
                "informational": True,
            },
        },
    )

    assert difference <= SCORE_TOLERANCE, (
        f"batched ingest diverged from the cold realign by {difference:.3e}"
    )
    assert batches == ROUNDS, (
        f"each burst should coalesce into one batch: {batches} batches "
        f"for {ROUNDS} bursts"
    )
    if os.environ.get("BENCH_RELAX_WALLCLOCK") == "1":
        # bench-track mode: record the curve + JSON artifact, but skip
        # the wall-clock assertion — shared CI runners stall
        # unpredictably (same policy as the parallel bench); the JSON
        # floor still gates the best-of-rounds value.
        return
    assert speedup >= MIN_SPEEDUP, (
        f"expected the batcher to ingest >= {MIN_SPEEDUP}x faster than "
        f"one-POST-per-delta, got {speedup:.1f}x "
        f"({single_rate:.1f} vs {batched_rate:.1f} deltas/s)"
    )


def test_stream_smoke(tmp_path):
    """CI smoke: tiny corpus, equality through the batcher only."""
    left, right = family_pair(12)
    service = AlignmentService.cold_start(left, right, ParisConfig())
    batcher = DeltaBatcher(
        service, wal=WriteAheadLog(tmp_path / "wal.ndjson"), max_batch=4, max_lag=0.2
    )
    for step in range(3):
        add1, add2 = family_addition(12 + step, 1)
        batcher.submit(Delta(add1=tuple(add1), add2=tuple(add2)), source="s", seq=step + 1)
    batcher.start()
    assert batcher.flush(timeout=120)
    batcher.close()
    reference = align(*family_pair(15), ParisConfig(score_stationarity=True))
    assert service.state.store.max_difference(reference.instances) <= SCORE_TOLERANCE
