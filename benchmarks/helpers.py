"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
rows (visible with ``pytest benchmarks/ -s``) and also writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite stable
artifacts.
"""

from __future__ import annotations

from pathlib import Path

#: Directory where rendered tables/figures are persisted.
RESULTS_DIR = Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Print a rendered table and persist it under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Alignment runs take seconds; calibrated multi-round timing would
    multiply bench wall-clock for no extra information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
