"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
rows (visible with ``pytest benchmarks/ -s``) and also writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite stable
artifacts.

The microbenches additionally emit machine-readable ``BENCH_<name>.json``
files.  The committed copies under ``benchmarks/results/`` are the
regression baselines the CI ``bench-track`` job compares fresh runs
against (see :mod:`benchmarks.compare_baseline`); set ``BENCH_JSON_DIR``
to redirect a fresh run's JSON somewhere else so it does not overwrite
the baseline it is being compared to.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Directory where rendered tables/figures are persisted.
RESULTS_DIR = Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Print a rendered table and persist it under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def save_bench_json(name: str, metrics: dict) -> Path:
    """Persist one bench's metrics as ``BENCH_<name>.json``.

    ``metrics`` maps metric name to a dict with ``value`` plus optional
    ``higher_is_better`` (default ``True``), ``informational`` (skip
    the regression gate — for wall-clock numbers that depend on the
    machine) and ``floor`` (absolute lower bound, gated regardless of
    the baseline).  Deterministic, machine-independent metrics are the
    ones worth gating.
    """
    directory = Path(os.environ.get("BENCH_JSON_DIR") or RESULTS_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {"bench": name, "metrics": metrics}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Alignment runs take seconds; calibrated multi-round timing would
    multiply bench wall-clock for no extra information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
