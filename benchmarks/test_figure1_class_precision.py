"""Figure 1 — precision of class alignment (yago ⊆ DBpedia) vs threshold.

The paper's curve rises from ~0.75 at threshold 0.1 to ~0.95 at 0.9:
weak inclusions (selection-bias artifacts like "12 % of people
convicted of murder in Utah were soccer players") get sorted out as the
score threshold increases.  19 high-level classes are excluded from
sampling, which we mirror with ``KB_EXCLUDED_CLASSES``.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.datasets.kb import KB_EXCLUDED_CLASSES
from repro.evaluation import class_threshold_sweep, figure1_chart, render_threshold_sweep

from helpers import run_once, save_artifact

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@pytest.mark.benchmark(group="figure1")
def test_figure1_class_precision_vs_threshold(benchmark):
    pair = yago_dbpedia_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = align(pair.ontology1, pair.ontology2, config)
    points = run_once(
        benchmark,
        lambda: class_threshold_sweep(
            result.classes12,
            pair.gold,
            thresholds=THRESHOLDS,
            exclude=KB_EXCLUDED_CLASSES,
        ),
    )
    save_artifact(
        "figure1_class_precision", render_threshold_sweep(points) + "\n\n" + figure1_chart(points)
    )

    # the curve's shape: rising precision, high at the right end
    assert points[-1].precision >= points[0].precision
    assert points[-1].precision >= 0.9
    assert points[0].precision >= 0.6
    # and broadly monotone: no point far below its predecessor
    for earlier, later in zip(points, points[1:]):
        assert later.precision >= earlier.precision - 0.05
