"""Micro-benchmark: delta-update latency vs. full realignment.

The headline numbers of the incremental alignment service: on the
disconnected family fixture (:mod:`repro.datasets.incremental`), a
1 %-of-triples delta absorbed through the warm-start fixpoint must be

* **≥ 5× faster** than a cold realignment of the updated corpus,
* **≥ 5× fewer pairs touched** than the store holds — the
  frontier-proportional bookkeeping guarantee of the copy-on-write
  overlay path (store writes + restricted-view updates, counted by
  :class:`repro.core.store.OverlayStore`), and
* score-equal to the cold run within 1e-9.

All three are asserted here (the equality also independently in
``tests/test_warm_start.py``); the measured curve is recorded under
``benchmarks/results/microbench_incremental.txt`` and the deterministic
metrics in ``BENCH_incremental.json`` for the CI regression gate.

The speedup and pairs-touched assertions are algorithmic (work skipped,
not cores used), so they hold on any machine; the fixture is sized to
keep the bench inside tier-1 runtime.
"""

from __future__ import annotations

import time

from helpers import save_artifact, save_bench_json
from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.service import AlignmentService, Delta

#: Families in the base corpus (3 instances, 8 facts each).
BASE_FAMILIES = 400

#: Families per delta — 1 % of the base corpus.
DELTA_FAMILIES = BASE_FAMILIES // 100

#: Successive deltas measured; the *minimum* warm latency counts, so a
#: single scheduler stall on a noisy machine cannot fail the ratio.
WARM_ROUNDS = 3

#: Required advantage of the warm path over a cold realign.
MIN_SPEEDUP = 5.0

#: Required advantage of pairs touched per delta over the store size.
MIN_PAIRS_RATIO = 5.0

#: Required score equality between warm state and cold realign.
SCORE_TOLERANCE = 1e-9


def test_incremental_delta_vs_cold_realign():
    left, right = family_pair(BASE_FAMILIES)
    started = time.perf_counter()
    service = AlignmentService.cold_start(left, right, ParisConfig())
    cold_start_seconds = time.perf_counter() - started
    assert service.state.converged

    warm_rounds = []
    pairs_touched_rounds = []
    last_report = None
    for round_index in range(WARM_ROUNDS):
        add_left, add_right = family_addition(
            BASE_FAMILIES + round_index * DELTA_FAMILIES, DELTA_FAMILIES
        )
        delta = Delta(add1=tuple(add_left), add2=tuple(add_right))
        started = time.perf_counter()
        last_report = service.apply_delta(delta)
        warm_rounds.append(time.perf_counter() - started)
        pairs_touched_rounds.append(last_report.pairs_touched)
        assert last_report.converged
    warm_seconds = min(warm_rounds)
    pairs_touched = max(pairs_touched_rounds)

    final_families = BASE_FAMILIES + WARM_ROUNDS * DELTA_FAMILIES
    cold_left, cold_right = family_pair(final_families)
    started = time.perf_counter()
    reference = align(cold_left, cold_right, ParisConfig(score_stationarity=True))
    cold_seconds = time.perf_counter() - started
    assert reference.converged

    difference = service.state.store.max_difference(reference.instances)
    speedup = cold_seconds / warm_seconds
    store_pairs = len(service.state.store)
    pairs_ratio = store_pairs / pairs_touched

    total_triples = 8 * final_families * 2
    delta_triples = 8 * DELTA_FAMILIES * 2
    rows = [
        f"base corpus:        {BASE_FAMILIES} families x 2 sides "
        f"({8 * BASE_FAMILIES * 2} triples)",
        f"delta:              {DELTA_FAMILIES} families per round "
        f"({delta_triples} triples, {delta_triples / total_triples:.1%} of corpus), "
        f"{WARM_ROUNDS} rounds",
        f"cold start:         {cold_start_seconds:8.3f} s",
        f"cold realign:       {cold_seconds:8.3f} s",
        f"warm delta update:  {warm_seconds:8.3f} s best of "
        f"{[f'{seconds:.3f}' for seconds in warm_rounds]} "
        f"({last_report.passes} passes, {last_report.dirty} dirty instances)",
        f"speedup:            {speedup:8.1f} x",
        f"pairs touched:      {pairs_touched:8d} of {store_pairs} stored "
        f"({pairs_ratio:.1f}x fewer, worst of {pairs_touched_rounds})",
        f"max score diff:     {difference:.3e} (tolerance {SCORE_TOLERANCE:.0e})",
    ]
    save_artifact("microbench_incremental", "\n".join(rows))
    save_bench_json(
        "incremental",
        {
            # Deterministic metrics: gated against the committed
            # baseline by benchmarks/compare_baseline.py (CI bench-track).
            "pairs_ratio": {"value": pairs_ratio, "higher_is_better": True},
            "pairs_touched": {"value": pairs_touched, "higher_is_better": False},
            "warm_passes": {"value": last_report.passes, "higher_is_better": False},
            "dirty_instances": {"value": last_report.dirty, "higher_is_better": False},
            # Wall-clock metrics: machine-dependent, floor-gated only.
            "speedup": {
                "value": speedup,
                "higher_is_better": True,
                "informational": True,
                "floor": MIN_SPEEDUP,
            },
            "warm_seconds": {
                "value": warm_seconds,
                "higher_is_better": False,
                "informational": True,
            },
            "cold_seconds": {
                "value": cold_seconds,
                "higher_is_better": False,
                "informational": True,
            },
        },
    )

    assert difference <= SCORE_TOLERANCE, (
        f"warm-start scores diverged from cold realign by {difference:.3e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over cold realign, got {speedup:.1f}x "
        f"(cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s)"
    )
    assert pairs_ratio >= MIN_PAIRS_RATIO, (
        f"warm pass bookkeeping is not frontier-proportional: touched "
        f"{pairs_touched} pairs against a {store_pairs}-pair store "
        f"({pairs_ratio:.1f}x, expected >= {MIN_PAIRS_RATIO}x fewer)"
    )


def test_incremental_smoke():
    """CI smoke: tiny corpus, equality only (no timing assertions)."""
    left, right = family_pair(20)
    service = AlignmentService.cold_start(left, right, ParisConfig())
    add_left, add_right = family_addition(20, 1)
    report = service.apply_delta(Delta(add1=tuple(add_left), add2=tuple(add_right)))
    assert report.converged
    reference = align(*family_pair(21), ParisConfig(score_stationarity=True))
    assert service.state.store.max_difference(reference.instances) <= SCORE_TOLERANCE
