"""Micro-benchmark: delta-update latency vs. full realignment.

The headline number of the incremental alignment service: on the
disconnected family fixture (:mod:`repro.datasets.incremental`), a
1 %-of-triples delta absorbed through the warm-start fixpoint must be
**≥ 5× faster** than a cold realignment of the updated corpus — and
produce scores equal to that cold run within 1e-9.  Both properties are
asserted here (the equality also independently in
``tests/test_warm_start.py``); the measured curve is recorded under
``benchmarks/results/microbench_incremental.txt``.

The speedup assertion is algorithmic (work skipped, not cores used), so
it holds on any machine; the fixture is sized to keep the bench inside
tier-1 runtime.
"""

from __future__ import annotations

import time

from helpers import save_artifact
from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.service import AlignmentService, Delta

#: Families in the base corpus (3 instances, 8 facts each).
BASE_FAMILIES = 400

#: Families per delta — 1 % of the base corpus.
DELTA_FAMILIES = BASE_FAMILIES // 100

#: Successive deltas measured; the *minimum* warm latency counts, so a
#: single scheduler stall on a noisy machine cannot fail the ratio.
WARM_ROUNDS = 3

#: Required advantage of the warm path over a cold realign.
MIN_SPEEDUP = 5.0

#: Required score equality between warm state and cold realign.
SCORE_TOLERANCE = 1e-9


def test_incremental_delta_vs_cold_realign():
    left, right = family_pair(BASE_FAMILIES)
    started = time.perf_counter()
    service = AlignmentService.cold_start(left, right, ParisConfig())
    cold_start_seconds = time.perf_counter() - started
    assert service.state.converged

    warm_rounds = []
    last_report = None
    for round_index in range(WARM_ROUNDS):
        add_left, add_right = family_addition(
            BASE_FAMILIES + round_index * DELTA_FAMILIES, DELTA_FAMILIES
        )
        delta = Delta(add1=tuple(add_left), add2=tuple(add_right))
        started = time.perf_counter()
        last_report = service.apply_delta(delta)
        warm_rounds.append(time.perf_counter() - started)
        assert last_report.converged
    warm_seconds = min(warm_rounds)

    final_families = BASE_FAMILIES + WARM_ROUNDS * DELTA_FAMILIES
    cold_left, cold_right = family_pair(final_families)
    started = time.perf_counter()
    reference = align(cold_left, cold_right, ParisConfig(score_stationarity=True))
    cold_seconds = time.perf_counter() - started
    assert reference.converged

    difference = service.state.store.max_difference(reference.instances)
    speedup = cold_seconds / warm_seconds

    total_triples = 8 * final_families * 2
    delta_triples = 8 * DELTA_FAMILIES * 2
    rows = [
        f"base corpus:        {BASE_FAMILIES} families x 2 sides "
        f"({8 * BASE_FAMILIES * 2} triples)",
        f"delta:              {DELTA_FAMILIES} families per round "
        f"({delta_triples} triples, {delta_triples / total_triples:.1%} of corpus), "
        f"{WARM_ROUNDS} rounds",
        f"cold start:         {cold_start_seconds:8.3f} s",
        f"cold realign:       {cold_seconds:8.3f} s",
        f"warm delta update:  {warm_seconds:8.3f} s best of "
        f"{[f'{seconds:.3f}' for seconds in warm_rounds]} "
        f"({last_report.passes} passes, {last_report.dirty} dirty instances)",
        f"speedup:            {speedup:8.1f} x",
        f"max score diff:     {difference:.3e} (tolerance {SCORE_TOLERANCE:.0e})",
    ]
    save_artifact("microbench_incremental", "\n".join(rows))

    assert difference <= SCORE_TOLERANCE, (
        f"warm-start scores diverged from cold realign by {difference:.3e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over cold realign, got {speedup:.1f}x "
        f"(cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s)"
    )


def test_incremental_smoke():
    """CI smoke: tiny corpus, equality only (no timing assertions)."""
    left, right = family_pair(20)
    service = AlignmentService.cold_start(left, right, ParisConfig())
    add_left, add_right = family_addition(20, 1)
    report = service.apply_delta(Delta(add1=tuple(add_left), add2=tuple(add_right)))
    assert report.converged
    reference = align(*family_pair(21), ParisConfig(score_stationarity=True))
    assert service.state.store.max_difference(reference.instances) <= SCORE_TOLERANCE
