"""Section 6.3 ablation — all probabilities vs maximal assignment only.

"In a second experiment, we allowed the algorithm to take into account
all probabilities from the previous iteration (and not just those of
the maximal assignment).  This changed the results only marginally (by
one correctly matched entity)."

We run the restaurant benchmark both ways and assert near-identical
instance quality (the optimization of Section 5.2 is for speed, not
accuracy).
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="ablation-assignment")
def test_ablation_maximal_assignment_restriction(benchmark):
    pair = restaurant_benchmark(seed=7)

    def both():
        restricted = align(
            pair.ontology1,
            pair.ontology2,
            ParisConfig(restrict_to_maximal_assignment=True),
        )
        unrestricted = align(
            pair.ontology1,
            pair.ontology2,
            ParisConfig(restrict_to_maximal_assignment=False),
        )
        return restricted, unrestricted

    restricted, unrestricted = run_once(benchmark, both)
    restricted_prf = evaluate_instances(restricted.assignment12, pair.gold)
    unrestricted_prf = evaluate_instances(unrestricted.assignment12, pair.gold)
    save_artifact(
        "ablation_assignment",
        render_table(
            ["Mode", "Prec", "Rec", "F"],
            [
                ["maximal assignment only",
                 f"{restricted_prf.precision:.0%}",
                 f"{restricted_prf.recall:.0%}", f"{restricted_prf.f1:.0%}"],
                ["all probabilities",
                 f"{unrestricted_prf.precision:.0%}",
                 f"{unrestricted_prf.recall:.0%}", f"{unrestricted_prf.f1:.0%}"],
            ],
        ),
    )
    # "changed the results only marginally"
    assert abs(restricted_prf.f1 - unrestricted_prf.f1) <= 0.05
    assert abs(restricted_prf.precision - unrestricted_prf.precision) <= 0.05
