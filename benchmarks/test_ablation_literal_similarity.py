"""Section 5.3 ablation — literal-similarity functions.

"Obviously, precision could be raised even higher by implementing more
elaborate literal similarity functions."  This bench quantifies that on
the restaurant benchmark (formatting-noisy values): strict identity
(paper default) vs normalized identity vs Levenshtein vs the typed
composite.

Expected: identity already works (the paper's point); normalization
recovers the formatting-noised matches (higher recall); edit distance
recovers typo-noised ones on top.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table
from repro.literals import (
    EditDistanceSimilarity,
    IdentitySimilarity,
    NormalizedIdentitySimilarity,
    tolerant_similarity,
)

from helpers import run_once, save_artifact

MEASURES = [
    ("identity (paper default)", IdentitySimilarity),
    ("normalized identity", NormalizedIdentitySimilarity),
    ("edit distance (d<=1)", lambda: EditDistanceSimilarity(max_distance=1)),
    ("typed composite", tolerant_similarity),
]


@pytest.mark.benchmark(group="ablation-literal")
def test_ablation_literal_similarity(benchmark):
    pair = restaurant_benchmark(seed=7)

    def sweep():
        prfs = {}
        for label, factory in MEASURES:
            result = align(
                pair.ontology1,
                pair.ontology2,
                ParisConfig(literal_similarity=factory()),
            )
            prfs[label] = evaluate_instances(result.assignment12, pair.gold)
        return prfs

    prfs = run_once(benchmark, sweep)
    rows = [
        [label, f"{prf.precision:.0%}", f"{prf.recall:.0%}", f"{prf.f1:.0%}"]
        for label, prf in prfs.items()
    ]
    save_artifact(
        "ablation_literal_similarity",
        render_table(["Literal similarity", "Prec", "Rec", "F"], rows),
    )

    identity = prfs["identity (paper default)"]
    normalized = prfs["normalized identity"]
    edit = prfs["edit distance (d<=1)"]
    # the paper's point: the trivial measure already aligns well
    assert identity.f1 >= 0.85
    # richer measures recover formatting/typo-noised matches
    assert normalized.recall >= identity.recall
    assert edit.recall >= identity.recall
    for prf in prfs.values():
        assert prf.precision >= 0.80
