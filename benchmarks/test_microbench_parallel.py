"""Staged profile of the vectorized kernel and the persistent worker pool.

Two questions, answered separately so a regression is attributable:

1. **Kernel vs dict** (`test_stage_profile`): one second-iteration
   instance pass, decomposed into stages — the dict reference pass,
   then the vectorized engine's interning/prepare/score/merge costs.
   The kernel-vs-dict ratio is measured on one machine within one
   process, so unlike raw wall-clock it is stable enough to carry a
   hard floor (`KERNEL_FLOOR`) everywhere, core count be damned.
2. **Pool speedup** (`test_parallel_speedup_curve`): full cold aligns
   at 1/2/4 workers through the persistent fork-once pool (instance,
   relation *and* class passes all ride it).  Speedups are meaningless
   below :data:`MIN_CORES_FOR_SPEEDUP` cores, so the ``speedup_4w``
   floor is attached only on capable machines — the same policy as the
   replica microbench — and the committed `BENCH_parallel.json` from a
   small box records the curve informationally.

Every timed run is checked for score equality against the sequential
engine, so the benchmark doubles as an exactness check at scale.

``test_parallel_smoke_two_workers`` is a fast 2-worker smoke intended
for CI (`pytest benchmarks/test_microbench_parallel.py -k smoke`).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from helpers import save_artifact, save_bench_json
from repro import ParisConfig, align
from repro.core.equivalence import instance_equivalence_pass
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.parallel import parallel_instance_equivalence_pass
from repro.core.store import EquivalenceStore
from repro.core.subrelations import subrelation_pass
from repro.core.vectorized import HAVE_NUMPY, VectorizedKernel
from repro.core.view import EquivalenceView
from repro.datasets import yago_dbpedia_pair
from repro.literals import IdentitySimilarity

#: Worker counts on the speedup curve.
WORKER_COUNTS = (2, 4)

#: Cores needed before a multi-worker speedup floor is meaningful.
MIN_CORES_FOR_SPEEDUP = 4

#: `speedup_4w` floor on machines meeting the core gate (the PR 6
#: acceptance bar; used to be "don't regress 1.0x").
POOL_FLOOR = 2.0

#: Kernel-vs-dict floor, gated on every machine: both sides run in one
#: process on the same box, so the ratio survives noisy runners.  The
#: kernel measures >10x here; 4x leaves slack for hostile hardware.
KERNEL_FLOOR = 4.0

#: Workload size (persons/works) for both benches.
SCALE = (3000, 1500)


def _pass_inputs(num_persons, num_works, seed, second_iteration=False):
    """Inputs for one instance pass over a synthetic KB pair.

    With ``second_iteration`` the pass runs against a filled
    previous-iteration view and computed relation matrices — the
    compute-dominated shape of every iteration after the bootstrap, and
    the realistic target of the parallel engine (a bootstrap pass over
    an empty store is too cheap for process overhead to amortize).
    """
    pair = yago_dbpedia_pair(num_persons=num_persons, num_works=num_works, seed=seed)
    similarity = IdentitySimilarity()
    literals2 = LiteralIndex(pair.ontology2, similarity)
    literals1 = LiteralIndex(pair.ontology1, similarity)
    fun1 = FunctionalityOracle(pair.ontology1)
    fun2 = FunctionalityOracle(pair.ontology2)
    view = EquivalenceView(EquivalenceStore(), literals2, literals1)
    rel12 = SubsumptionMatrix.bootstrap(0.1)
    rel21 = SubsumptionMatrix.bootstrap(0.1)
    if second_iteration:
        bootstrap = instance_equivalence_pass(
            pair.ontology1, pair.ontology2, view, fun1, fun2, rel12, rel21, 0.1
        )
        view = EquivalenceView(bootstrap.restricted_to_maximal(), literals2, literals1)
        rel12 = subrelation_pass(
            pair.ontology1, pair.ontology2, view,
            truncation_threshold=0.1, max_pairs=10_000, bootstrap_theta=0.1,
        )
        rel21 = subrelation_pass(
            pair.ontology2, pair.ontology1, view,
            truncation_threshold=0.1, max_pairs=10_000, reverse=True,
            bootstrap_theta=0.1,
        )
    return (
        pair.ontology1,
        pair.ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        0.1,
    )


def _scores(store):
    return {(left, right): p for left, right, p in store.items()}


def _assert_scores_match(actual, expected):
    """Bit-exact under fork; ≈1 ulp under spawn (see repro.core.parallel)."""
    if "fork" in multiprocessing.get_all_start_methods():
        assert actual == expected
        return
    assert actual.keys() == expected.keys()
    for key, probability in expected.items():
        assert abs(actual[key] - probability) <= 1e-12, key


def _result_scores(result):
    return {
        "instances": _scores(result.instances),
        "relations12": _scores(result.relations12),
        "relations21": _scores(result.relations21),
        "classes12": _scores(result.classes12),
        "classes21": _scores(result.classes21),
    }


@pytest.mark.skipif(not HAVE_NUMPY, reason="kernel stage profile requires numpy")
def test_stage_profile():
    """Where one instance pass spends its time, dict vs kernel.

    Stages, DMR-XPath-style (one row per cost center so a regression
    names its culprit): the dict reference pass; then the kernel's
    interning (build), pass preparation (view/matrix lowering), the
    array scoring itself, and the merge back into an
    `EquivalenceStore`.
    """
    inputs = _pass_inputs(*SCALE, seed=11, second_iteration=True)
    ontology1, ontology2, view, fun1, fun2, rel12, rel21, theta = inputs

    def measure():
        started = time.perf_counter()
        sequential = instance_equivalence_pass(*inputs)
        dict_seconds = time.perf_counter() - started
        expected = _scores(sequential)
        assert expected, "workload produced no equivalences"

        started = time.perf_counter()
        kernel = VectorizedKernel(ontology1, ontology2, fun1, fun2, view._right_index)
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        prepared = kernel.prepare_pass(view.store, rel12, rel21)
        prepare_seconds = time.perf_counter() - started
        started = time.perf_counter()
        scored = kernel.score_ids(kernel.ordered_ids, prepared, theta)
        score_seconds = time.perf_counter() - started
        started = time.perf_counter()
        store = EquivalenceStore()
        store.update(kernel.entries_for(*scored))
        merge_seconds = time.perf_counter() - started

        # The kernel must not buy its speed with drift: bit-equal scores.
        assert _scores(store) == expected
        return dict_seconds, build_seconds, prepare_seconds, score_seconds, merge_seconds

    # A single sample can be poisoned by a scheduler stall or a GC burst
    # mid-stage; re-measure on a floor miss and keep the best attempt
    # rather than failing on one noisy reading.
    for _attempt in range(3):
        timings = measure()
        dict_seconds, build_seconds, prepare_seconds, score_seconds, merge_seconds = timings
        kernel_seconds = prepare_seconds + score_seconds + merge_seconds
        kernel_speedup = dict_seconds / kernel_seconds
        if kernel_speedup >= KERNEL_FLOOR:
            break
    rows = [
        f"{'stage':>16}  {'seconds':>8}",
        f"{'dict pass':>16}  {dict_seconds:>8.3f}",
        f"{'kernel build':>16}  {build_seconds:>8.3f}   (amortized across passes)",
        f"{'kernel prepare':>16}  {prepare_seconds:>8.3f}",
        f"{'kernel score':>16}  {score_seconds:>8.3f}",
        f"{'kernel merge':>16}  {merge_seconds:>8.3f}",
        f"kernel vs dict: {kernel_speedup:.1f}x (prepare+score+merge)",
    ]
    save_artifact("microbench_parallel_stages", "\n".join(rows))

    test_stage_profile.metrics = {
        "dict_pass_seconds": {
            "value": dict_seconds,
            "higher_is_better": False,
            "informational": True,
        },
        "kernel_pass_seconds": {
            "value": kernel_seconds,
            "higher_is_better": False,
            "informational": True,
        },
        "kernel_speedup_vs_dict": {
            "value": kernel_speedup,
            "higher_is_better": True,
            "informational": True,
            "floor": KERNEL_FLOOR,
        },
    }
    assert kernel_speedup >= KERNEL_FLOOR, (
        f"vectorized kernel only {kernel_speedup:.2f}x over the dict pass "
        f"(floor {KERNEL_FLOOR}x)"
    )


def test_parallel_speedup_curve():
    """Full cold aligns at 1/2/4 workers through the persistent pool."""
    pair = yago_dbpedia_pair(num_persons=SCALE[0], num_works=SCALE[1], seed=11)

    started = time.perf_counter()
    baseline = align(pair.ontology1, pair.ontology2, ParisConfig(workers=1))
    sequential_seconds = time.perf_counter() - started
    expected = _result_scores(baseline)
    assert expected["instances"], "workload produced no equivalences"

    rows = [f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}"]
    rows.append(f"{1:>7}  {sequential_seconds:>8.3f}  {1.0:>7.2f}")
    speedups = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        result = align(
            pair.ontology1,
            pair.ontology2,
            ParisConfig(workers=workers, parallel_backend="process"),
        )
        seconds = time.perf_counter() - started
        got = _result_scores(result)
        for surface, scores in expected.items():
            _assert_scores_match(got[surface], scores)
        speedups[workers] = sequential_seconds / seconds
        rows.append(f"{workers:>7}  {seconds:>8.3f}  {speedups[workers]:>7.2f}")

    cores = os.cpu_count() or 1
    floored = cores >= MIN_CORES_FOR_SPEEDUP
    rows.append(f"(cpu cores: {cores}; speedup floor {'on' if floored else 'off'})")
    save_artifact("microbench_parallel", "\n".join(rows))
    save_bench_json(
        "parallel",
        {
            # Wall-clock numbers stay informational (machine-bound);
            # the two gates are the kernel-vs-dict floor (held
            # everywhere — same-box ratio) and the 4-worker pool floor
            # (held only where >= MIN_CORES_FOR_SPEEDUP cores make it
            # physically possible).  Exactness is gated separately by
            # this bench's score checks and tests/test_vectorized.py.
            "sequential_seconds": {
                "value": sequential_seconds,
                "higher_is_better": False,
                "informational": True,
            },
            **{
                f"speedup_{workers}w": {
                    "value": speedups[workers],
                    "higher_is_better": True,
                    "informational": True,
                    **(
                        {"floor": POOL_FLOOR}
                        if floored and workers == max(WORKER_COUNTS)
                        else {}
                    ),
                }
                for workers in WORKER_COUNTS
            },
            **getattr(test_stage_profile, "metrics", {}),
        },
    )

    if os.environ.get("BENCH_RELAX_WALLCLOCK") == "1":
        # bench-track mode: record the curve + JSON artifact, but skip
        # the wall-clock assertion — shared CI runners meet the core
        # floor yet suffer noisy-neighbor stalls, the exact flakiness
        # the tier-1 jobs exclude this file for.
        return
    if floored:
        best = max(speedups.values())
        assert best >= POOL_FLOOR, (
            f"expected >={POOL_FLOOR}x speedup on a {cores}-core machine, "
            f"best was {best:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= {MIN_CORES_FOR_SPEEDUP} cores, "
            f"machine has {cores}; curve recorded for the record"
        )


def test_parallel_smoke_two_workers():
    """CI smoke: 2 process workers, exact equality, modest workload.

    Exercises the *legacy* per-pass executor (kept as the reference
    engine and the spawn-platform fallback); the persistent pool's
    exactness smoke lives in tests/test_vectorized.py.
    """
    inputs = _pass_inputs(num_persons=300, num_works=150, seed=11)
    sequential = instance_equivalence_pass(*inputs)
    parallel = parallel_instance_equivalence_pass(*inputs, workers=2, backend="process")
    _assert_scores_match(_scores(parallel), _scores(sequential))
    assert len(parallel) > 0
