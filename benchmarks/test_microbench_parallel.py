"""Micro-benchmark of the sharded parallel instance pass.

Times one instance-equivalence pass over a synthetic large-ontology
workload sequentially and with 2/4 process workers, records the speedup
curve as an artifact, and — on machines with enough cores — asserts the
parallel engine actually pays for itself.  Every timed run is also
checked for score equality against the sequential pass, so the
benchmark doubles as an end-to-end guarantee check at scale.

``test_parallel_smoke_two_workers`` is a fast 2-worker smoke intended
for CI (`pytest benchmarks/test_microbench_parallel.py -k smoke`).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from helpers import save_artifact, save_bench_json
from repro.core.equivalence import instance_equivalence_pass
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.parallel import parallel_instance_equivalence_pass
from repro.core.store import EquivalenceStore
from repro.core.subrelations import subrelation_pass
from repro.core.view import EquivalenceView
from repro.datasets import yago_dbpedia_pair
from repro.literals import IdentitySimilarity

#: Worker counts on the speedup curve.
WORKER_COUNTS = (2, 4)

#: Cores needed before the ≥1.5× speedup assertion is meaningful.
MIN_CORES_FOR_SPEEDUP = 4


def _pass_inputs(num_persons, num_works, seed, second_iteration=False):
    """Inputs for one instance pass over a synthetic KB pair.

    With ``second_iteration`` the pass runs against a filled
    previous-iteration view and computed relation matrices — the
    compute-dominated shape of every iteration after the bootstrap, and
    the realistic target of the parallel engine (a bootstrap pass over
    an empty store is too cheap for process overhead to amortize).
    """
    pair = yago_dbpedia_pair(num_persons=num_persons, num_works=num_works, seed=seed)
    similarity = IdentitySimilarity()
    literals2 = LiteralIndex(pair.ontology2, similarity)
    literals1 = LiteralIndex(pair.ontology1, similarity)
    fun1 = FunctionalityOracle(pair.ontology1)
    fun2 = FunctionalityOracle(pair.ontology2)
    view = EquivalenceView(EquivalenceStore(), literals2, literals1)
    rel12 = SubsumptionMatrix.bootstrap(0.1)
    rel21 = SubsumptionMatrix.bootstrap(0.1)
    if second_iteration:
        bootstrap = instance_equivalence_pass(
            pair.ontology1, pair.ontology2, view, fun1, fun2, rel12, rel21, 0.1
        )
        view = EquivalenceView(bootstrap.restricted_to_maximal(), literals2, literals1)
        rel12 = subrelation_pass(
            pair.ontology1, pair.ontology2, view,
            truncation_threshold=0.1, max_pairs=10_000, bootstrap_theta=0.1,
        )
        rel21 = subrelation_pass(
            pair.ontology2, pair.ontology1, view,
            truncation_threshold=0.1, max_pairs=10_000, reverse=True,
            bootstrap_theta=0.1,
        )
    return (
        pair.ontology1,
        pair.ontology2,
        view,
        fun1,
        fun2,
        rel12,
        rel21,
        0.1,
    )


def _scores(store):
    return {(left, right): p for left, right, p in store.items()}


def _assert_scores_match(actual, expected):
    """Bit-exact under fork; ≈1 ulp under spawn (see repro.core.parallel)."""
    if "fork" in multiprocessing.get_all_start_methods():
        assert actual == expected
        return
    assert actual.keys() == expected.keys()
    for key, probability in expected.items():
        assert abs(actual[key] - probability) <= 1e-12, key


def test_parallel_speedup_curve():
    inputs = _pass_inputs(
        num_persons=3000, num_works=1500, seed=11, second_iteration=True
    )

    started = time.perf_counter()
    sequential = instance_equivalence_pass(*inputs)
    sequential_seconds = time.perf_counter() - started
    expected = _scores(sequential)
    assert expected, "workload produced no equivalences"

    rows = [f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}"]
    rows.append(f"{1:>7}  {sequential_seconds:>8.3f}  {1.0:>7.2f}")
    speedups = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        store = parallel_instance_equivalence_pass(
            *inputs, workers=workers, backend="process"
        )
        seconds = time.perf_counter() - started
        _assert_scores_match(_scores(store), expected)
        speedups[workers] = sequential_seconds / seconds
        rows.append(f"{workers:>7}  {seconds:>8.3f}  {speedups[workers]:>7.2f}")

    cores = os.cpu_count() or 1
    rows.append(f"(cpu cores: {cores})")
    save_artifact("microbench_parallel", "\n".join(rows))
    save_bench_json(
        "parallel",
        {
            # All wall-clock: the curve depends on the machine's core
            # count, so nothing here is baseline-gated or floored — the
            # artifact records the trend for humans.  Correctness of
            # the parallel engine is gated separately by this bench's
            # score-equality checks and the tier-1 smoke.
            "sequential_seconds": {
                "value": sequential_seconds,
                "higher_is_better": False,
                "informational": True,
            },
            **{
                f"speedup_{workers}w": {
                    "value": speedups[workers],
                    "higher_is_better": True,
                    "informational": True,
                }
                for workers in WORKER_COUNTS
            },
        },
    )

    if os.environ.get("BENCH_RELAX_WALLCLOCK") == "1":
        # bench-track mode: record the curve + JSON artifact, but skip
        # the wall-clock assertion — shared CI runners meet the core
        # floor yet suffer noisy-neighbor stalls, the exact flakiness
        # the tier-1 jobs exclude this file for.
        return
    if cores >= MIN_CORES_FOR_SPEEDUP:
        best = max(speedups.values())
        assert best >= 1.5, (
            f"expected >=1.5x speedup on a {cores}-core machine, "
            f"best was {best:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= {MIN_CORES_FOR_SPEEDUP} cores, "
            f"machine has {cores}; curve recorded for the record"
        )


def test_parallel_smoke_two_workers():
    """CI smoke: 2 process workers, exact equality, modest workload."""
    inputs = _pass_inputs(num_persons=300, num_works=150, seed=11)
    sequential = instance_equivalence_pass(*inputs)
    parallel = parallel_instance_equivalence_pass(*inputs, workers=2, backend="process")
    _assert_scores_match(_scores(parallel), _scores(sequential))
    assert len(parallel) > 0
