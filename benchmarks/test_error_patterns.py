"""Section 6.4 error-pattern reproduction (the paper's bullet list).

"Examining by hand the few remaining alignment errors revealed the
following patterns: [gold errors] — paris sometimes aligned instances
that were not equivalent, but very closely related [near duplicates] —
some errors were caused by the very naive string comparison approach
[label noise]."

This bench runs the movie benchmark and classifies every error
automatically.  Asserted shape: near-duplicate confusions appear among
the false positives, and no-shared-literal misses (label noise and
dropped facts) dominate the false negatives.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.analysis import FalseNegativeKind, FalsePositiveKind, classify_errors
from repro.datasets import yago_imdb_pair
from repro.evaluation import render_table

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="error-patterns")
def test_error_patterns_movie_pair(benchmark):
    pair = yago_imdb_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)

    def run():
        result = align(pair.ontology1, pair.ontology2, config)
        return classify_errors(pair.ontology1, pair.ontology2, result, pair.gold)

    report = run_once(benchmark, run)
    counts = report.counts()
    rows = [[kind, str(count)] for kind, count in sorted(counts.items())]
    save_artifact(
        "error_patterns_yago_imdb",
        report.summary() + "\n\n" + render_table(["kind", "count"], rows),
    )

    fn_kinds = {case.kind for case in report.false_negatives}
    # the paper's confusion patterns (same-title works, near-duplicate
    # variants) dominate the false positives
    confusions = sum(
        1 for case in report.false_positives
        if case.kind in (FalsePositiveKind.HOMONYM, FalsePositiveKind.NEAR_DUPLICATE)
    )
    assert confusions >= len(report.false_positives) * 0.5
    # and label-noise misses (no literal the strict measure accepts)
    # appear among the false negatives
    assert FalseNegativeKind.NO_SHARED_LITERAL in fn_kinds
