"""Section 6.3 ablation — negative evidence (Eq. 14) and string measures.

The paper's third design experiment on the restaurant dataset:

1. Eq. 14 + strict literal identity: "made paris give up all matches
   between restaurants", because "most entities have slightly different
   attribute values (e.g., a phone number 213/467-1108 instead of
   213-467-1108)".
2. Eq. 14 + normalized strings (lowercase, alphanumerics only):
   "increased precision to 100 %, but decreased recall to 70 %" —
   formatting noise is forgiven, genuine content differences still
   count against a match.

We assert the same ordering: recall collapses under (1), recovers
substantially under (2) with precision at least as high as the
positive-only run.
"""

from __future__ import annotations

import pytest

from repro import NormalizedIdentitySimilarity, ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="ablation-negative")
def test_ablation_negative_evidence(benchmark):
    pair = restaurant_benchmark(seed=7)

    def sweep():
        positive_only = align(pair.ontology1, pair.ontology2, ParisConfig())
        negative_strict = align(
            pair.ontology1,
            pair.ontology2,
            ParisConfig(use_negative_evidence=True),
        )
        negative_normalized = align(
            pair.ontology1,
            pair.ontology2,
            ParisConfig(
                use_negative_evidence=True,
                literal_similarity=NormalizedIdentitySimilarity(),
            ),
        )
        return positive_only, negative_strict, negative_normalized

    positive_only, negative_strict, negative_normalized = run_once(benchmark, sweep)
    rows = []
    prfs = {}
    for label, result in (
        ("Eq.13 positive only, strict identity", positive_only),
        ("Eq.14 negative, strict identity", negative_strict),
        ("Eq.14 negative, normalized strings", negative_normalized),
    ):
        prf = evaluate_instances(result.assignment12, pair.gold)
        prfs[label] = prf
        rows.append(
            [label, f"{prf.precision:.0%}", f"{prf.recall:.0%}", f"{prf.f1:.0%}"]
        )
    save_artifact(
        "ablation_negative_evidence",
        render_table(["Configuration", "Prec", "Rec", "F"], rows),
    )

    positive = prfs["Eq.13 positive only, strict identity"]
    strict = prfs["Eq.14 negative, strict identity"]
    normalized = prfs["Eq.14 negative, normalized strings"]
    # (1) strict identity + negative evidence destroys recall
    assert strict.recall < 0.5 * positive.recall
    # (2) normalization recovers much of it ...
    assert normalized.recall > 2 * strict.recall if strict.recall > 0 else True
    assert normalized.recall >= 0.5
    # ... at precision no worse than the positive-only run
    assert normalized.precision >= positive.precision - 0.01
