"""Gate fresh microbench metrics against the committed baselines.

Usage (what the CI ``bench-track`` job runs)::

    BENCH_JSON_DIR=bench-out pytest benchmarks/test_microbench_incremental.py ...
    python benchmarks/compare_baseline.py bench-out

Every ``BENCH_<name>.json`` in the given directory is compared against
the committed copy under ``benchmarks/results/``.  A metric fails the
gate when

* it carries a ``floor`` and the fresh value is below it, or
* it is not marked ``informational`` and the fresh value is worse than
  the baseline by more than ``TOLERANCE`` (30 %), in the direction of
  its ``higher_is_better`` flag.

Only deterministic, machine-independent metrics (pair counts, pass
counts) are baseline-gated; wall-clock metrics are ``informational``
with at most an absolute ``floor``, so a noisy shared runner cannot
produce a false failure.  Exit code is non-zero on any regression, which
is what fails the CI job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed relative slack against the committed baseline.
TOLERANCE = 0.30

BASELINE_DIR = Path(__file__).parent / "results"


def compare_metric(name: str, fresh: dict, baseline: dict | None) -> str | None:
    """Returns a failure message for one metric, or None if it passes."""
    value = fresh["value"]
    floor = fresh.get("floor")
    if floor is not None and value < floor:
        return f"{name}: value {value:.3g} is below its hard floor {floor:.3g}"
    if fresh.get("informational"):
        return None
    if baseline is None:
        # New metric without a committed reference: record, don't gate.
        return None
    reference = baseline["value"]
    higher_is_better = fresh.get("higher_is_better", True)
    if higher_is_better:
        limit = reference * (1.0 - TOLERANCE)
        if value < limit:
            return (
                f"{name}: {value:.3g} regressed >{TOLERANCE:.0%} below "
                f"baseline {reference:.3g}"
            )
    else:
        limit = reference * (1.0 + TOLERANCE)
        if value > limit:
            return (
                f"{name}: {value:.3g} regressed >{TOLERANCE:.0%} above "
                f"baseline {reference:.3g}"
            )
    return None


def compare_file(fresh_path: Path) -> list[str]:
    baseline_path = BASELINE_DIR / fresh_path.name
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        baseline_metrics = baseline.get("metrics", {})
    else:
        # Hard floors still apply; only the baseline comparison is
        # skipped (compare_metric treats a missing reference as
        # record-don't-gate).
        print(f"{fresh_path.name}: no committed baseline, floor checks only")
        baseline_metrics = {}
    failures = []
    for name, metric in sorted(fresh.get("metrics", {}).items()):
        failure = compare_metric(name, metric, baseline_metrics.get(name))
        status = "FAIL" if failure else ("info" if metric.get("informational") else "ok")
        reference = baseline_metrics.get(name, {}).get("value")
        reference_text = f" (baseline {reference:.3g})" if reference is not None else ""
        print(f"  {status:>4}  {name} = {metric['value']:.4g}{reference_text}")
        if failure:
            failures.append(f"{fresh_path.name}: {failure}")
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    fresh_dir = Path(argv[1])
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json files under {fresh_dir}")
        return 2
    failures: list[str] = []
    for path in fresh_files:
        print(f"{path.name}:")
        failures.extend(compare_file(path))
    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
