"""Section 7 extension bench — relation-name priors.

The paper conjectures that "the name heuristics of more traditional
schema-alignment techniques could be factored into the model".  This
bench compares the uniform bootstrap against the name-informed prior of
:mod:`repro.core.priors` on the KB pair whose relation names carry
partial signal (``y:wasBornIn`` vs ``dbp:birthPlace`` share no token;
``y:wasBornOnDate`` vs ``dbp:birthDate`` share one).

Expected: final quality unchanged or marginally better — the prior
accelerates trust but the data always dominates by iteration 2 — and
the alignments with completely *different* names (actedIn/starring)
must still be found, preserving the paper's headline property.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.evaluation import evaluate_instances, evaluate_relations, render_table
from repro.rdf.terms import Relation

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="ablation-name-prior")
def test_ablation_name_prior(benchmark):
    pair = yago_dbpedia_pair()

    def both():
        uniform = align(
            pair.ontology1, pair.ontology2,
            ParisConfig(max_iterations=4, convergence_threshold=0.0),
        )
        primed = align(
            pair.ontology1, pair.ontology2,
            ParisConfig(
                max_iterations=4, convergence_threshold=0.0, use_name_prior=True
            ),
        )
        return uniform, primed

    uniform, primed = run_once(benchmark, both)
    rows = []
    prfs = {}
    for label, result in (("uniform theta", uniform), ("name prior", primed)):
        instances = evaluate_instances(result.assignment12, pair.gold)
        relations = evaluate_relations(result.relation_pairs(), pair.gold)
        prfs[label] = (instances, relations)
        rows.append([
            label,
            f"{instances.precision:.0%}", f"{instances.recall:.0%}",
            f"{instances.f1:.0%}", f"{relations.precision:.0%}",
        ])
    save_artifact(
        "ablation_name_prior",
        render_table(["Bootstrap", "Inst-P", "Inst-R", "Inst-F", "Rel-P"], rows),
    )

    uniform_inst, _ = prfs["uniform theta"]
    primed_inst, primed_rel = prfs["name prior"]
    # quality preserved (±2 points)
    assert abs(primed_inst.f1 - uniform_inst.f1) <= 0.02
    assert primed_rel.precision >= 0.9
    # alignments with completely different names still discovered
    assert primed.relations12.get(
        Relation("y:actedIn"), Relation("dbp:starring").inverse
    ) > 0.1
