"""Table 4 — qualitative relation alignments between YAGO and DBpedia.

The paper's exhibit of non-trivial discoveries, all of which must
appear here with sensible scores:

* inverse alignments            — ``y:actedIn ⊆ dbp:starring⁻`` (0.95)
* relation splitting            — ``y:created ⊆ dbp:author⁻ / writer⁻ /
  artist⁻`` (0.17 / 0.30 / 0.13)
* symmetric-relation both ways  — ``y:isMarriedTo ⊆ dbp:spouse`` (0.89)
  and ``⊆ dbp:spouse⁻`` (0.56)
* parenthood modelled backwards — ``y:hasChild ⊆ dbp:parent⁻`` (0.53)
  and ``⊆ dbp:child`` (0.30)
* weak-but-real correlation     — ``y:isCitizenOf ⊆ dbp:birthPlace``
  (0.25), far below ``⊆ dbp:nationality`` (0.88)
* label convergence             — ``dbp:name ⊆ rdfs:label`` analog of
  ``dbp:birthName ⊆ rdfs:label`` (0.96)
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.evaluation import render_relation_alignments
from repro.rdf.terms import Relation

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="table4")
def test_table4_relation_alignments(benchmark):
    pair = yago_dbpedia_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = run_once(
        benchmark, lambda: align(pair.ontology1, pair.ontology2, config)
    )
    rendered = (
        "yago ⊆ DBpedia\n"
        + render_relation_alignments(result, threshold=0.1, limit=30)
        + "\n\nDBpedia ⊆ yago\n"
        + render_relation_alignments(result, threshold=0.1, reverse=True, limit=30)
    )
    save_artifact("table4_relation_alignments", rendered)

    rel12 = result.relations12
    rel21 = result.relations21
    # inverse alignment
    assert rel12.get(Relation("y:actedIn"), Relation("dbp:starring").inverse) > 0.3
    # relation splitting by target type (all three splits discovered)
    for split in ("dbp:author", "dbp:writer", "dbp:artist"):
        assert rel12.get(Relation("y:created"), Relation(split).inverse) > 0.05
    # symmetric relation seen in both directions
    assert rel12.get(Relation("y:isMarriedTo"), Relation("dbp:spouse")) > 0.1
    assert rel12.get(Relation("y:isMarriedTo"), Relation("dbp:spouse").inverse) > 0.1
    # parenthood: child-side and parent-side modelling
    assert rel12.get(Relation("y:hasChild"), Relation("dbp:parent").inverse) > 0.1
    assert rel12.get(Relation("y:hasChild"), Relation("dbp:child")) > 0.1
    # weak correlation stays weak but present, dominated by the true match
    nationality = rel12.get(Relation("y:isCitizenOf"), Relation("dbp:nationality"))
    birthplace = rel12.get(Relation("y:isCitizenOf"), Relation("dbp:birthPlace"))
    assert 0.0 < birthplace < nationality
    # label relation discovered from the other side too
    assert rel21.get(Relation("dbp:name"), Relation("rdfs:label")) > 0.5
